"""Programmatic regeneration of the paper's tables.

Each function recomputes one table of the paper and returns structured
rows (plus the published values for comparison), so users can regenerate
the evaluation without running the benchmark harness:

>>> from repro.tables import table2
>>> [row.system for row in table2()]           # doctest: +SKIP

The CLI exposes the same through ``quorumtool table 1..5``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .core.errors import QuorumError
from .systems import (
    CrumblingWallQuorumSystem,
    HQSQuorumSystem,
    HierarchicalGrid,
    HierarchicalTGrid,
    HierarchicalTriangle,
    MajorityQuorumSystem,
    PathsQuorumSystem,
    YQuorumSystem,
)

P_GRID = (0.1, 0.2, 0.3, 0.5)


@dataclass(frozen=True)
class FailureRow:
    """One failure-probability row: measured values next to published."""

    system: str
    n: int
    measured: Tuple[float, ...]
    published: Optional[Tuple[float, ...]] = None
    note: str = ""


@dataclass(frozen=True)
class SizeLoadRow:
    """One Table 4 row: quorum-size range and load."""

    system: str
    n: int
    smallest: Optional[int]
    largest: Optional[int]
    load: Optional[float]
    note: str = ""


def table1() -> List[FailureRow]:
    """Table 1: h-grid vs h-T-grid over the four grid shapes."""
    published_hgrid = {
        (3, 3): (0.016893, 0.109235, 0.286224, 0.716797),
        (4, 4): (0.005799, 0.069318, 0.243795, 0.746628),
        (5, 5): (0.001753, 0.039439, 0.191581, 0.751019),
        (6, 4): (0.001949, 0.034161, 0.167172, 0.725377),
    }
    published_htgrid = {
        (3, 3): (0.015213, 0.098585, 0.259783, 0.667969),
        (4, 4): (0.005361, 0.063866, 0.225066, 0.706604),
        (5, 5): (0.001621, 0.036300, 0.176290, 0.708871),
        (6, 4): (0.000611, 0.016690, 0.104402, 0.598435),
    }
    rows: List[FailureRow] = []
    for shape in ((3, 3), (4, 4), (5, 5), (6, 4)):
        hgrid = HierarchicalGrid.halving(*shape)
        rows.append(
            FailureRow(
                system=f"h-grid {shape[0]}x{shape[1]}",
                n=hgrid.n,
                measured=tuple(
                    hgrid.failure_probability_exact(p) for p in P_GRID
                ),
                published=published_hgrid[shape],
            )
        )
        htgrid = HierarchicalTGrid.halving(*shape)
        rows.append(
            FailureRow(
                system=f"h-T-grid {shape[0]}x{shape[1]}",
                n=htgrid.n,
                measured=tuple(
                    htgrid.failure_probability(p, method="shannon") for p in P_GRID
                ),
                published=published_htgrid[shape],
                note="5x5: our quorum family is marginally richer" if shape == (5, 5) else "",
            )
        )
    return rows


def _failure_rows(entries) -> List[FailureRow]:
    rows = []
    for label, system, published, note in entries:
        rows.append(
            FailureRow(
                system=label,
                n=system.n,
                measured=tuple(system.failure_probability(p) for p in P_GRID),
                published=published,
                note=note,
            )
        )
    return rows


def table2() -> List[FailureRow]:
    """Table 2: failure probabilities at ~15 nodes."""
    return _failure_rows(
        [
            ("majority(15)", MajorityQuorumSystem.of_size(15),
             (0.000034, 0.004240, 0.050013, 0.500000), ""),
            ("hqs[5x3]", HQSQuorumSystem.balanced([5, 3]),
             (0.000210, 0.009567, 0.070946, 0.500000), ""),
            ("cwlog(14)", CrumblingWallQuorumSystem.cwlog(14),
             (0.001639, 0.021787, 0.099915, 0.500000), ""),
            ("h-T-grid 3x3", HierarchicalTGrid.halving(3, 3),
             (0.015213, 0.098585, 0.259783, 0.667969),
             "paper labels this column (16); values are the 3x3 instance"),
            ("paths(13)", PathsQuorumSystem(2),
             (0.007351, 0.063493, 0.206296, 0.662598),
             "documented substitution: shape only"),
            ("y(15)", YQuorumSystem(5),
             (0.000745, 0.017603, 0.093599, 0.500000), ""),
            ("h-triang(15)", HierarchicalTriangle(5),
             (0.000677, 0.016577, 0.090712, 0.500000), ""),
        ]
    )


def table3() -> List[FailureRow]:
    """Table 3: failure probabilities at ~28 nodes."""
    htgrid = HierarchicalTGrid.halving(5, 5)
    rows = _failure_rows(
        [
            ("majority(27)", MajorityQuorumSystem.of_size(27),
             (0.000000, 0.000229, 0.014257, 0.500000),
             'paper labels this "(28)"; values match n=27'),
            ("hqs[3x3x3]", HQSQuorumSystem.balanced([3, 3, 3]),
             (0.000016, 0.002681, 0.039626, 0.500000),
             "paper's p=0.3 digit is one print-ulp high"),
            ("cwlog(29)", CrumblingWallQuorumSystem.cwlog(29),
             (0.000205, 0.006865, 0.056988, 0.500000), ""),
            ("y(28)", YQuorumSystem(7),
             (0.000057, 0.005012, 0.052777, 0.500000), ""),
            ("h-triang(28)", HierarchicalTriangle(7),
             (0.000055, 0.004851, 0.051670, 0.500000), ""),
            ("paths(25)", PathsQuorumSystem(3),
             (0.001201, 0.025045, 0.136541, 0.678858),
             "documented substitution: shape only"),
        ]
    )
    rows.insert(
        3,
        FailureRow(
            system="h-T-grid 5x5",
            n=htgrid.n,
            measured=tuple(
                htgrid.failure_probability(p, method="shannon") for p in P_GRID
            ),
            published=(0.001621, 0.036300, 0.176290, 0.708872),
            note="<1% residual, never worse",
        ),
    )
    return rows


def table4() -> Dict[int, List[SizeLoadRow]]:
    """Table 4: quorum-size ranges and loads at ~15 / ~28 / ~100 nodes."""
    blocks: Dict[int, List[SizeLoadRow]] = {}

    majority15 = MajorityQuorumSystem.of_size(15)
    hqs15 = HQSQuorumSystem.balanced([5, 3])
    cwlog14 = CrumblingWallQuorumSystem.cwlog(14)
    htgrid16 = HierarchicalTGrid.halving(4, 4)
    y15 = YQuorumSystem(5)
    triangle15 = HierarchicalTriangle(5)
    blocks[15] = [
        SizeLoadRow("majority", 15, 8, 8, majority15.load_exact()),
        SizeLoadRow("hqs", 15, 6, 6, hqs15.load_exact()),
        SizeLoadRow("cwlog", 14, cwlog14.smallest_quorum_size(),
                    cwlog14.largest_quorum_size(),
                    cwlog14.tradeoff_strategy().induced_load(),
                    note="trade-off strategy of §6"),
        SizeLoadRow("h-t-grid", 16, htgrid16.smallest_quorum_size(),
                    htgrid16.largest_quorum_size(),
                    htgrid16.line_based_strategy().induced_load(),
                    note="line-based strategy of §4.3"),
        SizeLoadRow("y", 15, y15.smallest_quorum_size(),
                    y15.largest_quorum_size(), y15.load(method="lp")),
        SizeLoadRow("h-triang", 15, 5, 5, triangle15.load_exact()),
    ]

    cwlog29 = CrumblingWallQuorumSystem.cwlog(29)
    htgrid25 = HierarchicalTGrid.halving(5, 5)
    blocks[28] = [
        SizeLoadRow("majority", 27, 14, 14,
                    MajorityQuorumSystem.of_size(27).load_exact()),
        SizeLoadRow("hqs", 27, 8, 8,
                    HQSQuorumSystem.balanced([3, 3, 3]).load_exact()),
        SizeLoadRow("cwlog", 29, cwlog29.smallest_quorum_size(),
                    cwlog29.largest_quorum_size(),
                    cwlog29.tradeoff_strategy().induced_load()),
        SizeLoadRow("h-t-grid", 25, htgrid25.smallest_quorum_size(),
                    htgrid25.largest_quorum_size(), None),
        SizeLoadRow("y", 28, YQuorumSystem(7).smallest_quorum_size(), None,
                    8.1 / 28, note="avg size quoted from [10]"),
        SizeLoadRow("h-triang", 28, 7, 7,
                    HierarchicalTriangle(7).load_exact()),
    ]

    cwlog99 = CrumblingWallQuorumSystem.cwlog(99)
    htgrid100 = HierarchicalTGrid.halving(10, 10)
    blocks[100] = [
        SizeLoadRow("majority", 101, 51, 51,
                    MajorityQuorumSystem.of_size(101).load_exact()),
        SizeLoadRow("cwlog", 99, cwlog99.smallest_quorum_size(),
                    cwlog99.largest_quorum_size(), None),
        SizeLoadRow("h-t-grid", 100, htgrid100.smallest_quorum_size(),
                    htgrid100.largest_quorum_size(), None),
        SizeLoadRow("paths", 113, PathsQuorumSystem(7).smallest_quorum_size(),
                    None, None),
        SizeLoadRow("y", 105, YQuorumSystem(14).smallest_quorum_size(),
                    None, None),
        SizeLoadRow("h-triang", 105, 14, 14,
                    HierarchicalTriangle(14).load_exact()),
    ]
    return blocks


def table5() -> List[Dict[str, object]]:
    """Table 5: the asymptotic property table (formula rows)."""
    from .analysis.asymptotics import TABLE5

    rows = []
    for key in ("majority", "hqs", "cwlog", "h-t-grid", "paths", "y", "h-triang"):
        profile = TABLE5[key]
        rows.append(
            {
                "system": profile.name,
                "c(S)": profile.smallest_quorum_formula,
                "same size": profile.uniform_quorum_size,
                "load": profile.load_formula,
                "note": profile.note,
            }
        )
    return rows


def render_failure_table(rows: List[FailureRow], title: str) -> str:
    """Fixed-width text rendering with published values interleaved."""
    lines = [title, "=" * len(title)]
    header = f"{'system':<16}" + "".join(f"{f'p={p}':>12}" for p in P_GRID)
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append(
            f"{row.system:<16}" + "".join(f"{v:>12.6f}" for v in row.measured)
        )
        if row.published:
            lines.append(
                f"{'  paper':<16}" + "".join(f"{v:>12.6f}" for v in row.published)
            )
        if row.note:
            lines.append(f"    note: {row.note}")
    return "\n".join(lines)
