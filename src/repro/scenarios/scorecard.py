"""Scorecard primitives shared by every harness in the repo.

Every JSON scorecard the CLI emits — ``quorumtool chaos``, ``reshard``,
``incident`` and ``kvbench`` — goes through these helpers so sweep
tooling can parse them uniformly: the ``invariants`` block always has
the same four keys (``checked``, ``ok``, ``violations``,
``violation_counts``), and :func:`digest` is the one canonical-JSON
fingerprint used for bit-reproducibility hashes everywhere.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Iterable, List, Sequence

__all__ = [
    "SCORECARD_VERSION",
    "digest",
    "invariants_block",
    "violation_counts",
]

#: Version of the scorecard schema; bumped when keys move or change
#: meaning, so sweep tooling can refuse snapshots it does not understand.
SCORECARD_VERSION = 1


def digest(payload: Any) -> str:
    """Canonical-JSON sha256 of a snapshot (the determinism fingerprint)."""
    encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


def violation_counts(violations: Iterable[Dict[str, Any]]) -> Dict[str, int]:
    """Violations grouped per invariant (the scorecard histogram)."""
    counts: Dict[str, int] = {}
    for violation in violations:
        name = violation.get("invariant", "unknown")
        counts[name] = counts.get(name, 0) + 1
    return dict(sorted(counts.items()))


def invariants_block(
    checked: Sequence[str], violations: List[Dict[str, Any]]
) -> Dict[str, Any]:
    """The uniform ``invariants`` scorecard block.

    ``checked`` lists the invariant names the harness audited (empty for
    fault-free benchmarks that audit nothing); ``violations`` is the raw
    violation list, echoed verbatim with its per-invariant histogram.
    """
    return {
        "checked": list(checked),
        "ok": not violations,
        "violations": violations,
        "violation_counts": violation_counts(violations),
    }
