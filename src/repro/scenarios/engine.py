"""The declarative scenario engine: one chaos runner for every harness.

A scenario is data — a named :class:`~repro.runtime.faults.FaultSchedule`
(or a builder for one), a workload recipe (:class:`ChaosConfig`: op mix,
key skew, closed-loop or open-loop Poisson arrival, cache tier, hedging,
Byzantine knobs), the shared invariant set from
:mod:`repro.scenarios.invariants`, and :class:`~repro.scenarios.slo.
SloTargets` — executed by :func:`run_chaos` over the unmodified service
stack and scored into a versioned JSON scorecard with bit-reproducible
trace hashes.  :mod:`repro.service.chaos` re-exports this engine for
compatibility; :mod:`repro.scenarios.library` defines the named SRE
incidents on top of it; the sharded analogue
(:mod:`repro.sharding.chaos`) shares the invariant registry and
scorecard helpers.

The workload loop checks safety invariants over the full operation
history (see :data:`~repro.scenarios.invariants.INVARIANTS` for the
contracts): acked-write-durable, no-stale-unflagged-read,
version-integrity and replica-ts-monotone always; the three Byzantine
invariants when ``byzantine_liars > 0``.  On top, the engine measures
availability under the schedule's iid crash component against the
*exact* failure probability ``F_p`` from :mod:`repro.analysis` —
closing the loop between the paper's §4.3/§6 numbers and served
traffic — and, when SLO targets are given, scores the run's error
budget through :func:`~repro.scenarios.slo.slo_report`.

Execution substrates (``mode=``)
--------------------------------
``"inprocess"``
    The zero-latency deterministic transport: sampled latencies are
    accounting entries, awaits are cooperative yields.  Fast, the
    historical default.
``"sim"``
    The same unmodified coordinator/replica stack over
    :class:`~repro.service.simtransport.SimTransport` under a
    :class:`~repro.runtime.clock.VirtualTimeLoop`: latencies, timeouts
    and backoffs *elapse* in virtual time, the run is bit-reproducible
    (the report carries trace and metrics hashes to prove it), and a
    whole run costs milliseconds of wall clock.
``"wall"``
    The identical ``SimTransport`` run over a real clock and event loop
    — every sampled latency is really slept.  Same RNG draws, same
    outcomes, same hashes as ``"sim"``; exists as the honest wall-clock
    baseline the ``--sim`` speedup is measured against.

All randomness is drawn from named :class:`~repro.runtime.rng.RngStreams`
(``chaos.transport``, ``chaos.schedule``, ``chaos.plan``,
``chaos.faults.<client>``, ``chaos.coordinator.<client>``,
``chaos.warmup``, ``chaos.byzantine``, plus ``chaos.arrivals`` for
open-loop runs), so every component owns an independent stream derived
from the one root seed — and turning a feature *on* never shifts the
draws of a run that leaves it off.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..analysis.availability import availability_comparison
from ..core.errors import ServiceError
from ..core.quorum_system import QuorumSystem
from ..core.rwstrategy import PathStrategy
from ..runtime.clock import Clock, VirtualClock, WallClock, run_virtual
from ..runtime.rng import RngStreams
from ..service.cache import CoordinatorCache
from ..service.coordinator import Coordinator, OperationFailed, ReadResult
from ..service.faults import (
    BYZANTINE_MODES,
    ByzantineFault,
    FaultSchedule,
    FaultyTransport,
    Window,
    split_brain_schedule,
)
from ..service.loadgen import key_weights
from ..service.metrics import ServiceMetrics
from ..service.replica import NULL_TIMESTAMP, Replica
from ..service.simtransport import SimTransport
from ..service.transport import InProcessTransport
from .invariants import (
    BYZANTINE_INVARIANTS,
    CORE_INVARIANTS,
    audit_durability,
    audit_lie_detection,
    audit_lie_suspicion,
    audit_monotone,
    check_fabricated_read,
    check_fresh_read,
    check_version_integrity,
)
from .scorecard import SCORECARD_VERSION, digest, invariants_block
from .slo import SloTargets, slo_report

_TS = Tuple[int, int]

_MODES = ("inprocess", "sim", "wall")

_ARRIVALS = ("closed", "poisson")

# Back-compat alias: the digest helper lived here (as a private) before
# the scorecard module existed; tests and the sharded harness import it.
_digest = digest

__all__ = [
    "ChaosConfig",
    "ChaosReport",
    "Scenario",
    "run_chaos",
    "run_scenario",
]


@dataclass
class ChaosConfig:
    """Shape of one chaos run (the scenario's workload recipe)."""

    ops: int = 400
    read_fraction: float = 0.6
    keys: int = 8
    clients: int = 2
    crash_rate: float = 0.15
    epoch: int = 25  # ticks per iid crash epoch
    timeout: float = 50.0
    max_attempts: int = 4
    suspicion_ttl: int = 15
    breaker_threshold: int = 3
    breaker_cooldown: int = 30
    degraded_reads: bool = True
    hinted_handoff: bool = True
    latency_spikes: int = 2
    drops: int = 2
    duplicates: int = 1
    flappers: int = 1
    partitions: int = 1
    hedge_spares: int = 0  # spare replicas per quorum phase (0 = off)
    hedge_delay_ms: float = 0.0  # defer spares this long (0 = upfront)
    unsafe_partial_writes: bool = False  # intentionally breaks intersection
    byzantine_b: int = 0  # masking parameter b: coordinators vote b+1 deep
    byzantine_liars: int = 0  # replicas turned into lying (Byzantine) faults
    byzantine_mode: str = "wrong_value"  # lie flavour, see BYZANTINE_MODES
    lease_ttl: int = 0  # quorum-lease lifetime in ops (0 = leases off)
    read_write: bool = False  # serve reads from the capacity-LP read family
    skew: float = 0.0  # zipf key popularity exponent (0 = uniform, legacy)
    arrival: str = "closed"  # "closed" | "poisson" (open-loop, sim/wall only)
    arrival_rate: float = 0.0  # poisson: mean ops per virtual second
    cache_ttl_ms: float = 0.0  # coordinator-side cache lease (0 = no cache)
    cache_swr_ms: float = 0.0  # stale-while-revalidate grace after the lease

    def validate(self) -> None:
        if self.ops < 1:
            raise ServiceError(f"chaos needs at least one op, got {self.ops}")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ServiceError("read fraction must be in [0,1]")
        if self.keys < 1:
            raise ServiceError("need at least one key")
        if self.clients < 1:
            raise ServiceError("need at least one client")
        if not 0.0 <= self.crash_rate <= 1.0:
            raise ServiceError("crash rate must be in [0,1]")
        if self.epoch < 1:
            raise ServiceError("epoch must be >= 1 tick")
        if self.hedge_spares < 0:
            raise ServiceError("hedge_spares must be >= 0")
        if self.hedge_delay_ms < 0:
            raise ServiceError("hedge_delay_ms must be >= 0")
        if self.unsafe_partial_writes and self.clients < 2:
            raise ServiceError(
                "split-brain demonstration needs at least two clients"
            )
        if self.byzantine_b < 0:
            raise ServiceError("byzantine_b must be >= 0")
        if self.byzantine_liars < 0:
            raise ServiceError("byzantine_liars must be >= 0")
        if self.byzantine_mode not in BYZANTINE_MODES:
            raise ServiceError(
                f"unknown byzantine mode {self.byzantine_mode!r};"
                f" pick one of {BYZANTINE_MODES}"
            )
        if self.lease_ttl < 0:
            raise ServiceError("lease_ttl must be >= 0")
        if self.skew < 0:
            raise ServiceError("skew must be >= 0")
        if self.arrival not in _ARRIVALS:
            raise ServiceError(
                f"unknown arrival mode {self.arrival!r};"
                f" pick one of {_ARRIVALS}"
            )
        if self.arrival == "poisson" and self.arrival_rate <= 0:
            raise ServiceError(
                "poisson arrival needs arrival_rate > 0 (ops per second)"
            )
        if self.arrival_rate < 0:
            raise ServiceError("arrival_rate must be >= 0")
        if self.cache_ttl_ms < 0 or self.cache_swr_ms < 0:
            raise ServiceError("cache ttl/swr must be >= 0")
        if self.cache_swr_ms > 0 and self.cache_ttl_ms <= 0:
            raise ServiceError(
                "cache_swr_ms needs a positive cache_ttl_ms lease"
            )


@dataclass
class ChaosReport:
    """Everything one chaos run produced, JSON-exportable and seed-stable."""

    system_name: str
    n: int
    seed: int
    config: ChaosConfig
    schedule: FaultSchedule
    injected: Dict[str, int]
    operations: Dict[str, int]
    availability: Dict[str, float]
    violations: List[Dict[str, Any]] = field(default_factory=list)
    metrics: Optional[ServiceMetrics] = None
    mode: str = "inprocess"
    trace: List[Dict[str, Any]] = field(default_factory=list)
    hashes: Dict[str, str] = field(default_factory=dict)
    byzantine_replicas: List[int] = field(default_factory=list)
    slo: Optional[Dict[str, Any]] = None  # slo_report block (targets given)
    arrival: Optional[Dict[str, Any]] = None  # open-loop arrival accounting
    cache: Optional[Dict[str, Any]] = None  # cache tier snapshot (if enabled)
    # Wall-clock duration of the run; NOT in to_dict() — the snapshot
    # must stay bit-identical for identical seeds.
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """True when every safety invariant held."""
        return not self.violations

    @property
    def violation_counts(self) -> Dict[str, int]:
        """Violations grouped per invariant (the scorecard histogram)."""
        from .scorecard import violation_counts

        return violation_counts(self.violations)

    def to_dict(self) -> Dict[str, Any]:
        checked = list(CORE_INVARIANTS)
        if self.byzantine_replicas:
            checked += list(BYZANTINE_INVARIANTS)
        snapshot: Dict[str, Any] = {
            "system": self.system_name,
            "n": self.n,
            "seed": self.seed,
            "mode": self.mode,
            "config": asdict(self.config),
            "schedule": self.schedule.to_dict(),
            "byzantine_replicas": list(self.byzantine_replicas),
            "faults_injected": dict(sorted(self.injected.items())),
            "operations": dict(sorted(self.operations.items())),
            "availability": dict(sorted(self.availability.items())),
            "hashes": dict(sorted(self.hashes.items())),
            "invariants": invariants_block(checked, self.violations),
        }
        if self.metrics is not None:
            snapshot["metrics"] = self.metrics.to_dict()
        if self.slo is not None:
            snapshot["slo"] = self.slo
        if self.arrival is not None:
            snapshot["arrival"] = self.arrival
        if self.cache is not None:
            snapshot["cache"] = self.cache
        return snapshot


def _plan(
    rng: np.random.Generator, config: ChaosConfig
) -> List[Tuple[int, str, str]]:
    """Precomputed ``(client, kind, key)`` sequence, one entry per tick.

    ``skew > 0`` draws keys from the power-law popularity of
    :func:`~repro.service.loadgen.key_weights`; ``skew = 0`` keeps the
    legacy uniform integer draws, so existing seeds replay identically.
    """
    reads = rng.random(config.ops) < config.read_fraction
    if config.skew > 0:
        weights = key_weights(config.keys, config.skew)
        keys = rng.choice(config.keys, size=config.ops, p=weights)
    else:
        keys = rng.integers(0, config.keys, size=config.ops)
    return [
        (index % config.clients, "read" if is_read else "write", f"k{int(k):03d}")
        for index, (is_read, k) in enumerate(zip(reads, keys))
    ]


def run_chaos(
    system: QuorumSystem,
    *,
    seed: int = 0,
    config: Optional[ChaosConfig] = None,
    schedule: Optional[FaultSchedule] = None,
    strategy: Optional[PathStrategy] = None,
    mode: str = "inprocess",
    slo: Optional[SloTargets] = None,
) -> ChaosReport:
    """Run one seeded chaos scenario and check every safety invariant.

    A caller-provided ``schedule`` overrides the randomized one (the
    config's fault knobs are then ignored); ``unsafe_partial_writes``
    additionally appends a forced split-brain partition and disables the
    coordinators' full-quorum acknowledgement check — the intentionally
    intersection-breaking scenario that must be *detected*.

    ``mode`` selects the execution substrate (see module docstring):
    ``"inprocess"``, ``"sim"`` (virtual time) or ``"wall"`` (real time,
    same draws as ``"sim"``).  The same seed and config produce the same
    schedule and plan in every mode.  Open-loop Poisson arrival and the
    cache tier need a clock, so they require ``"sim"`` or ``"wall"``.

    ``slo`` targets score the run's per-operation availability/latency
    samples into the report's error-budget block (``report.slo``).
    """
    if mode not in _MODES:
        raise ServiceError(f"unknown chaos mode {mode!r}; pick one of {_MODES}")
    if config is None:
        config = ChaosConfig()
    config.validate()
    if mode == "inprocess" and config.arrival == "poisson":
        raise ServiceError(
            "open-loop poisson arrival needs a clock; use mode='sim' or 'wall'"
        )
    if mode == "inprocess" and config.cache_ttl_ms > 0:
        raise ServiceError(
            "the cache tier leases entries in clock time; use mode='sim'"
            " or 'wall'"
        )
    if strategy is None:
        if config.read_write:
            # Split serving path under faults: reads come from the LP's
            # read-quorum family (small quorums!), writes from the
            # matched write family — the invariants below must hold
            # regardless.  Voted reads need 2b+1-deep intersections, so
            # the LP is constrained accordingly; when no read family is
            # deep enough, read_write_capacity itself falls back to
            # splitting over the write family (unified_read_fallback).
            from ..analysis.capacity import read_write_capacity

            strategy = read_write_capacity(
                system,
                read_fraction=config.read_fraction,
                min_intersection=2 * config.byzantine_b + 1,
            ).strategy
        else:
            from ..analysis.load import optimal_strategy

            strategy = optimal_strategy(system)

    streams = RngStreams(seed)
    ids = sorted(system.universe.ids)
    universe = frozenset(ids)

    # Replica journals for the monotonicity invariant.
    journals: Dict[int, Dict[str, List[_TS]]] = {rid: {} for rid in ids}

    def journal_for(rid: int):
        def on_apply(key: str, counter: int, writer: int) -> None:
            journals[rid].setdefault(key, []).append((counter, writer))

        return on_apply

    replicas = [
        Replica(rid, name=system.universe.name_of(rid), on_apply=journal_for(rid))
        for rid in ids
    ]
    clock: Optional[Clock] = None
    if mode == "inprocess":
        inner: Any = InProcessTransport(
            replicas, seed=streams.seed_for("chaos.transport")
        )
    else:
        clock = VirtualClock() if mode == "sim" else WallClock()
        inner = SimTransport(
            replicas, clock=clock, rng=streams.stream("chaos.transport")
        )

    if schedule is None:
        schedule = FaultSchedule.random(
            streams.stream("chaos.schedule"),
            ids,
            float(config.ops),
            crash_rate=config.crash_rate,
            epoch=float(config.epoch),
            latency_spikes=config.latency_spikes,
            drops=config.drops,
            duplicates=config.duplicates,
            flappers=config.flappers,
            partitions=config.partitions,
            sites=min(config.clients, 2),
        )
    if config.unsafe_partial_writes:
        window = Window(config.ops * 0.25, config.ops * 0.75)
        schedule = schedule.extended(split_brain_schedule(ids, window))

    # Byzantine liars: drawn from their own named stream (so turning them
    # on never shifts the crash/partition schedule), lying for the whole
    # run.  Which replies actually lie is then a pure function of the
    # schedule — FaultyTransport burns no extra coins on it.
    byz_replicas: List[int] = []
    if config.byzantine_liars > 0:
        if config.byzantine_liars > len(ids):
            raise ServiceError(
                f"cannot pick {config.byzantine_liars} liars from"
                f" {len(ids)} replicas"
            )
        byz_rng = streams.stream("chaos.byzantine")
        byz_replicas = sorted(
            int(rid)
            for rid in byz_rng.choice(ids, size=config.byzantine_liars, replace=False)
        )
        schedule = schedule.extended(
            [
                ByzantineFault(
                    frozenset(byz_replicas),
                    Window(0.0),
                    mode=config.byzantine_mode,
                )
            ]
        )

    # Open-loop arrival times, drawn from their own named stream so
    # closed-loop runs burn no extra coins.
    arrivals: Optional[np.ndarray] = None
    if config.arrival == "poisson":
        inter = streams.stream("chaos.arrivals").exponential(
            1000.0 / config.arrival_rate, size=config.ops
        )
        arrivals = np.cumsum(inter)

    # One registry shared by every client's wrapper: the fabricated-read
    # invariant must recognise a lie no matter which liar told it to whom.
    fabricated: set = set()
    transports = [
        FaultyTransport(
            inner,
            schedule,
            seed=streams.seed_for(f"chaos.faults.{client}"),
            site=client % 2,
            fabricated_registry=fabricated,
        )
        for client in range(config.clients)
    ]
    metrics = ServiceMetrics(system.n)
    coordinators = [
        Coordinator(
            system,
            transports[client],
            strategy,
            coordinator_id=client,
            seed=streams.seed_for(f"chaos.coordinator.{client}"),
            timeout=config.timeout,
            max_attempts=config.max_attempts,
            suspicion_ttl=config.suspicion_ttl,
            breaker_threshold=config.breaker_threshold,
            breaker_cooldown=config.breaker_cooldown,
            degraded_reads=config.degraded_reads,
            hinted_handoff=config.hinted_handoff,
            hedge_spares=config.hedge_spares,
            hedge_delay_ms=config.hedge_delay_ms,
            require_full_quorum=not config.unsafe_partial_writes,
            byzantine_b=config.byzantine_b,
            lease_ttl=config.lease_ttl,
            metrics=metrics,
        )
        for client in range(config.clients)
    ]
    plan = _plan(streams.stream("chaos.plan"), config)

    # The shared cache tier (one pool for every client, like one edge
    # cache in front of many app servers).  Requires a clock.
    cache: Optional[CoordinatorCache] = None
    if config.cache_ttl_ms > 0:
        assert clock is not None
        cache = CoordinatorCache(
            clock, ttl_ms=config.cache_ttl_ms, swr_ms=config.cache_swr_ms
        )

    acked_max: Dict[str, _TS] = {}
    acked_values: Dict[Tuple[str, int, int], Any] = {}
    issued_values: Dict[Tuple[str, int, int], Any] = {}
    violations: List[Dict[str, Any]] = []
    trace: List[Dict[str, Any]] = []
    slo_samples: List[Tuple[int, bool, float]] = []
    refresh_tasks: List["asyncio.Task"] = []
    workload_window = {"elapsed_ms": 0.0, "max_spawn_lag_ms": 0.0}
    counts = {
        "reads_ok": 0,
        "reads_degraded": 0,
        "reads_failed": 0,
        "writes_ok": 0,
        "writes_failed": 0,
        "preloads": 0,
    }
    if cache is not None:
        counts["reads_cached"] = 0

    def record_ack(key: str, timestamp: _TS, value: Any) -> None:
        acked_values[(key, timestamp[0], timestamp[1])] = value
        if timestamp > acked_max.get(key, NULL_TIMESTAMP):
            acked_max[key] = timestamp

    def check_read(
        index: int, client: int, key: str, result: ReadResult, expected: Optional[_TS]
    ) -> None:
        timestamp = (result.counter, result.writer)
        # Fabricated values are checked before the stale early-return on
        # purpose: a lie is a violation even when served flagged-stale.
        check_fabricated_read(
            violations,
            op=index,
            client=client,
            key=key,
            value=result.value,
            timestamp=timestamp,
            fabricated=fabricated,
        )
        check_version_integrity(
            violations,
            op=index,
            client=client,
            key=key,
            value=result.value,
            timestamp=timestamp,
            issued_values=issued_values,
        )
        check_fresh_read(
            violations,
            op=index,
            key=key,
            timestamp=timestamp,
            stale=result.stale,
            expected=expected,
            client=client,
        )

    def record_trace(
        index: int, client: int, kind: str, key: str, outcome: str, ts: Optional[_TS]
    ) -> None:
        trace.append(
            {
                "op": index,
                "client": client,
                "kind": kind,
                "key": key,
                "outcome": outcome,
                "ts": list(ts) if ts is not None else None,
            }
        )

    def spawn_refresh(client: int, key: str) -> None:
        # Stale-while-revalidate: the grace-window serve already went
        # out; refresh the entry through a real quorum read, single-
        # flight per key so a stampede of stale hits dedups to one read.
        assert cache is not None
        if not cache.begin_refresh(key):
            return

        async def _refresh() -> None:
            ok = False
            try:
                result = await coordinators[client].read(key)
            except OperationFailed:
                pass
            else:
                if not result.stale:
                    cache.store(key, result.value, result.counter, result.writer)
                    ok = True
            finally:
                cache.end_refresh(key, ok=ok)

        refresh_tasks.append(asyncio.ensure_future(_refresh()))

    def cached_read(
        index: int, client: int, key: str, expected: Optional[_TS]
    ) -> bool:
        """Serve a read from the cache tier if it can; True when served."""
        assert cache is not None
        state, entry = cache.lookup(key)
        if entry is None:
            return False
        stale = state == "stale"
        if stale:
            spawn_refresh(client, key)
        result = ReadResult(
            entry.value, entry.counter, entry.writer, 0.0, 0, stale=stale
        )
        counts["reads_cached"] += 1
        if stale:
            counts["reads_degraded"] += 1
            outcome = "degraded"
        else:
            counts["reads_ok"] += 1
            outcome = "ok"
        slo_samples.append((index, True, 0.0))
        check_read(index, client, key, result, expected)
        record_trace(
            index, client, "read", key, outcome, (result.counter, result.writer)
        )
        return True

    async def run_op(index: int, client: int, kind: str, key: str) -> None:
        coordinator = coordinators[client]
        if kind == "write":
            value = f"v{index}-c{client}"
            # The timestamp is determined before the attempt (clock+1),
            # so even a failed write's partially-applied version is a
            # known, legal version for later reads to return.  No await
            # separates this from write()'s clock bump, so the stamp is
            # exact even when operations overlap under open-loop arrival.
            stamped = (coordinator.clock + 1, coordinator.coordinator_id)
            issued_values[(key, stamped[0], stamped[1])] = value
            try:
                ack = await coordinator.write(key, value)
            except OperationFailed as exc:
                counts["writes_failed"] += 1
                slo_samples.append((index, False, float(exc.latency)))
                record_trace(index, client, kind, key, "failed", None)
            else:
                counts["writes_ok"] += 1
                record_ack(key, (ack.counter, ack.writer), value)
                if cache is not None:
                    # Write-through (newest-wins): the shared pool never
                    # serves an entry older than an acknowledged write.
                    cache.store(key, value, ack.counter, ack.writer)
                slo_samples.append((index, True, float(ack.latency)))
                record_trace(
                    index, client, kind, key, "ok", (ack.counter, ack.writer)
                )
        else:
            # Snapshot the freshness expectation before the first await
            # so a concurrent-with-read write cannot fake a violation.
            expected = acked_max.get(key)
            if cache is not None and cached_read(index, client, key, expected):
                return
            try:
                result = await coordinator.read(key)
            except OperationFailed as exc:
                counts["reads_failed"] += 1
                slo_samples.append((index, False, float(exc.latency)))
                record_trace(index, client, kind, key, "failed", None)
            else:
                if result.stale:
                    counts["reads_degraded"] += 1
                    outcome = "degraded"
                else:
                    counts["reads_ok"] += 1
                    if cache is not None:
                        # Only unflagged quorum results may (re)fill the
                        # cache: a degraded read carries no freshness
                        # claim for later unflagged hits to inherit.
                        cache.store(
                            key, result.value, result.counter, result.writer
                        )
                    outcome = "ok"
                slo_samples.append((index, True, float(result.latency)))
                check_read(index, client, key, result, expected)
                record_trace(
                    index,
                    client,
                    kind,
                    key,
                    outcome,
                    (result.counter, result.writer),
                )

    async def _run() -> None:
        # Preload every key through the fault-free inner transport so each
        # key has an acknowledged baseline version.
        warmup = Coordinator(
            system,
            inner,
            strategy,
            coordinator_id=config.clients,
            seed=streams.seed_for("chaos.warmup"),
            timeout=10_000.0,
            max_attempts=6,
            metrics=ServiceMetrics(system.n),
        )
        for key_index in range(config.keys):
            key, value = f"k{key_index:03d}", f"preload-{key_index}"
            ack = await warmup.write(key, value)
            issued_values[(key, ack.counter, ack.writer)] = value
            record_ack(key, (ack.counter, ack.writer), value)
            if cache is not None:
                # Every lease starts at the same instant — the mass-
                # expiry setup the cache-avalanche incident relies on.
                cache.store(key, value, ack.counter, ack.writer)
            counts["preloads"] += 1

        if arrivals is None:
            for index, (client, kind, key) in enumerate(plan):
                for transport in transports:
                    transport.clock = float(index)
                await run_op(index, client, kind, key)
        else:
            # Open loop: ops fire at their Poisson arrival times whether
            # or not earlier ops finished — the generator never throttles
            # to service capacity, which is what lets latency collapse
            # into queueing/timeout burn instead of hiding in a slow
            # closed loop.
            assert clock is not None
            origin = clock.now()
            pending: List["asyncio.Task"] = []
            for index, (client, kind, key) in enumerate(plan):
                target = origin + float(arrivals[index])
                delay = target - clock.now()
                if delay > 0:
                    await clock.sleep(delay)
                lag = clock.now() - target
                if lag > workload_window["max_spawn_lag_ms"]:
                    workload_window["max_spawn_lag_ms"] = lag
                # Fault ticks advance with the op index, monotonically,
                # exactly as in the closed loop.
                for transport in transports:
                    transport.clock = float(index)
                pending.append(
                    asyncio.ensure_future(run_op(index, client, kind, key))
                )
            await asyncio.gather(*pending)
            workload_window["elapsed_ms"] = clock.now() - origin
        if refresh_tasks:
            await asyncio.gather(*refresh_tasks)
        # Hedged phases may leave absorbed stragglers in flight; the
        # post-run invariants must see their effects (journal appends,
        # suspicion updates) — wait for them all.
        for coordinator in coordinators:
            await coordinator.drain()

    started = time.perf_counter()
    if mode == "sim":
        assert isinstance(clock, VirtualClock)
        run_virtual(_run(), clock=clock)
    else:
        asyncio.run(_run())
    elapsed = time.perf_counter() - started

    # ------------------------------------------------------------------
    # Post-run invariants (the shared registry's audits)
    # ------------------------------------------------------------------
    for key in sorted(acked_max):
        expected = acked_max[key]
        audit_durability(
            violations,
            key=key,
            expected=expected,
            acked_value=acked_values[(key, expected[0], expected[1])],
            replicas=replicas,
        )

    for rid in sorted(journals):
        audit_monotone(violations, journals[rid], replica=rid)

    if byz_replicas:
        audit_lie_detection(
            violations,
            coordinators=coordinators,
            liars=byz_replicas,
            budget=config.byzantine_b,
        )
        audit_lie_suspicion(violations, coordinators=coordinators)

    # ------------------------------------------------------------------
    # Availability: measured under the schedule's iid crash component vs
    # the exact failure probability of the same model.
    # ------------------------------------------------------------------
    alive_ticks = sum(
        1
        for tick in range(config.ops)
        if system.contains_quorum(universe - schedule.crash_down_at(float(tick)))
    )
    availability = availability_comparison(
        system, config.crash_rate, alive_ticks / config.ops
    )
    availability["op_success_rate"] = metrics.success_rate

    injected: Dict[str, int] = {}
    for transport in transports:
        for fault_kind, count in transport.injected.items():
            injected[fault_kind] = injected.get(fault_kind, 0) + count

    metrics_snapshot = metrics.to_dict()
    hashes = {
        "trace": _digest(trace),
        "metrics": _digest(metrics_snapshot),
    }

    arrival_info: Optional[Dict[str, Any]] = None
    if arrivals is not None:
        elapsed_ms = workload_window["elapsed_ms"]
        arrival_info = {
            "mode": "poisson",
            "rate_ops_per_s": config.arrival_rate,
            "elapsed_ms": elapsed_ms,
            "achieved_ops_per_s": (
                config.ops / (elapsed_ms / 1000.0) if elapsed_ms > 0 else 0.0
            ),
            # 0.0 in sim mode by construction: the virtual loop wakes the
            # generator exactly on schedule, so any positive lag means
            # the open loop failed to sustain the configured rate.
            "max_spawn_lag_ms": workload_window["max_spawn_lag_ms"],
        }

    return ChaosReport(
        system_name=system.system_name,
        n=system.n,
        seed=seed,
        config=config,
        schedule=schedule,
        injected=injected,
        operations=counts,
        availability=availability,
        violations=violations,
        metrics=metrics,
        mode=mode,
        trace=trace,
        hashes=hashes,
        byzantine_replicas=byz_replicas,
        slo=slo_report(slo_samples, slo) if slo is not None else None,
        arrival=arrival_info,
        cache=cache.snapshot() if cache is not None else None,
        elapsed_seconds=elapsed,
    )


# ----------------------------------------------------------------------
# Declarative scenarios
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Scenario:
    """A named, declarative incident: schedule + workload + SLO.

    ``schedule`` builds the fault schedule from the replica ids and the
    config (None keeps the engine's seeded randomized schedule, driven
    by the config's fault knobs).  ``expect_violations`` documents
    intentionally-unsafe demonstrations — the incident CLI and CI treat
    violations in such runs as the *expected* outcome.
    """

    name: str
    summary: str
    config: ChaosConfig
    slo: SloTargets
    system: str = "majority:5"
    schedule: Optional[
        Callable[[List[int], ChaosConfig], FaultSchedule]
    ] = None
    expect_violations: bool = False

    def describe(self) -> Dict[str, Any]:
        """The ``incident list`` row (no run required)."""
        return {
            "name": self.name,
            "summary": self.summary,
            "system": self.system,
            "slo": self.slo.to_dict(),
            "expect_violations": self.expect_violations,
        }


def run_scenario(
    scenario: Scenario,
    *,
    seed: int = 0,
    mode: str = "sim",
    system_spec: Optional[str] = None,
    **overrides: Any,
) -> Tuple[ChaosReport, Dict[str, Any]]:
    """Execute one named scenario and build its versioned scorecard.

    ``system_spec`` overrides the scenario's default system (the CI
    matrix sweeps incidents across families this way); keyword
    ``overrides`` map onto :class:`ChaosConfig` fields (``ops=...``,
    ``clients=...``).  Returns ``(report, scorecard)`` where the
    scorecard is the report snapshot plus the scenario header — the
    JSON ``quorumtool incident run`` emits.
    """
    from ..cli import build_system

    spec = system_spec or scenario.system
    system = build_system(spec)
    config = replace(scenario.config, **overrides) if overrides else scenario.config
    schedule = None
    if scenario.schedule is not None:
        schedule = scenario.schedule(sorted(system.universe.ids), config)
    report = run_chaos(
        system,
        seed=seed,
        config=config,
        schedule=schedule,
        mode=mode,
        slo=scenario.slo,
    )
    scorecard: Dict[str, Any] = {
        "scorecard_version": SCORECARD_VERSION,
        "scenario": scenario.name,
        "summary": scenario.summary,
        "expect_violations": scenario.expect_violations,
    }
    scorecard.update(report.to_dict())
    return report, scorecard
