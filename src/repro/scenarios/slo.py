"""SLO targets and error-budget scoring for scenario scorecards.

An :class:`SloTargets` names what the service promises — a minimum
availability plus any number of latency-percentile ceilings — and
:func:`slo_report` scores one run's per-operation samples against it:
observed availability and percentiles (computed through the shared
:class:`~repro.runtime.metrics.LatencyHistogram`, the same numerics the
service metrics use), the error budget the availability target implies,
how much of it the run burned, and the burn rate per fixed-size
operation window — the windowed view SRE burn-rate alerts are defined
over.  Everything is a pure function of the samples, so sim-mode
scorecards stay bit-reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Sequence, Tuple

from ..core.errors import ServiceError
from ..runtime.metrics import LatencyHistogram

__all__ = ["SloTargets", "slo_report"]

#: One scored operation: (op index, served ok, end-to-end latency ms).
Sample = Tuple[int, bool, float]


@dataclass(frozen=True)
class SloTargets:
    """What the scenario promises its callers.

    ``availability`` is the minimum fraction of operations served
    (strictly below 1.0 — a zero error budget makes burn rates
    meaningless); ``latency_ms`` maps percentile labels (``"p95"``,
    ``"p99"``, any ``p<float>``) to latency ceilings in milliseconds;
    ``window_ops`` sizes the burn-rate windows.
    """

    availability: float = 0.999
    latency_ms: Mapping[str, float] = field(default_factory=dict)
    window_ops: int = 50

    def validate(self) -> None:
        if not 0.0 < self.availability < 1.0:
            raise ServiceError(
                "SLO availability target must be in (0,1), got"
                f" {self.availability}"
            )
        for label, ceiling in self.latency_ms.items():
            _percentile_of(label)  # raises on malformed labels
            if ceiling <= 0:
                raise ServiceError(
                    f"latency ceiling for {label} must be positive,"
                    f" got {ceiling}"
                )
        if self.window_ops < 1:
            raise ServiceError("window_ops must be >= 1")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "availability": self.availability,
            "latency_ms": dict(sorted(self.latency_ms.items())),
            "window_ops": self.window_ops,
        }


def _percentile_of(label: str) -> float:
    """``"p99"`` -> 99.0 (raises :class:`ServiceError` on junk)."""
    if not label.startswith("p"):
        raise ServiceError(f"latency target label {label!r} must be p<q>")
    try:
        q = float(label[1:])
    except ValueError:
        raise ServiceError(f"latency target label {label!r} must be p<q>")
    if not 0.0 <= q <= 100.0:
        raise ServiceError(f"latency percentile {label!r} outside [0,100]")
    return q


def slo_report(
    samples: Sequence[Sample], targets: SloTargets
) -> Dict[str, Any]:
    """Score one run's operation samples against its SLO targets.

    Returns the scorecard ``slo`` block: targets, observed availability
    and latency percentiles, the error-budget arithmetic (allowed vs
    observed error rate, fraction of budget spent, overall burn rate),
    per-window burn rates, and a ``met`` verdict per target.  Failed
    operations stay in the latency population — they burned their
    timeout, and hiding them would flatter the percentiles.
    """
    targets.validate()
    total = len(samples)
    served = sum(1 for _, ok, _ in samples if ok)
    availability = served / total if total else 1.0

    histogram = LatencyHistogram()
    for _, _, latency in samples:
        histogram.record(latency)
    observed_latency = {
        label: histogram.percentile(_percentile_of(label))
        for label in sorted(targets.latency_ms)
    }

    allowed_error_rate = 1.0 - targets.availability
    observed_error_rate = 1.0 - availability
    # Burn rate 1.0 = errors arriving exactly at budget pace; >1 burns
    # the budget faster than the SLO window sustains.
    burn_rate = observed_error_rate / allowed_error_rate
    budget_spent = burn_rate  # over the whole run they coincide

    windows: List[Dict[str, Any]] = []
    for start in range(0, total, targets.window_ops):
        chunk = samples[start : start + targets.window_ops]
        errors = sum(1 for _, ok, _ in chunk if not ok)
        window_error_rate = errors / len(chunk)
        windows.append(
            {
                "start_op": start,
                "ops": len(chunk),
                "error_rate": window_error_rate,
                "burn_rate": window_error_rate / allowed_error_rate,
            }
        )
    max_window_burn = max((w["burn_rate"] for w in windows), default=0.0)

    latency_met = {
        label: observed_latency[label] <= ceiling
        for label, ceiling in sorted(targets.latency_ms.items())
    }
    availability_met = availability >= targets.availability
    return {
        "targets": targets.to_dict(),
        "observed": {
            "ops": total,
            "served": served,
            "availability": availability,
            "latency_ms": observed_latency,
        },
        "error_budget": {
            "allowed_error_rate": allowed_error_rate,
            "observed_error_rate": observed_error_rate,
            "budget_spent": budget_spent,
            "burn_rate": burn_rate,
            "max_window_burn_rate": max_window_burn,
        },
        "windows": windows,
        "met": {
            "availability": availability_met,
            "latency": latency_met,
            "ok": availability_met and all(latency_met.values()),
        },
    }
