"""Declarative scenario engine + named SRE incident library.

One runner (:mod:`repro.scenarios.engine`) executes a Scenario — fault
schedule + workload recipe + the shared invariant set
(:mod:`repro.scenarios.invariants`) + SLO targets
(:mod:`repro.scenarios.slo`) — over the plain service stack, producing
versioned JSON scorecards (:mod:`repro.scenarios.scorecard`) with
bit-reproducible trace hashes in ``sim`` mode.  The named incidents
live in :mod:`repro.scenarios.library`, behind ``quorumtool incident``;
``quorumtool chaos`` and the sharded harness run on the same engine and
registry.
"""

from .engine import ChaosConfig, ChaosReport, Scenario, run_chaos, run_scenario
from .invariants import (
    BYZANTINE_INVARIANTS,
    CORE_INVARIANTS,
    INVARIANTS,
    audit_durability,
    audit_lie_detection,
    audit_lie_suspicion,
    audit_monotone,
    check_fabricated_read,
    check_fresh_read,
    check_issued_value,
    check_version_integrity,
)
from .library import INCIDENTS, get_incident, list_incidents
from .scorecard import (
    SCORECARD_VERSION,
    digest,
    invariants_block,
    violation_counts,
)
from .slo import SloTargets, slo_report

__all__ = [
    "BYZANTINE_INVARIANTS",
    "CORE_INVARIANTS",
    "ChaosConfig",
    "ChaosReport",
    "INCIDENTS",
    "INVARIANTS",
    "SCORECARD_VERSION",
    "Scenario",
    "SloTargets",
    "audit_durability",
    "audit_lie_detection",
    "audit_lie_suspicion",
    "audit_monotone",
    "check_fabricated_read",
    "check_fresh_read",
    "check_issued_value",
    "check_version_integrity",
    "digest",
    "get_incident",
    "invariants_block",
    "list_incidents",
    "run_chaos",
    "run_scenario",
    "slo_report",
    "violation_counts",
]
