"""The named SRE incident library — declarative scenarios over the engine.

Each incident is a :class:`~repro.scenarios.engine.Scenario`: a fault
schedule built from whatever replica ids the chosen quorum system has
(so every incident runs unchanged against ``majority:5``,
``hgrid:4x4``, ``htriang:15``, …), a workload recipe, the shared
invariant set, and SLO targets scored into the scorecard's error-budget
block.  ``quorumtool incident list`` prints this table;
``quorumtool incident run <name>`` executes one and emits the versioned
JSON scorecard.  All incidents are safety-clean by construction
(``expect_violations=False``): they demonstrate *availability and
latency* failure modes — the SLO block is where the damage shows — while
the invariants must keep holding, which is exactly what CI gates on.

The library (names follow the runbook convention ``<area>-<number>``):

``incident-010-split-brain``
    A clean two-site network partition mid-run.  The coordinator keeps
    requiring full quorums, so the minority site *loses availability
    instead of consistency* — the safe twin of the
    ``--unsafe-partial-writes`` demonstration.
``incident-011-replica-lag-read-repair-storm``
    A minority of replicas is down for the first half of the run and
    comes back cold.  Quorum reads keep succeeding throughout; after
    recovery every read that touches a lagging replica triggers read
    repair (the ``read_repairs`` counter in the metrics block is the
    storm).
``incident-012-hot-key-zipf``
    Zipf key popularity (exponent 1.2 over 12 keys) under light faults:
    the hot key concentrates on one quorum's replicas.  The metrics
    block's key-skew summary quantifies the imbalance.
``incident-015-cache-avalanche``
    Open-loop Poisson traffic over the coordinator-side cache tier.  The
    warmup fills every lease at the same instant, so they all expire
    together into a slow origin (a latency fault covers the expiry) —
    the classic avalanche; stale-while-revalidate grace plus
    single-flight refresh is the mitigation being measured.
``net-104-lb-oscillation``
    Latency flips between the two halves of the replica set every ~50
    ops.  Hedged quorum phases (one delayed spare) chase the fast half;
    the scorecard shows what the oscillation costs in tail latency.
``obs-103-slo-burn``
    Open-loop Poisson traffic through a mid-run latency storm on every
    replica.  The per-window burn rates in the SLO block spike while the
    whole-run average stays tame — the reason burn-rate alerts are
    windowed.
"""

from __future__ import annotations

from typing import Dict, List

from ..core.errors import ServiceError
from ..runtime.faults import CrashFault, LatencyFault, Window
from ..service.faults import FaultSchedule, split_brain_schedule
from .engine import ChaosConfig, Scenario
from .slo import SloTargets

__all__ = ["INCIDENTS", "get_incident", "list_incidents"]


def _split_brain(ids: List[int], config: ChaosConfig) -> FaultSchedule:
    return FaultSchedule(
        split_brain_schedule(
            ids, Window(config.ops * 0.25, config.ops * 0.75)
        )
    )


def _minority_down_first_half(
    ids: List[int], config: ChaosConfig
) -> FaultSchedule:
    # The largest set that can never block a quorum on majority-style
    # systems: strictly less than half the universe, down from the
    # start, recovering cold at mid-run.
    lagging = ids[: max(1, (len(ids) - 1) // 2)]
    return FaultSchedule(
        [CrashFault(frozenset(lagging), Window(0.0, config.ops * 0.5))]
    )


def _origin_slow_at_expiry(
    ids: List[int], config: ChaosConfig
) -> FaultSchedule:
    # The latency storm covers the first mass lease expiry (every key
    # was cached at the same warmup instant) and most of the run after
    # it, so refreshes pay the slow origin.
    return FaultSchedule(
        [
            LatencyFault(
                frozenset(ids),
                Window(config.ops * 0.2, config.ops * 0.8),
                extra=10.0,
                factor=2.0,
            )
        ]
    )


def _oscillating_halves(ids: List[int], config: ChaosConfig) -> FaultSchedule:
    # Latency ping-pongs between the two halves of the replica set in
    # ~50-op beats, like a load balancer flapping between two backend
    # pools that take turns being overloaded.
    half = len(ids) // 2
    first, second = frozenset(ids[:half]), frozenset(ids[half:])
    faults = []
    beat = 50.0
    tick = 0.0
    while tick < config.ops:
        faults.append(
            LatencyFault(first, Window(tick, tick + beat), extra=15.0, factor=3.0)
        )
        faults.append(
            LatencyFault(
                second, Window(tick + beat, tick + 2 * beat), extra=15.0, factor=3.0
            )
        )
        tick += 2 * beat
    return FaultSchedule(faults)


def _midrun_latency_storm(
    ids: List[int], config: ChaosConfig
) -> FaultSchedule:
    return FaultSchedule(
        [
            LatencyFault(
                frozenset(ids),
                Window(config.ops * 0.3, config.ops * 0.55),
                extra=30.0,
                factor=4.0,
            )
        ]
    )


#: The named incident library, keyed by incident name.
INCIDENTS: Dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        Scenario(
            name="incident-010-split-brain",
            summary=(
                "two-site partition at mid-run; full-quorum writes trade"
                " availability for consistency"
            ),
            config=ChaosConfig(
                ops=240,
                clients=2,
                crash_rate=0.0,
                latency_spikes=0,
                drops=0,
                duplicates=0,
                flappers=0,
                partitions=0,
            ),
            slo=SloTargets(
                availability=0.75, latency_ms={"p95": 120.0}, window_ops=40
            ),
            schedule=_split_brain,
        ),
        Scenario(
            name="incident-011-replica-lag-read-repair-storm",
            summary=(
                "minority down for the first half recovers cold; reads"
                " trigger a read-repair storm"
            ),
            config=ChaosConfig(
                ops=400,
                read_fraction=0.8,
                clients=2,
                crash_rate=0.0,
                latency_spikes=0,
                drops=0,
                duplicates=0,
                flappers=0,
                partitions=0,
            ),
            slo=SloTargets(
                availability=0.98, latency_ms={"p95": 30.0}, window_ops=50
            ),
            schedule=_minority_down_first_half,
        ),
        Scenario(
            name="incident-012-hot-key-zipf",
            summary=(
                "zipf(1.2) key popularity under light faults concentrates"
                " load on the hot key's quorums"
            ),
            config=ChaosConfig(
                ops=400,
                read_fraction=0.7,
                keys=12,
                clients=2,
                skew=1.2,
                crash_rate=0.05,
                latency_spikes=2,
                drops=1,
                duplicates=0,
                flappers=0,
                partitions=0,
            ),
            slo=SloTargets(
                availability=0.97, latency_ms={"p95": 30.0}, window_ops=50
            ),
        ),
        Scenario(
            name="incident-015-cache-avalanche",
            summary=(
                "poisson traffic over the cache tier; warmup leases expire"
                " together into a slow origin"
            ),
            config=ChaosConfig(
                ops=400,
                read_fraction=0.8,
                clients=4,
                crash_rate=0.0,
                latency_spikes=0,
                drops=0,
                duplicates=0,
                flappers=0,
                partitions=0,
                arrival="poisson",
                arrival_rate=400.0,
                cache_ttl_ms=150.0,
                cache_swr_ms=50.0,
            ),
            slo=SloTargets(
                availability=0.98, latency_ms={"p95": 20.0}, window_ops=50
            ),
            schedule=_origin_slow_at_expiry,
        ),
        Scenario(
            name="net-104-lb-oscillation",
            summary=(
                "latency ping-pongs between replica halves every ~50 ops;"
                " hedged requests chase the fast half"
            ),
            config=ChaosConfig(
                ops=400,
                read_fraction=0.7,
                clients=2,
                crash_rate=0.0,
                latency_spikes=0,
                drops=0,
                duplicates=0,
                flappers=0,
                partitions=0,
                hedge_spares=1,
                hedge_delay_ms=2.0,
            ),
            slo=SloTargets(
                availability=0.995, latency_ms={"p95": 25.0}, window_ops=50
            ),
            schedule=_oscillating_halves,
        ),
        Scenario(
            name="obs-103-slo-burn",
            summary=(
                "open-loop poisson through a mid-run latency storm; windowed"
                " burn rates spike while the average stays tame"
            ),
            config=ChaosConfig(
                ops=500,
                read_fraction=0.7,
                keys=16,
                clients=4,
                crash_rate=0.0,
                latency_spikes=0,
                drops=0,
                duplicates=0,
                flappers=0,
                partitions=0,
                arrival="poisson",
                arrival_rate=500.0,
            ),
            slo=SloTargets(
                availability=0.995, latency_ms={"p95": 25.0}, window_ops=50
            ),
            schedule=_midrun_latency_storm,
        ),
    )
}


def get_incident(name: str) -> Scenario:
    """Look an incident up by name (:class:`ServiceError` on unknown)."""
    try:
        return INCIDENTS[name]
    except KeyError:
        known = ", ".join(sorted(INCIDENTS))
        raise ServiceError(f"unknown incident {name!r}; known: {known}")


def list_incidents() -> List[Dict[str, object]]:
    """The ``incident list`` table, name-ordered."""
    return [INCIDENTS[name].describe() for name in sorted(INCIDENTS)]
