"""The shared safety-invariant registry for every chaos harness.

One implementation of each invariant, used by the service chaos engine
(:mod:`repro.scenarios.engine`), the resharding harness
(:mod:`repro.sharding.chaos`) and the incident library alike.  The
checks are deliberately parameterised rather than object-oriented: each
is a pure function appending violation dicts to a caller-owned list, so
a harness composes exactly the checks its execution model supports and
the violation records stay byte-identical to what the pre-refactor
copies emitted.

Two families:

* **read-time checks** run against each successful read
  (:func:`check_fabricated_read`, :func:`check_version_integrity`,
  :func:`check_issued_value`, :func:`check_fresh_read`);
* **post-run audits** sweep replica state and coordinator bookkeeping
  after the workload drained (:func:`audit_durability`,
  :func:`audit_monotone`, :func:`audit_lie_detection`,
  :func:`audit_lie_suspicion`).

``INVARIANTS`` maps every invariant name to its one-line contract — the
single source for scorecard ``checked`` lists and the docs table.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..service.replica import NULL_TIMESTAMP

_TS = Tuple[int, int]

__all__ = [
    "BYZANTINE_INVARIANTS",
    "CORE_INVARIANTS",
    "INVARIANTS",
    "audit_durability",
    "audit_lie_detection",
    "audit_lie_suspicion",
    "audit_monotone",
    "check_fabricated_read",
    "check_fresh_read",
    "check_issued_value",
    "check_version_integrity",
]

#: Every known invariant and its contract, scorecard-ordered.
INVARIANTS: Dict[str, str] = {
    "acked-write-durable": (
        "after the run, the newest version surviving on any authoritative"
        " replica is at least the newest acknowledged timestamp per key,"
        " and carries the acknowledged value on equality"
    ),
    "no-stale-unflagged-read": (
        "a successful unflagged read returns a timestamp at least as new"
        " as every write acknowledged before the read began; stale=True"
        " degraded reads are exempt by contract"
    ),
    "version-integrity": (
        "every version a read returns was actually issued by some writer,"
        " with the value it was issued with"
    ),
    "replica-ts-monotone": (
        "replica journals only ever move forward (write idempotence under"
        " duplication, handoff and migration replay)"
    ),
    "byzantine-fabricated-read": (
        "no successful read (degraded included) ever returns a value a"
        " lying replica fabricated"
    ),
    "lie-detection-sound": (
        "within the masking budget, every replica a coordinator marks as"
        " a liar really is one"
    ),
    "lie-suspicion-reflected": (
        "every caught liar entered the suspicion/breaker machinery, so"
        " lying replicas are steered away from"
    ),
}

#: The four invariants every harness checks.
CORE_INVARIANTS: Tuple[str, ...] = (
    "acked-write-durable",
    "no-stale-unflagged-read",
    "version-integrity",
    "replica-ts-monotone",
)

#: The three extra invariants active when replicas lie.
BYZANTINE_INVARIANTS: Tuple[str, ...] = (
    "byzantine-fabricated-read",
    "lie-detection-sound",
    "lie-suspicion-reflected",
)


# ----------------------------------------------------------------------
# Read-time checks
# ----------------------------------------------------------------------
def check_fabricated_read(
    violations: List[Dict[str, Any]],
    *,
    op: int,
    client: int,
    key: str,
    value: Any,
    timestamp: _TS,
    fabricated: Set[Any],
) -> None:
    """**byzantine-fabricated-read**: the value is not a registered lie.

    Checked before any stale exemption on purpose: a fabricated value is
    a safety violation even when served flagged-stale.
    """
    if value in fabricated:
        violations.append(
            {
                "invariant": "byzantine-fabricated-read",
                "op": op,
                "client": client,
                "key": key,
                "detail": (
                    f"read returned fabricated value {value!r}"
                    f" at {timestamp}"
                ),
            }
        )


def check_version_integrity(
    violations: List[Dict[str, Any]],
    *,
    op: int,
    client: int,
    key: str,
    value: Any,
    timestamp: _TS,
    issued_values: Mapping[Tuple[str, int, int], Any],
) -> None:
    """**version-integrity**, exact form: the returned ``(key, counter,
    writer)`` version was registered before some write attempt, with
    exactly this value.  Null timestamps (never-written keys) pass."""
    if timestamp == NULL_TIMESTAMP:
        return
    version = (key, timestamp[0], timestamp[1])
    issued = issued_values.get(version)
    if version not in issued_values:
        violations.append(
            {
                "invariant": "version-integrity",
                "op": op,
                "client": client,
                "key": key,
                "detail": f"read returned never-issued version {timestamp}",
            }
        )
    elif issued != value:
        violations.append(
            {
                "invariant": "version-integrity",
                "op": op,
                "client": client,
                "key": key,
                "detail": (
                    f"version {timestamp} returned value {value!r},"
                    f" issued as {issued!r}"
                ),
            }
        )


def check_issued_value(
    violations: List[Dict[str, Any]],
    *,
    op: int,
    key: str,
    value: Any,
    timestamp: _TS,
    issued: Set[Any],
) -> None:
    """**version-integrity**, value-set form: every non-null value a read
    returns was issued for that key by some writer.  The form the
    sharded harness uses, where coordinator logical clocks restart
    across migration epochs and exact timestamps are not stable."""
    if value is not None and value not in issued:
        violations.append(
            {
                "invariant": "version-integrity",
                "op": op,
                "key": key,
                "detail": (
                    f"read returned never-issued value"
                    f" {value!r} at {timestamp}"
                ),
            }
        )


def check_fresh_read(
    violations: List[Dict[str, Any]],
    *,
    op: int,
    key: str,
    timestamp: _TS,
    stale: bool,
    expected: Optional[_TS],
    client: Optional[int] = None,
) -> None:
    """**no-stale-unflagged-read**: an unflagged read is at least as new
    as ``expected`` — the newest timestamp acknowledged for the key
    *before the read began* (snapshot it before the first await when
    operations run concurrently).  ``stale=True`` reads are exempt:
    the flag is precisely the permission to lag."""
    if stale:
        return
    if expected is not None and timestamp < expected:
        violation: Dict[str, Any] = {
            "invariant": "no-stale-unflagged-read",
            "op": op,
        }
        if client is not None:
            violation["client"] = client
        violation["key"] = key
        violation["detail"] = (
            f"read returned {timestamp}, but {expected} was"
            " acknowledged earlier"
        )
        violations.append(violation)


# ----------------------------------------------------------------------
# Post-run audits
# ----------------------------------------------------------------------
def audit_durability(
    violations: List[Dict[str, Any]],
    *,
    key: str,
    expected: _TS,
    acked_value: Any,
    replicas: Iterable[Any],
) -> None:
    """**acked-write-durable** for one key: the newest version surviving
    on ``replicas`` (the key's authoritative set) is at least
    ``expected``, and holds ``acked_value`` on timestamp equality."""
    surviving: _TS = NULL_TIMESTAMP
    surviving_value: Any = None
    for replica in replicas:
        version = replica.get(key)
        if version is not None and version.timestamp > surviving:
            surviving = version.timestamp
            surviving_value = version.value
    if surviving < expected:
        violations.append(
            {
                "invariant": "acked-write-durable",
                "key": key,
                "detail": (
                    f"newest surviving version is {surviving}, but"
                    f" {expected} was acknowledged"
                ),
            }
        )
    elif surviving == expected and surviving_value != acked_value:
        violations.append(
            {
                "invariant": "acked-write-durable",
                "key": key,
                "detail": (
                    f"surviving version {surviving} holds"
                    f" {surviving_value!r}, acknowledged as"
                    f" {acked_value!r}"
                ),
            }
        )


def audit_monotone(
    violations: List[Dict[str, Any]],
    journal: Mapping[str, List[_TS]],
    *,
    replica: int,
    shard: Optional[str] = None,
) -> None:
    """**replica-ts-monotone** for one replica's journal: per key, the
    applied ``(counter, writer)`` sequence strictly increases."""
    for key in sorted(journal):
        entries = journal[key]
        for previous, current in zip(entries, entries[1:]):
            if current <= previous:
                violation: Dict[str, Any] = {
                    "invariant": "replica-ts-monotone",
                }
                if shard is not None:
                    violation["shard"] = shard
                violation["replica"] = replica
                violation["key"] = key
                violation["detail"] = f"{previous} then {current}"
                violations.append(violation)


def audit_lie_detection(
    violations: List[Dict[str, Any]],
    *,
    coordinators: Sequence[Any],
    liars: List[int],
    budget: int,
) -> None:
    """**lie-detection-sound**: no honest replica was marked as a liar.

    Soundness is only guaranteed inside the masking budget: with more
    than ``budget`` liars, colluding votes can out-number the truth and
    frame honest replicas — that regime is the expected-failure case,
    already flagged by byzantine-fabricated-read — so the audit is
    skipped there.
    """
    if len(liars) > budget:
        return
    accused: Set[int] = set()
    for coordinator in coordinators:
        accused |= coordinator.lied_replicas
    framed = sorted(accused - set(liars))
    if framed:
        violations.append(
            {
                "invariant": "lie-detection-sound",
                "detail": (
                    f"honest replicas {framed} marked as liars"
                    f" (actual liars: {liars})"
                ),
            }
        )


def audit_lie_suspicion(
    violations: List[Dict[str, Any]],
    *,
    coordinators: Sequence[Any],
) -> None:
    """**lie-suspicion-reflected**: every caught liar fed the suspicion
    machinery of the coordinator that caught it."""
    for coordinator in coordinators:
        unreflected = sorted(
            coordinator.lied_replicas - coordinator.suspicion_history
        )
        if unreflected:
            violations.append(
                {
                    "invariant": "lie-suspicion-reflected",
                    "client": coordinator.coordinator_id,
                    "detail": (
                        f"caught liars {unreflected} never entered"
                        " the suspicion set"
                    ),
                }
            )
