"""Composition of quorum systems.

Hierarchical quorum constructions are compositions: an *outer* system is
defined over logical objects, and each logical object is itself realised
by an *inner* quorum system over real elements.  A quorum of the composite
picks an outer quorum and, inside every logical object of that outer
quorum, an inner quorum.

This operator underlies the paper's constructions:

* HQS (Kumar) is majority composed with majority, recursively;
* the hierarchical grid composes grid full-lines / row-covers level by
  level;
* the hierarchical triangle composes triangle quorums with sub-triangles
  and sub-grids.

Composition preserves the intersection property: two composite quorums
pick two outer quorums which share a logical object ``o``; inside ``o``
both picked an inner quorum of the same inner system, and those intersect.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Mapping, Sequence, Tuple

from .errors import ConstructionError
from .quorum_system import Quorum, QuorumSystem
from .universe import Universe


def compose_universes(inner_universes: Sequence[Universe]) -> Tuple[Universe, List[Dict[int, int]]]:
    """Concatenate inner universes into one composite universe.

    Returns the composite universe plus, for each inner universe, a map
    from inner element id to composite element id.  Names are tagged with
    the inner index to keep them distinct: element ``x`` of inner ``k``
    becomes ``(k, x)``.
    """
    names = []
    offsets: List[Dict[int, int]] = []
    base = 0
    for index, inner in enumerate(inner_universes):
        offsets.append({i: base + i for i in inner.ids})
        names.extend((index, name) for name in inner.names)
        base += inner.size
    return Universe(names), offsets


class ComposedQuorumSystem(QuorumSystem):
    """The composition of an outer system with one inner system per object.

    Parameters
    ----------
    outer:
        Quorum system over logical objects ``0..k-1``.
    inners:
        One inner quorum system per logical object; ``len(inners)`` must
        equal ``outer.n``.

    Notes
    -----
    The number of minimal quorums is the product of inner counts over each
    outer quorum, so this explicit composition is intended for the small /
    medium systems the paper evaluates (n <= ~105).  Structured
    constructions avoid materialisation via closed-form availability.
    """

    def __init__(self, outer: QuorumSystem, inners: Sequence[QuorumSystem]) -> None:
        if len(inners) != outer.n:
            raise ConstructionError(
                f"outer system has {outer.n} objects but {len(inners)} inner"
                " systems were supplied"
            )
        universe, offsets = compose_universes([s.universe for s in inners])
        super().__init__(universe)
        self._outer = outer
        self._inners = tuple(inners)
        self._offsets = offsets
        self.system_name = (
            f"compose({outer.system_name}; "
            + ", ".join(s.system_name for s in inners)
            + ")"
        )

    @property
    def outer(self) -> QuorumSystem:
        """The outer (logical-object level) system."""
        return self._outer

    @property
    def inners(self) -> Tuple[QuorumSystem, ...]:
        """The inner systems, one per logical object."""
        return self._inners

    def lift_inner_quorum(self, object_index: int, quorum: Quorum) -> Quorum:
        """Translate an inner quorum of the given object to composite ids."""
        offset = self._offsets[object_index]
        return frozenset(offset[e] for e in quorum)

    def _generate_quorums(self) -> Iterator[Quorum]:
        for outer_quorum in self._outer.minimal_quorums():
            objects = sorted(outer_quorum)
            inner_choices = [
                [self.lift_inner_quorum(o, q) for q in self._inners[o].minimal_quorums()]
                for o in objects
            ]
            for pick in itertools.product(*inner_choices):
                combined: frozenset = frozenset()
                for part in pick:
                    combined |= part
                yield combined

    def failure_probability_exact(self, p: float) -> float:
        """Exact failure probability by two-level decomposition.

        Logical objects fail independently of each other (their element
        sets are disjoint), each with its inner failure probability, so the
        composite failure probability is the outer system's failure event
        evaluated under *heterogeneous* object failure probabilities.
        """
        from ..analysis.availability import (
            failure_probability,
            failure_probability_heterogeneous,
        )

        inner_failures = [
            failure_probability(inner, p) for inner in self._inners
        ]
        return failure_probability_heterogeneous(self._outer, inner_failures)
