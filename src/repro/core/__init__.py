"""Core quorum-system abstractions.

Exports the vocabulary types used throughout the library: the element
:class:`Universe`, the :class:`QuorumSystem` base class with its explicit
variant, probability :class:`Strategy` objects and the generic
hierarchical :class:`ComposedQuorumSystem`.
"""

from . import bitpack
from .composition import ComposedQuorumSystem, compose_universes
from .errors import (
    AnalysisError,
    ConstructionError,
    IntersectionViolation,
    ProtocolError,
    QuorumError,
    SimulationError,
    StrategyError,
)
from .kcoterie import KCoterie
from .quorum_system import (
    ExplicitQuorumSystem,
    Quorum,
    QuorumSystem,
    reduce_to_coterie,
)
from .serialization import (
    dump as dump_system,
    dumps as dumps_system,
    load as load_system,
    loads as loads_system,
    system_from_dict,
    system_to_dict,
)
from .rwstrategy import ReadWriteStrategy
from .sampling import AliasTable
from .strategy import Strategy, balanced_strategy_over
from .universe import Universe

__all__ = [
    "AliasTable",
    "AnalysisError",
    "bitpack",
    "ComposedQuorumSystem",
    "ConstructionError",
    "ExplicitQuorumSystem",
    "IntersectionViolation",
    "KCoterie",
    "ProtocolError",
    "Quorum",
    "ReadWriteStrategy",
    "QuorumError",
    "QuorumSystem",
    "SimulationError",
    "Strategy",
    "StrategyError",
    "Universe",
    "balanced_strategy_over",
    "compose_universes",
    "dump_system",
    "dumps_system",
    "load_system",
    "loads_system",
    "system_from_dict",
    "system_to_dict",
    "reduce_to_coterie",
]
