"""Packed-bitmask helpers shared across the library.

Several hot paths need "is this set a subset of that one" or "how many
members of this quorum are down" over families of thousands of quorums:
coterie reduction (:func:`repro.core.quorum_system.reduce_to_coterie`),
strategy restriction (:meth:`repro.core.strategy.Strategy.avoiding`),
and induced-load evaluation.  All of them share the same representation,
so it lives here once: each set of element ids becomes a row of
``uint64`` lanes, element ``e`` setting bit ``e % 64`` of lane
``e // 64``.  Packing itself is vectorised — one ``np.add.at`` scatter
over the flattened lane matrix instead of a Python double loop — which
is what makes packing tens of thousands of wall-system quorums cheap
enough to do eagerly.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np

#: Bits per packed lane.
LANE_BITS = 64


def lanes_for(size: int) -> int:
    """Number of ``uint64`` lanes needed for element ids in ``[0, size)``."""
    return max(1, (int(size) + LANE_BITS - 1) // LANE_BITS)


def _flatten(sets: Sequence[Iterable[int]]) -> Tuple[np.ndarray, np.ndarray]:
    """Row index and element id arrays for every (set, element) pair."""
    rows: List[int] = []
    elements: List[int] = []
    for row, members in enumerate(sets):
        for element in members:
            rows.append(row)
            elements.append(element)
    return (
        np.asarray(rows, dtype=np.intp),
        np.asarray(elements, dtype=np.int64),
    )


def pack_rows(sets: Sequence[Iterable[int]], size: int = 0) -> np.ndarray:
    """Pack sets of element ids into a ``(len(sets), lanes)`` uint64 matrix.

    ``size`` is the universe size (``1 + max id``); when 0 it is inferred
    from the largest element present.  Within one set every element is
    distinct, so the scattered per-bit *additions* coincide with bitwise
    OR — ``np.add.at`` sets each bit exactly once.
    """
    sets = list(sets)
    rows, elements = _flatten(sets)
    if elements.size and size <= int(elements.max()):
        size = int(elements.max()) + 1
    lanes = lanes_for(size)
    packed = np.zeros((len(sets), lanes), dtype=np.uint64)
    if elements.size:
        flat = packed.reshape(-1)
        offsets = rows * lanes + (elements >> 6)
        bits = np.left_shift(
            np.uint64(1), (elements & (LANE_BITS - 1)).astype(np.uint64)
        )
        np.add.at(flat, offsets, bits)
    return packed


def pack_one(members: Iterable[int], size: int = 0) -> np.ndarray:
    """Pack a single set into one row of lanes (shape ``(lanes,)``)."""
    return pack_rows([members], size)[0]


def membership_matrix(sets: Sequence[Iterable[int]], size: int) -> np.ndarray:
    """Dense boolean membership matrix ``(len(sets), size)``.

    ``matrix[j, e]`` is True when element ``e`` belongs to set ``j``; the
    natural operand for weighted-load style reductions
    (``weights @ matrix`` is exactly Definition 3.4's induced load).
    """
    sets = list(sets)
    matrix = np.zeros((len(sets), int(size)), dtype=bool)
    rows, elements = _flatten(sets)
    if elements.size:
        if int(elements.max()) >= size:
            raise ValueError(
                f"element {int(elements.max())} outside universe of size {size}"
            )
        matrix[rows, elements] = True
    return matrix


def popcounts(packed: np.ndarray) -> np.ndarray:
    """Per-row number of set bits of a packed matrix."""
    return np.bitwise_count(packed).sum(axis=-1).astype(np.int64)


def intersects(packed: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Boolean vector: which packed rows share any bit with ``mask``."""
    return (packed & mask).any(axis=-1)


def intersection_sizes(packed: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Per-row ``|row ∩ mask|`` of a packed matrix against one mask row."""
    return popcounts(packed & mask)


def is_subset_of_any(candidate: np.ndarray, rows: np.ndarray) -> bool:
    """Whether any row of ``rows`` is a subset of the ``candidate`` mask."""
    if rows.shape[0] == 0:
        return False
    return bool(((rows & candidate) == rows).all(axis=-1).any())
