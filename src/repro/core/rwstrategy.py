"""Read/write strategy pairs (quoracle-style split quorums).

The paper's constructions already distinguish *read* quorums (one element
per row of a grid, hierarchical covers) from *write* quorums (a full line
plus a cover).  "Read-Write Quorum Systems Made Practical"
(Whittaker-Charapko-Hellerstein) turns that distinction into a serving
primitive: reads draw from a distribution over read quorums, writes from
a distribution over write quorums, and the only safety obligation is the
*2-intersection* invariant — every read quorum intersects every write
quorum, so a read always sees the newest acknowledged write.

A :class:`ReadWriteStrategy` is exactly that pair.  The write side is a
normal :class:`~repro.core.strategy.Strategy` (every support set contains
a minimal quorum of the system, so blind writes stay legal); the read
side is a :class:`Strategy` built with ``validate_quorums=False``,
because read quorums (e.g. grid row covers) are deliberately smaller
than any system quorum.  Construction checks the 2-intersection
invariant vectorised over the packed supports.

Optimal pairs come from the capacity LP in
:mod:`repro.analysis.capacity`; this module only holds the invariant and
the per-path sampling/restriction plumbing the coordinator uses.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

import numpy as np

from . import bitpack
from .errors import StrategyError
from .quorum_system import Quorum, QuorumSystem
from .strategy import Strategy

PathStrategy = Union[Strategy, "ReadWriteStrategy"]


class ReadWriteStrategy:
    """A pair of quorum distributions: one for reads, one for writes.

    Parameters
    ----------
    system:
        The quorum system both distributions belong to.
    reads:
        Distribution over read quorums.  Support sets need not be quorums
        of ``system`` (they usually are not); they must intersect every
        write support set.
    writes:
        Distribution over write quorums.  Every support set must be a
        quorum of ``system`` (validated by :class:`Strategy` itself), so
        repair/write traffic keeps the full intersection guarantees.
    """

    def __init__(self, system: QuorumSystem, reads: Strategy, writes: Strategy) -> None:
        if reads.system is not system or writes.system is not system:
            raise StrategyError(
                "read and write strategies must be built over the same system"
            )
        self._system = system
        self._reads = reads
        self._writes = writes
        self._verify_two_intersection()

    def _verify_two_intersection(self) -> None:
        packed_writes = self._writes.packed_quorums()
        n = self._system.n
        for read_quorum in self._reads.quorums:
            mask = bitpack.pack_one(read_quorum, n)
            if not bool(bitpack.intersects(packed_writes, mask).all()):
                culprit = next(
                    w
                    for w in self._writes.quorums
                    if not (w & read_quorum)
                )
                raise StrategyError(
                    f"read quorum {sorted(read_quorum)} misses write quorum "
                    f"{sorted(culprit)}: the 2-intersection invariant fails"
                )

    # ------------------------------------------------------------------
    @classmethod
    def lift(cls, strategy: PathStrategy) -> "ReadWriteStrategy":
        """Lift a plain :class:`Strategy` to a degenerate read/write pair.

        Reads and writes share the one distribution, so behaviour is
        byte-identical to the unified serving path.  Passing an existing
        :class:`ReadWriteStrategy` returns it unchanged.
        """
        if isinstance(strategy, ReadWriteStrategy):
            return strategy
        return cls(strategy.system, strategy, strategy)

    @classmethod
    def from_quorums(
        cls,
        system: QuorumSystem,
        read_quorums: Sequence[Iterable[int]],
        read_weights: Sequence[float],
        write_quorums: Sequence[Iterable[int]],
        write_weights: Sequence[float],
    ) -> "ReadWriteStrategy":
        """Build a pair straight from quorum lists and probabilities."""
        reads = Strategy(system, read_quorums, read_weights, validate_quorums=False)
        writes = Strategy(system, write_quorums, write_weights)
        return cls(system, reads, writes)

    # ------------------------------------------------------------------
    @property
    def system(self) -> QuorumSystem:
        return self._system

    @property
    def reads(self) -> Strategy:
        """The read-path distribution."""
        return self._reads

    @property
    def writes(self) -> Strategy:
        """The write-path distribution (also used for repair/transfer)."""
        return self._writes

    @property
    def is_split(self) -> bool:
        """True when reads and writes use distinct distributions."""
        return self._reads is not self._writes

    def for_path(self, path: str) -> Strategy:
        """The distribution serving ``path`` (``"read"`` or ``"write"``)."""
        if path == "read":
            return self._reads
        if path == "write":
            return self._writes
        raise StrategyError(f"unknown path {path!r}, expected 'read' or 'write'")

    # ------------------------------------------------------------------
    # Induced metrics
    # ------------------------------------------------------------------
    def element_loads(self, read_fraction: float) -> np.ndarray:
        """Per-element load of the mixed workload.

        Element ``x`` serves ``fr * l_r(x) + (1 - fr) * l_w(x)`` of every
        client operation — the quantity the capacity LP bounds.
        """
        fr = _check_fraction(read_fraction)
        return fr * self._reads.element_loads() + (1.0 - fr) * self._writes.element_loads()

    def induced_load(self, read_fraction: float) -> float:
        """Busiest-element load of the mixed workload at ``read_fraction``."""
        return float(self.element_loads(read_fraction).max())

    def capacity(self, read_fraction: float) -> float:
        """Throughput in per-node capacity units: ``1 / induced_load``."""
        return 1.0 / self.induced_load(read_fraction)

    def average_quorum_size(self, read_fraction: float) -> float:
        """Expected fan-out of an operation under the mixed workload."""
        fr = _check_fraction(read_fraction)
        return (
            fr * self._reads.average_quorum_size()
            + (1.0 - fr) * self._writes.average_quorum_size()
        )

    def min_read_quorum_size(self) -> int:
        """Size of the smallest read support set (voted reads need 2b+1)."""
        return min(len(q) for q in self._reads.quorums)

    def min_read_write_intersection(self) -> int:
        """Smallest ``|R ∩ W|`` over all read/write support pairs.

        Byzantine voted reads need this to be at least ``2b + 1``: the
        intersection with the newest write quorum must out-vote ``b``
        liars even after ``b`` of its members crashed.
        """
        n = self._system.n
        packed_writes = self._writes.packed_quorums()
        smallest: Optional[int] = None
        for read_quorum in self._reads.quorums:
            mask = bitpack.pack_one(read_quorum, n)
            low = int(bitpack.intersection_sizes(packed_writes, mask).min())
            smallest = low if smallest is None else min(smallest, low)
        return 0 if smallest is None else smallest

    # ------------------------------------------------------------------
    # Fault restriction
    # ------------------------------------------------------------------
    def avoiding(self, down: Iterable[int]) -> Optional["ReadWriteStrategy"]:
        """Both distributions conditioned on quorums disjoint from ``down``.

        Returns ``None`` when either side loses its whole support — a
        half-usable pair would let writes proceed that no live read
        quorum can observe.  Surviving weights are renormalised on each
        side independently (delegating to :meth:`Strategy.avoiding`); the
        2-intersection invariant is preserved by restriction, so the
        reconstruction cannot fail.
        """
        blocked = frozenset(down)
        writes = self._writes.avoiding(blocked)
        if writes is None:
            return None
        if not self.is_split:
            return ReadWriteStrategy(self._system, writes, writes)
        reads = self._reads.avoiding(blocked)
        if reads is None:
            return None
        return ReadWriteStrategy(self._system, reads, writes)

    def least_damaged(self, down: Iterable[int], path: str = "read") -> Quorum:
        """The ``path``-side support quorum with the fewest members down."""
        return self.for_path(path).least_damaged(down)

    def __repr__(self) -> str:
        return (
            f"<ReadWriteStrategy over {self._system.system_name!r}"
            f" reads={len(self._reads.quorums)}"
            f" writes={len(self._writes.quorums)}"
            f" split={self.is_split}>"
        )


def _check_fraction(read_fraction: float) -> float:
    fr = float(read_fraction)
    if not 0.0 <= fr <= 1.0:
        raise StrategyError(f"read fraction must be in [0, 1], got {fr}")
    return fr
