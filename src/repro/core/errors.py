"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`QuorumError` so
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the precise failure mode.
"""

from __future__ import annotations


class QuorumError(Exception):
    """Base class for all errors raised by this library."""


class ConstructionError(QuorumError):
    """A quorum-system construction received invalid parameters.

    Examples: a triangle size that is not of the form ``t*(t+1)/2``, a grid
    with zero rows, or a hierarchy description that does not tile its
    parent.
    """


class IntersectionViolation(QuorumError):
    """Two quorums of an alleged quorum system do not intersect.

    Raised by verification helpers; carries the offending pair so tests and
    users can inspect the counterexample.
    """

    def __init__(self, first: frozenset, second: frozenset) -> None:
        self.first = first
        self.second = second
        super().__init__(
            f"quorums do not intersect: {sorted(first)} and {sorted(second)}"
        )


class StrategyError(QuorumError):
    """A strategy is not a valid probability distribution over quorums."""


class AnalysisError(QuorumError):
    """An analysis engine cannot handle the given system or parameters."""


class SimulationError(QuorumError):
    """The discrete-event simulator was driven into an invalid state."""


class ProtocolError(SimulationError):
    """A distributed protocol on top of the simulator violated its API."""


class ServiceError(QuorumError):
    """The quorum-replicated key-value service failed an operation.

    Base class for the serving layer (:mod:`repro.service`): transport
    failures, per-request timeouts, and operations that exhausted every
    fallback quorum all derive from this.
    """


class TransportError(ServiceError):
    """A single request to a single replica failed at the transport level.

    Carries the target ``replica_id`` and the ``latency`` (ms) the caller
    observed before giving up — the two facts every retry/suspicion/
    circuit-breaker decision is based on.  Subclasses distinguish *why*:
    :class:`ReplicaUnavailable` (the replica is down or unreachable) vs
    :class:`RequestTimeout` (the replica may be fine but the reply missed
    the deadline).
    """

    def __init__(self, replica_id: int, latency: float, message: str) -> None:
        self.replica_id = replica_id
        self.latency = latency
        super().__init__(message)


class ReplicaUnavailable(TransportError):
    """The target replica is crashed or unreachable."""

    def __init__(
        self, replica_id: int, latency: float = 0.0, reason: str = "down"
    ) -> None:
        super().__init__(
            replica_id, latency, f"replica {replica_id} unavailable ({reason})"
        )
        self.reason = reason


class RequestTimeout(TransportError):
    """A request to a replica missed its deadline."""

    def __init__(self, replica_id: int, latency: float) -> None:
        super().__init__(
            replica_id,
            latency,
            f"request to replica {replica_id} timed out after {latency:g}ms",
        )
