"""k-coteries: quorums for k-entry mutual exclusion.

The Y-system paper [10] ("A geometric approach for constructing coteries
and **k-coteries**") generalises coteries to allow up to ``k`` processes
in the critical section simultaneously.  A family of quorums is a
*k-coterie* when

1. (non-intersection up to k) there exist ``k`` pairwise disjoint
   quorums, and
2. (intersection at k+1) among any ``k+1`` quorums some two intersect —
   by pigeonhole at most ``k`` lock holders can coexist.

A 1-coterie is an ordinary coterie (Def. 3.1).  The same member-grant
protocol as :mod:`repro.sim.protocols.mutex` then enforces "at most k in
the CS": each member grants one holder at a time, and ``k+1`` requesters
would need ``k+1`` pairwise disjoint granted quorums.

This module provides the abstraction, the classic constructions
(k-majority, k-singleton, coterie lift) and the availability analysis,
including the concurrency-availability curve ``Pr[j disjoint live
quorums]`` for ``j = 1..k``.
"""

from __future__ import annotations

import itertools
from typing import FrozenSet, Iterable, List, Optional, Sequence, Tuple

from .errors import AnalysisError, ConstructionError
from .quorum_system import ExplicitQuorumSystem, Quorum, QuorumSystem, reduce_to_coterie
from .universe import Universe


def _max_disjoint(quorums: Sequence[Quorum], stop_at: int) -> int:
    """Size of a largest pairwise-disjoint subfamily (capped backtracking)."""
    best = 0
    ordered = sorted(quorums, key=len)

    def extend(start: int, used: frozenset, count: int) -> None:
        nonlocal best
        best = max(best, count)
        if best >= stop_at:
            return
        for index in range(start, len(ordered)):
            quorum = ordered[index]
            if not (quorum & used):
                extend(index + 1, used | quorum, count + 1)
                if best >= stop_at:
                    return

    extend(0, frozenset(), 0)
    return best


class KCoterie:
    """A k-coterie over a universe.

    Parameters
    ----------
    universe:
        Element universe.
    quorums:
        The quorum family (reduced to an anti-chain).
    k:
        Concurrency level.
    validate:
        When true, verify both k-coterie conditions (exponential in the
        family size for condition 2 — fine at the scales studied here).
    """

    def __init__(
        self,
        universe: Universe,
        quorums: Iterable[Iterable[int]],
        k: int,
        validate: bool = True,
    ) -> None:
        if k < 1:
            raise ConstructionError(f"k must be >= 1, got {k}")
        self.universe = universe
        self.k = k
        self._quorums: Tuple[Quorum, ...] = reduce_to_coterie(
            frozenset(q) for q in quorums
        )
        if not self._quorums:
            raise ConstructionError("k-coterie needs at least one quorum")
        for quorum in self._quorums:
            bad = [e for e in quorum if not 0 <= e < universe.size]
            if bad:
                raise ConstructionError(f"quorum has unknown elements {bad}")
        if validate:
            self.verify()

    # ------------------------------------------------------------------
    @property
    def quorums(self) -> Tuple[Quorum, ...]:
        """The reduced quorum family."""
        return self._quorums

    @property
    def n(self) -> int:
        """Universe size."""
        return self.universe.size

    def verify(self) -> None:
        """Check both k-coterie conditions; raise on violation."""
        if _max_disjoint(self._quorums, self.k) < self.k:
            raise ConstructionError(
                f"no {self.k} pairwise disjoint quorums exist: not a"
                f" {self.k}-coterie (over-constrained family)"
            )
        if _max_disjoint(self._quorums, self.k + 1) > self.k:
            raise ConstructionError(
                f"{self.k + 1} pairwise disjoint quorums exist: the family"
                f" admits more than k={self.k} concurrent holders"
            )

    # ------------------------------------------------------------------
    # Constructions
    # ------------------------------------------------------------------
    @classmethod
    def k_majority(cls, n: int, k: int) -> "KCoterie":
        """Quorums are all subsets of size ``floor(n/(k+1)) + 1``.

        ``k+1`` such quorums would need more than ``n`` elements, so two
        intersect; ``k`` disjoint ones fit as long as ``k*size <= n``.
        """
        size = n // (k + 1) + 1
        if k * size > n:
            raise ConstructionError(
                f"k-majority needs k*(n//(k+1)+1) <= n; got n={n}, k={k}"
            )
        universe = Universe.of_size(n)
        quorums = [frozenset(c) for c in itertools.combinations(range(n), size)]
        return cls(universe, quorums, k, validate=False)

    @classmethod
    def k_singleton(cls, n: int, k: int) -> "KCoterie":
        """``k`` dictator elements: quorums ``{0}, ..., {k-1}``."""
        if k > n:
            raise ConstructionError(f"need n >= k, got n={n}, k={k}")
        universe = Universe.of_size(n)
        return cls(universe, [frozenset({i}) for i in range(k)], k, validate=False)

    @classmethod
    def from_coterie(cls, system: QuorumSystem) -> "KCoterie":
        """Lift an ordinary coterie to the ``k = 1`` case."""
        return cls(system.universe, system.minimal_quorums(), 1, validate=False)

    @classmethod
    def disjoint_union(cls, coteries: Sequence[QuorumSystem]) -> "KCoterie":
        """The union of ``k`` coteries on disjoint sub-universes is a
        k-coterie: one quorum can be live in each part, but ``k+1``
        quorums land two in one part (pigeonhole), which intersect."""
        from .composition import compose_universes

        universe, offsets = compose_universes([s.universe for s in coteries])
        quorums: List[Quorum] = []
        for index, system in enumerate(coteries):
            mapping = offsets[index]
            for quorum in system.minimal_quorums():
                quorums.append(frozenset(mapping[e] for e in quorum))
        return cls(universe, quorums, len(coteries), validate=False)

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def smallest_quorum_size(self) -> int:
        """Cardinality of the smallest quorum."""
        return min(len(q) for q in self._quorums)

    def as_availability_system(self) -> ExplicitQuorumSystem:
        """The family viewed as a plain (possibly non-intersecting)
        monotone system, for availability computations."""
        return ExplicitQuorumSystem(
            self.universe,
            self._quorums,
            name=f"k-coterie(k={self.k})",
            validate=False,
        )

    def availability(self, p: float) -> float:
        """Probability at least one quorum is fully alive."""
        return 1.0 - self.as_availability_system().failure_probability(p)

    def concurrency_availability(self, p: float, j: int) -> float:
        """Probability that ``j`` pairwise disjoint quorums are alive —
        i.e. that ``j`` holders could enter concurrently.

        Exhaustive over the ``2^n`` alive sets (small universes).
        """
        if not 1 <= j <= self.k:
            raise AnalysisError(f"j must be in 1..k={self.k}, got {j}")
        if self.n > 20:
            raise AnalysisError("concurrency availability needs n <= 20")
        q = 1.0 - p
        total = 0.0
        for mask in range(1 << self.n):
            alive = frozenset(i for i in range(self.n) if mask >> i & 1)
            live_quorums = [qu for qu in self._quorums if qu <= alive]
            if _max_disjoint(live_quorums, j) >= j:
                total += (q ** len(alive)) * (p ** (self.n - len(alive)))
        return total

    def __repr__(self) -> str:
        return f"<KCoterie k={self.k} n={self.n} quorums={len(self._quorums)}>"
