"""Base class and generic operations for quorum systems.

Definition 3.1 of the paper: a quorum system ``S = {S1, ..., Sm}`` is a
collection of subsets of a finite universe ``U`` such that every pair of
subsets intersects.  A *coterie* is a quorum system whose quorums form an
anti-chain (no quorum contains another).

The library works with the *minimal* quorums of a system: because all the
metrics studied in the paper (failure probability, load, quorum size) are
either defined over minimal quorums or unchanged by removing dominated
quorums, the minimal representation is canonical.

Subclasses implement :meth:`_generate_quorums` to yield the (not
necessarily minimal, not necessarily deduplicated) quorums of the
construction; the base class caches the reduced coterie.  Structured
constructions additionally override hooks such as
:meth:`failure_probability_exact` with closed-form or recursive
computations, which the analysis front-end prefers over generic engines.
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from typing import FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .errors import ConstructionError, IntersectionViolation
from .universe import Universe

Quorum = FrozenSet[int]


def reduce_to_coterie(quorums: Iterable[Quorum]) -> Tuple[Quorum, ...]:
    """Drop duplicate and dominated quorums, returning a sorted anti-chain.

    A quorum is *dominated* when it is a strict superset of another quorum;
    dominated quorums never help availability or load, so the reduced
    system is equivalent for every metric in the paper.

    Subset testing is vectorised over packed numpy bitmasks so that large
    families (tens of thousands of candidates, e.g. wall systems) reduce
    in seconds rather than hours.

    The result is sorted by (size, sorted elements) so it is deterministic
    across runs, which keeps analysis caches and tests stable.
    """
    import bisect

    from .bitpack import is_subset_of_any, pack_rows

    unique = sorted(set(quorums), key=lambda q: (len(q), sorted(q)))
    if len(unique) <= 1:
        return tuple(unique)
    packed = pack_rows(unique)

    kept_rows: List[int] = []
    kept_masks = np.zeros_like(packed)
    kept_sizes: List[int] = []
    sizes = [len(q) for q in unique]

    for row, candidate in enumerate(packed):
        # Only strictly smaller kept sets can be proper subsets, and the
        # kept list is size-sorted, so the check is against a prefix.
        # Uniform-size families (majorities, h-triang, FPP lines) skip
        # domination checks entirely.
        prefix = bisect.bisect_left(kept_sizes, sizes[row])
        if prefix and is_subset_of_any(candidate, kept_masks[:prefix]):
            continue
        kept_masks[len(kept_rows)] = candidate
        kept_rows.append(row)
        kept_sizes.append(sizes[row])
    return tuple(unique[row] for row in kept_rows)


class QuorumSystem(ABC):
    """Abstract base class for quorum systems over a :class:`Universe`.

    Subclasses must provide a universe at construction time (via
    ``super().__init__(universe)``) and implement
    :meth:`_generate_quorums`.
    """

    #: Human-readable name of the construction, overridden by subclasses.
    system_name: str = "quorum-system"

    def __init__(self, universe: Universe) -> None:
        self._universe = universe
        self._minimal: Optional[Tuple[Quorum, ...]] = None

    # ------------------------------------------------------------------
    # Core structure
    # ------------------------------------------------------------------
    @property
    def universe(self) -> Universe:
        """The universe of elements of this system."""
        return self._universe

    @property
    def n(self) -> int:
        """Number of elements in the universe."""
        return self._universe.size

    @abstractmethod
    def _generate_quorums(self) -> Iterator[Quorum]:
        """Yield quorums as frozensets of element ids.

        The stream may contain duplicates and dominated quorums; the base
        class reduces it to a coterie.
        """

    def minimal_quorums(self) -> Tuple[Quorum, ...]:
        """The reduced coterie of this system, computed once and cached."""
        if self._minimal is None:
            quorums = reduce_to_coterie(self._generate_quorums())
            if not quorums:
                raise ConstructionError(
                    f"{self.system_name}: construction produced no quorums"
                )
            self._minimal = quorums
        return self._minimal

    @property
    def num_minimal_quorums(self) -> int:
        """Number of minimal quorums."""
        return len(self.minimal_quorums())

    # ------------------------------------------------------------------
    # Size metrics
    # ------------------------------------------------------------------
    def smallest_quorum_size(self) -> int:
        """``c(S)``: cardinality of the smallest quorum (Prop. 3.3)."""
        return min(len(q) for q in self.minimal_quorums())

    def largest_quorum_size(self) -> int:
        """Cardinality of the largest *minimal* quorum."""
        return max(len(q) for q in self.minimal_quorums())

    def quorum_sizes(self) -> Tuple[int, ...]:
        """Sorted tuple of minimal quorum cardinalities."""
        return tuple(sorted(len(q) for q in self.minimal_quorums()))

    def has_uniform_quorum_size(self) -> bool:
        """True when every minimal quorum has the same cardinality.

        The paper highlights that h-triang is the only studied
        ``O(1/sqrt(n))``-load system with this property (Table 5).
        """
        sizes = self.quorum_sizes()
        return sizes[0] == sizes[-1]

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def contains_quorum(self, live: Iterable[int]) -> bool:
        """True when the given live set contains at least one quorum.

        This is the availability event: the system is usable iff the set
        of surviving elements is a superset of some quorum.
        """
        live_set = frozenset(live)
        return any(q <= live_set for q in self.minimal_quorums())

    def is_transversal(self, hit_set: Iterable[int]) -> bool:
        """True when the given set intersects every minimal quorum.

        Proposition 3.1: failure probability equals the probability that
        the *failed* set is a transversal.
        """
        hit = frozenset(hit_set)
        return all(hit & q for q in self.minimal_quorums())

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------
    def verify_intersection(self) -> None:
        """Check Definition 3.1; raise :class:`IntersectionViolation` if broken.

        Quadratic in the number of minimal quorums — intended for tests and
        for validating hand-built systems, not for hot paths.
        """
        quorums = self.minimal_quorums()
        for first, second in itertools.combinations(quorums, 2):
            if not first & second:
                raise IntersectionViolation(first, second)

    def is_coterie(self) -> bool:
        """True when the minimal quorums form an anti-chain (always true
        after reduction) and satisfy the intersection property."""
        try:
            self.verify_intersection()
        except IntersectionViolation:
            return False
        return True

    # ------------------------------------------------------------------
    # Duality
    # ------------------------------------------------------------------
    def dual(self) -> "ExplicitQuorumSystem":
        """The dual system: minimal transversals of this system.

        For a quorum system ``S`` over universe ``U``, the dual ``S*`` has
        as quorums the minimal sets hitting every quorum of ``S``.  Self-dual
        systems (``S* == S``) have failure probability exactly ``1/2`` at
        ``p = 1/2``; Tables 2 and 3 of the paper show this for majority,
        HQS, CWlog, Y and h-triang.

        Uses Berge's incremental algorithm over the minimal quorums, which
        is adequate for the system sizes studied in the paper (n <= ~105).
        """
        transversals: List[Quorum] = [frozenset()]
        for quorum in self.minimal_quorums():
            extended: List[Quorum] = []
            for partial in transversals:
                if partial & quorum:
                    extended.append(partial)
                else:
                    extended.extend(partial | {e} for e in quorum)
            transversals = list(reduce_to_coterie(extended))
        # A dual family always hits this system, but it only satisfies the
        # intersection property itself when the system is non-dominated
        # (e.g. the dual of even-majority contains disjoint halves), so
        # eager validation must be skipped.
        return ExplicitQuorumSystem(
            self._universe,
            transversals,
            name=f"dual({self.system_name})",
            validate=False,
        )

    def is_self_dual(self) -> bool:
        """True when the system equals its own dual."""
        return set(self.dual().minimal_quorums()) == set(self.minimal_quorums())

    # ------------------------------------------------------------------
    # Analysis hooks
    # ------------------------------------------------------------------
    def failure_probability_exact(self, p: float) -> Optional[float]:
        """Closed-form / structural exact failure probability, if available.

        Structured constructions (majority, HQS, grid, walls, h-grid,
        h-triang, Paths, Y, ...) override this with an exact recursion that
        avoids enumerating quorums.  Returning ``None`` means "no special
        structure; use a generic engine".
        """
        return None

    def failure_probability(self, p: float, method: str = "auto", **kwargs) -> float:
        """Failure probability ``F_p(S)`` under iid crashes (Def. 3.2).

        Thin convenience wrapper over
        :func:`repro.analysis.availability.failure_probability`.
        """
        from ..analysis.availability import failure_probability

        return failure_probability(self, p, method=method, **kwargs)

    def availability_heterogeneous(self, survive: Sequence[float]) -> float:
        """Availability when element ``i`` survives with probability
        ``survive[i]`` (non-iid crashes).

        Structured constructions override this with their exact
        recursions evaluated at per-element probabilities (walls, grids,
        triangles, trees, ...), enabling sensitivity/importance analysis
        at sizes where the generic engines cannot go.  The default
        dispatches to the generic heterogeneous engines.
        """
        from ..analysis.availability import failure_probability_heterogeneous

        if len(survive) != self.n:
            raise ConstructionError(
                f"expected {self.n} survival probabilities, got {len(survive)}"
            )
        return 1.0 - failure_probability_heterogeneous(
            self, [1.0 - q for q in survive]
        )

    def load(self, method: str = "auto", **kwargs) -> float:
        """System load ``L(S)`` (Def. 3.4) via the analysis front-end."""
        from ..analysis.load import system_load

        return system_load(self, method=method, **kwargs)

    # ------------------------------------------------------------------
    # Conversion / debugging
    # ------------------------------------------------------------------
    def named_quorums(self) -> List[frozenset]:
        """Minimal quorums expressed with user-facing element names."""
        return [self._universe.subset_names(q) for q in self.minimal_quorums()]

    def to_explicit(self) -> "ExplicitQuorumSystem":
        """Freeze this system into an explicit list-of-quorums system."""
        return ExplicitQuorumSystem(
            self._universe, self.minimal_quorums(), name=self.system_name
        )

    def __repr__(self) -> str:
        return f"<{type(self).__name__} n={self.n} name={self.system_name!r}>"


class ExplicitQuorumSystem(QuorumSystem):
    """A quorum system given by an explicit collection of quorums.

    Parameters
    ----------
    universe:
        The universe of elements.
    quorums:
        Iterable of quorums, each an iterable of element ids.  Dominated
        and duplicate quorums are removed.
    name:
        Optional human-readable name.
    validate:
        When true (default), eagerly verify the intersection property.
    """

    def __init__(
        self,
        universe: Universe,
        quorums: Iterable[Iterable[int]],
        name: str = "explicit",
        validate: bool = True,
    ) -> None:
        super().__init__(universe)
        self.system_name = name
        frozen = [frozenset(q) for q in quorums]
        for quorum in frozen:
            bad = [e for e in quorum if not 0 <= e < universe.size]
            if bad:
                raise ConstructionError(
                    f"quorum {sorted(quorum)} has ids outside the universe: {bad}"
                )
        if not frozen:
            raise ConstructionError("explicit system needs at least one quorum")
        self._minimal = reduce_to_coterie(frozen)
        if validate:
            self.verify_intersection()

    def _generate_quorums(self) -> Iterator[Quorum]:
        assert self._minimal is not None
        return iter(self._minimal)

    @classmethod
    def from_names(
        cls,
        universe: Universe,
        named_quorums: Iterable[Iterable],
        name: str = "explicit",
        validate: bool = True,
    ) -> "ExplicitQuorumSystem":
        """Build from quorums expressed with element names instead of ids."""
        return cls(
            universe,
            [universe.subset_ids(q) for q in named_quorums],
            name=name,
            validate=validate,
        )
