"""Universe of elements over which quorum systems are defined.

A quorum system is a collection of subsets of a finite *universe* of
elements (Definition 3.1 of the paper).  Elements model processes located
on distinct nodes of a distributed system.

Internally the library identifies elements with dense integer ids
``0..n-1`` so that subsets can be represented as Python ``frozenset`` of
ints or as bitmasks for the fast analysis engines.  A :class:`Universe`
maps between user-facing element *names* (arbitrary hashable labels such as
grid coordinates) and those dense ids.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Sequence

from .errors import ConstructionError


class Universe:
    """A finite, ordered collection of distinct elements.

    Parameters
    ----------
    names:
        Iterable of distinct hashable labels, one per element.  Order is
        preserved and defines the dense ids: the i-th name gets id ``i``.

    Examples
    --------
    >>> u = Universe.of_size(3)
    >>> u.size
    3
    >>> u.name_of(0)
    0
    >>> grid = Universe([(r, c) for r in range(2) for c in range(2)])
    >>> grid.id_of((1, 0))
    2
    """

    __slots__ = ("_names", "_ids")

    def __init__(self, names: Iterable[Hashable]) -> None:
        self._names: tuple = tuple(names)
        self._ids = {name: i for i, name in enumerate(self._names)}
        if len(self._ids) != len(self._names):
            raise ConstructionError("universe names must be distinct")
        if not self._names:
            raise ConstructionError("universe must contain at least one element")

    @classmethod
    def of_size(cls, n: int) -> "Universe":
        """Build a universe of ``n`` anonymous elements named ``0..n-1``."""
        if n <= 0:
            raise ConstructionError(f"universe size must be positive, got {n}")
        return cls(range(n))

    @property
    def size(self) -> int:
        """Number of elements in the universe."""
        return len(self._names)

    @property
    def names(self) -> Sequence[Hashable]:
        """All element names in id order."""
        return self._names

    @property
    def ids(self) -> range:
        """All dense ids, ``range(size)``."""
        return range(len(self._names))

    def id_of(self, name: Hashable) -> int:
        """Dense id of the element with the given name."""
        try:
            return self._ids[name]
        except KeyError:
            raise ConstructionError(f"unknown element name: {name!r}") from None

    def name_of(self, element_id: int) -> Hashable:
        """Name of the element with the given dense id."""
        try:
            return self._names[element_id]
        except IndexError:
            raise ConstructionError(f"unknown element id: {element_id}") from None

    def subset_ids(self, names: Iterable[Hashable]) -> frozenset:
        """Translate a collection of names into a frozenset of ids."""
        return frozenset(self.id_of(name) for name in names)

    def subset_names(self, ids: Iterable[int]) -> frozenset:
        """Translate a collection of ids into a frozenset of names."""
        return frozenset(self.name_of(i) for i in ids)

    def mask_of(self, ids: Iterable[int]) -> int:
        """Bitmask with bit ``i`` set for each id ``i`` in the collection."""
        mask = 0
        for i in ids:
            mask |= 1 << i
        return mask

    def ids_of_mask(self, mask: int) -> frozenset:
        """Inverse of :meth:`mask_of`."""
        ids = set()
        i = 0
        while mask:
            if mask & 1:
                ids.add(i)
            mask >>= 1
            i += 1
        return frozenset(ids)

    def __len__(self) -> int:
        return len(self._names)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._names)

    def __contains__(self, name: Hashable) -> bool:
        return name in self._ids

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Universe) and self._names == other._names

    def __hash__(self) -> int:
        return hash(self._names)

    def __repr__(self) -> str:
        if len(self._names) <= 8:
            return f"Universe({list(self._names)!r})"
        head = ", ".join(repr(n) for n in self._names[:4])
        return f"Universe([{head}, ...] size={len(self._names)})"
