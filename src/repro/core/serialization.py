"""JSON (de)serialisation of quorum systems.

Lets computed systems be stored, diffed and shipped between tools: the
explicit form records the universe names and the minimal quorums; any
:class:`~repro.core.quorum_system.QuorumSystem` can be exported, and
imports come back as :class:`ExplicitQuorumSystem` with identical
metrics (availability, load, duality — all are functions of the minimal
quorums).

Names are stored as JSON-compatible values; tuple names (grid/triangle
coordinates) round-trip through lists and are restored as tuples.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from .errors import ConstructionError
from .quorum_system import ExplicitQuorumSystem, QuorumSystem
from .universe import Universe

#: Format marker, bumped on incompatible layout changes.
FORMAT = "repro-quorum-system/1"


def _encode_name(name: Any) -> Any:
    if isinstance(name, tuple):
        return {"tuple": [_encode_name(part) for part in name]}
    if isinstance(name, (str, int, float, bool)) or name is None:
        return name
    raise ConstructionError(f"cannot serialise element name {name!r}")


def _decode_name(blob: Any) -> Any:
    if isinstance(blob, dict) and set(blob) == {"tuple"}:
        return tuple(_decode_name(part) for part in blob["tuple"])
    return blob


def system_to_dict(system: QuorumSystem) -> Dict[str, Any]:
    """Serialisable description: universe names + minimal quorums (ids)."""
    return {
        "format": FORMAT,
        "name": system.system_name,
        "names": [_encode_name(name) for name in system.universe.names],
        "quorums": [sorted(q) for q in system.minimal_quorums()],
    }


def system_from_dict(blob: Dict[str, Any], validate: bool = True) -> ExplicitQuorumSystem:
    """Inverse of :func:`system_to_dict`."""
    if blob.get("format") != FORMAT:
        raise ConstructionError(
            f"unsupported serialisation format {blob.get('format')!r}"
        )
    universe = Universe([_decode_name(name) for name in blob["names"]])
    return ExplicitQuorumSystem(
        universe,
        [frozenset(q) for q in blob["quorums"]],
        name=blob.get("name", "deserialised"),
        validate=validate,
    )


def dump(system: QuorumSystem, path: Union[str, Path]) -> None:
    """Write a system to a JSON file."""
    Path(path).write_text(json.dumps(system_to_dict(system), indent=2))


def load(path: Union[str, Path], validate: bool = True) -> ExplicitQuorumSystem:
    """Read a system from a JSON file."""
    return system_from_dict(json.loads(Path(path).read_text()), validate=validate)


def dumps(system: QuorumSystem) -> str:
    """Serialise to a JSON string."""
    return json.dumps(system_to_dict(system))


def loads(text: str, validate: bool = True) -> ExplicitQuorumSystem:
    """Deserialise from a JSON string."""
    return system_from_dict(json.loads(text), validate=validate)
