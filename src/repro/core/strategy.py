"""Strategies over quorum systems and the loads they induce.

Definitions 3.3 and 3.4 of the paper: a *strategy* is a probability
distribution over the quorums of a system; it induces on each element a
*load* (the probability the element is part of the picked quorum), and the
*system load* is the maximal element load under the best possible strategy.

This module provides the strategy object, exact evaluation of induced
loads and quorum-size statistics, and convenience constructors (uniform,
single-quorum, weighted).  Computing the *optimal* strategy is an LP and
lives in :mod:`repro.analysis.load`.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .errors import StrategyError
from .quorum_system import Quorum, QuorumSystem

_PROBABILITY_TOLERANCE = 1e-9


class Strategy:
    """A probability distribution over an explicit list of quorums.

    Parameters
    ----------
    system:
        The quorum system the strategy belongs to.  Quorums need not be
        the system's minimal quorums (the paper evaluates strategies over
        non-minimal quorums too, e.g. the h-T-grid randomized variant),
        but every quorum must contain some minimal quorum of the system so
        the strategy only ever picks valid quorums.
    quorums:
        The support of the distribution.
    weights:
        Probabilities, same length as ``quorums``; must sum to 1.
    """

    def __init__(
        self,
        system: QuorumSystem,
        quorums: Sequence[Iterable[int]],
        weights: Sequence[float],
    ) -> None:
        if len(quorums) != len(weights):
            raise StrategyError(
                f"{len(quorums)} quorums but {len(weights)} weights"
            )
        if not quorums:
            raise StrategyError("strategy needs a non-empty support")
        frozen = [frozenset(q) for q in quorums]
        weight_array = np.asarray(weights, dtype=float)
        if (weight_array < -_PROBABILITY_TOLERANCE).any():
            raise StrategyError("strategy weights must be non-negative")
        total = float(weight_array.sum())
        if not math.isclose(total, 1.0, abs_tol=1e-6):
            raise StrategyError(f"strategy weights sum to {total}, expected 1")
        for quorum in frozen:
            if not system.contains_quorum(quorum):
                raise StrategyError(
                    f"support set {sorted(quorum)} is not a quorum of the system"
                )
        self._system = system
        self._quorums: Tuple[Quorum, ...] = tuple(frozen)
        self._weights = weight_array / total

    # ------------------------------------------------------------------
    @property
    def system(self) -> QuorumSystem:
        """The underlying quorum system."""
        return self._system

    @property
    def quorums(self) -> Tuple[Quorum, ...]:
        """Support of the distribution."""
        return self._quorums

    @property
    def weights(self) -> np.ndarray:
        """Probability of each support quorum (sums to 1)."""
        return self._weights.copy()

    # ------------------------------------------------------------------
    # Induced metrics
    # ------------------------------------------------------------------
    def element_loads(self) -> np.ndarray:
        """Load induced on every element (Def. 3.4): ``l_w(i)``.

        Entry ``i`` is the probability that element ``i`` belongs to the
        picked quorum.
        """
        loads = np.zeros(self._system.n)
        for quorum, weight in zip(self._quorums, self._weights):
            for element in quorum:
                loads[element] += weight
        return loads

    def induced_load(self) -> float:
        """``L_w(S)``: the load of the busiest element under this strategy."""
        return float(self.element_loads().max())

    def average_quorum_size(self) -> float:
        """Expected cardinality of the picked quorum.

        The paper reports this for the h-T-grid strategies (5.8 / 5.9 on
        the 4x4 grid) and for CWlog (4 at n=14, 5.25 at n=29).
        """
        sizes = np.array([len(q) for q in self._quorums], dtype=float)
        return float(sizes @ self._weights)

    def load_imbalance(self) -> float:
        """Ratio between the busiest and the average element load.

        Equals 1.0 for perfectly balanced strategies (e.g. the h-triang
        strategy of §5 of the paper).
        """
        loads = self.element_loads()
        mean = loads.mean()
        if mean == 0:
            raise StrategyError("strategy induces zero load everywhere")
        return float(loads.max() / mean)

    def sample(self, rng: np.random.Generator) -> Quorum:
        """Draw a quorum according to the distribution."""
        return self._quorums[self.sample_index(rng)]

    def sample_index(self, rng: np.random.Generator) -> int:
        """Draw the index of a support quorum according to the distribution.

        Coordinators that keep per-quorum statistics (hit rates, latencies)
        want the index rather than the frozenset; :meth:`sample` wraps this.
        """
        return int(rng.choice(len(self._quorums), p=self._weights))

    def sample_many(self, rng: np.random.Generator, count: int) -> List[Quorum]:
        """Draw ``count`` iid quorums in one vectorised pass.

        Equivalent to ``[self.sample(rng) for _ in range(count)]`` but one
        RNG call, which matters for load generators issuing thousands of
        operations.
        """
        if count < 0:
            raise StrategyError(f"sample count must be >= 0, got {count}")
        indices = rng.choice(len(self._quorums), size=count, p=self._weights)
        return [self._quorums[int(i)] for i in indices]

    def ranked_quorums(self) -> List[Quorum]:
        """Support quorums sorted by descending weight (ties: small first).

        The deterministic fallback order used by coordinators when
        sampling keeps hitting crashed elements: try the most-preferred
        quorums first.
        """
        order = sorted(
            range(len(self._quorums)),
            key=lambda j: (-self._weights[j], len(self._quorums[j]),
                           sorted(self._quorums[j])),
        )
        return [self._quorums[j] for j in order]

    def least_damaged(self, down: Iterable[int]) -> Quorum:
        """The support quorum with the fewest members in ``down``.

        Unlike :meth:`avoiding` this always returns a quorum, even when
        every support quorum touches a down element — it is the degraded
        fan-out set used by coordinators serving best-effort stale reads
        when no fully-live quorum exists.  Ties break toward higher
        weight, then smaller quorums, then lexicographic order, so the
        result is deterministic.
        """
        blocked = frozenset(down)
        best = min(
            range(len(self._quorums)),
            key=lambda j: (
                len(self._quorums[j] & blocked),
                -self._weights[j],
                len(self._quorums[j]),
                sorted(self._quorums[j]),
            ),
        )
        return self._quorums[best]

    def avoiding(self, down: Iterable[int]) -> Optional["Strategy"]:
        """The strategy conditioned on quorums disjoint from ``down``.

        Returns ``None`` when every support quorum touches a down element
        (the caller must then wait for recoveries or widen its support).
        Surviving weights are renormalised; if they all carry zero weight
        the restriction falls back to uniform over the survivors, so a
        crash can never resurrect an empty distribution.
        """
        blocked = frozenset(down)
        kept = [
            (quorum, float(weight))
            for quorum, weight in zip(self._quorums, self._weights)
            if not (quorum & blocked)
        ]
        if not kept:
            return None
        total = sum(weight for _, weight in kept)
        if total <= _PROBABILITY_TOLERANCE:
            uniform = 1.0 / len(kept)
            return Strategy(
                self._system, [q for q, _ in kept], [uniform] * len(kept)
            )
        return Strategy(
            self._system,
            [q for q, _ in kept],
            [w / total for _, w in kept],
        )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def uniform(cls, system: QuorumSystem) -> "Strategy":
        """Uniform distribution over the system's minimal quorums."""
        quorums = system.minimal_quorums()
        weight = 1.0 / len(quorums)
        return cls(system, quorums, [weight] * len(quorums))

    @classmethod
    def single(cls, system: QuorumSystem, quorum: Iterable[int]) -> "Strategy":
        """Degenerate strategy that always picks the given quorum."""
        return cls(system, [frozenset(quorum)], [1.0])

    @classmethod
    def from_mapping(
        cls, system: QuorumSystem, mapping: Mapping[Quorum, float]
    ) -> "Strategy":
        """Build from a {quorum: probability} mapping."""
        items = sorted(mapping.items(), key=lambda kv: (len(kv[0]), sorted(kv[0])))
        return cls(system, [q for q, _ in items], [w for _, w in items])

    def __repr__(self) -> str:
        return (
            f"<Strategy over {self._system.system_name!r}"
            f" support={len(self._quorums)}"
            f" load={self.induced_load():.4f}>"
        )


def balanced_strategy_over(
    system: QuorumSystem, quorums: Optional[Sequence[Quorum]] = None
) -> Strategy:
    """Least-max-load strategy restricted to the given support, via LP.

    Convenience wrapper used by constructions that know a good support but
    not the exact weights; delegates to :mod:`repro.analysis.load`.
    """
    from ..analysis.load import optimal_strategy

    return optimal_strategy(system, quorums=quorums)
