"""Strategies over quorum systems and the loads they induce.

Definitions 3.3 and 3.4 of the paper: a *strategy* is a probability
distribution over the quorums of a system; it induces on each element a
*load* (the probability the element is part of the picked quorum), and the
*system load* is the maximal element load under the best possible strategy.

This module provides the strategy object, exact evaluation of induced
loads and quorum-size statistics, and convenience constructors (uniform,
single-quorum, weighted).  Computing the *optimal* strategy is an LP and
lives in :mod:`repro.analysis.load`.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from . import bitpack
from .errors import StrategyError
from .quorum_system import Quorum, QuorumSystem
from .sampling import AliasTable

_PROBABILITY_TOLERANCE = 1e-9


class Strategy:
    """A probability distribution over an explicit list of quorums.

    Parameters
    ----------
    system:
        The quorum system the strategy belongs to.  Quorums need not be
        the system's minimal quorums (the paper evaluates strategies over
        non-minimal quorums too, e.g. the h-T-grid randomized variant),
        but every quorum must contain some minimal quorum of the system so
        the strategy only ever picks valid quorums.
    quorums:
        The support of the distribution.
    weights:
        Probabilities, same length as ``quorums``; must sum to 1.
    validate_quorums:
        When ``True`` (default) every support set must contain a minimal
        quorum of the system.  Read-side distributions of a
        :class:`~repro.core.rwstrategy.ReadWriteStrategy` set this to
        ``False``: read quorums (row covers, hierarchical covers) are
        deliberately *not* quorums of the combined system — their only
        obligation is to intersect every write quorum, which the
        read/write pair validates instead.
    """

    def __init__(
        self,
        system: QuorumSystem,
        quorums: Sequence[Iterable[int]],
        weights: Sequence[float],
        *,
        validate_quorums: bool = True,
    ) -> None:
        if len(quorums) != len(weights):
            raise StrategyError(
                f"{len(quorums)} quorums but {len(weights)} weights"
            )
        if not quorums:
            raise StrategyError("strategy needs a non-empty support")
        frozen = [frozenset(q) for q in quorums]
        weight_array = np.asarray(weights, dtype=float)
        if (weight_array < -_PROBABILITY_TOLERANCE).any():
            raise StrategyError("strategy weights must be non-negative")
        total = float(weight_array.sum())
        if not math.isclose(total, 1.0, abs_tol=1e-6):
            raise StrategyError(f"strategy weights sum to {total}, expected 1")
        if validate_quorums:
            for quorum in frozen:
                if not system.contains_quorum(quorum):
                    raise StrategyError(
                        f"support set {sorted(quorum)} is not a quorum of the system"
                    )
        self._validate_quorums = validate_quorums
        self._system = system
        self._quorums: Tuple[Quorum, ...] = tuple(frozen)
        self._weights = weight_array / total
        # Lazily-built, per-strategy caches for the serving hot path: an
        # alias table for O(1) sampling, packed membership bitmasks shared
        # with coterie reduction, per-quorum member tuples, and the ranked
        # fallback order.  None of these are built until first use, so
        # strategies that exist only as LP intermediates stay cheap.
        self._alias: Optional[AliasTable] = None
        self._alias_builds = 0
        self._packed: Optional[np.ndarray] = None
        self._membership: Optional[np.ndarray] = None
        self._members: Optional[Tuple[Tuple[int, ...], ...]] = None
        self._ranked_order: Optional[Tuple[int, ...]] = None

    # ------------------------------------------------------------------
    @property
    def system(self) -> QuorumSystem:
        """The underlying quorum system."""
        return self._system

    @property
    def quorums(self) -> Tuple[Quorum, ...]:
        """Support of the distribution."""
        return self._quorums

    @property
    def weights(self) -> np.ndarray:
        """Probability of each support quorum (sums to 1)."""
        return self._weights.copy()

    # ------------------------------------------------------------------
    # Hot-path caches (built once per strategy, on demand)
    # ------------------------------------------------------------------
    def _alias_table(self) -> AliasTable:
        if self._alias is None:
            self._alias = AliasTable(self._weights)
            self._alias_builds += 1
        return self._alias

    @property
    def sampler_stats(self) -> Dict[str, int]:
        """Work counters for the O(1) sampler: table builds and draws.

        Coordinators sample a quorum per operation; these counters let
        tests assert that per-op sampling is alias-table lookups
        (``alias_builds`` stays 1 no matter how many draws happen).
        """
        return {
            "alias_builds": self._alias_builds,
            "samples_drawn": 0 if self._alias is None else self._alias.samples_drawn,
        }

    def packed_quorums(self) -> np.ndarray:
        """Per-quorum membership bitmasks (``(m, lanes)`` uint64, cached).

        The same packing :func:`repro.core.quorum_system.reduce_to_coterie`
        uses for domination checks; here it vectorises
        :meth:`avoiding` / :meth:`least_damaged` over the whole support.
        """
        if self._packed is None:
            self._packed = bitpack.pack_rows(self._quorums, self._system.n)
        return self._packed

    def quorum_members(self) -> Tuple[Tuple[int, ...], ...]:
        """Sorted member tuple of every support quorum (cached).

        Serving code resolves the sampled index to replica ids through
        this table instead of re-sorting a frozenset per operation.
        """
        if self._members is None:
            self._members = tuple(tuple(sorted(q)) for q in self._quorums)
        return self._members

    # ------------------------------------------------------------------
    # Induced metrics
    # ------------------------------------------------------------------
    def _blocked_mask(self, blocked: Iterable[int]) -> np.ndarray:
        """Pack a down-set into one mask row, ignoring out-of-universe ids."""
        n = self._system.n
        return bitpack.pack_one([e for e in blocked if 0 <= e < n], n)

    def _membership_matrix(self) -> np.ndarray:
        if self._membership is None:
            self._membership = bitpack.membership_matrix(
                self._quorums, self._system.n
            )
        return self._membership

    def element_loads(self) -> np.ndarray:
        """Load induced on every element (Def. 3.4): ``l_w(i)``.

        Entry ``i`` is the probability that element ``i`` belongs to the
        picked quorum; one weighted reduction over the cached membership
        matrix rather than a Python double loop.
        """
        return self._weights @ self._membership_matrix()

    def induced_load(self) -> float:
        """``L_w(S)``: the load of the busiest element under this strategy."""
        return float(self.element_loads().max())

    def average_quorum_size(self) -> float:
        """Expected cardinality of the picked quorum.

        The paper reports this for the h-T-grid strategies (5.8 / 5.9 on
        the 4x4 grid) and for CWlog (4 at n=14, 5.25 at n=29).
        """
        sizes = np.array([len(q) for q in self._quorums], dtype=float)
        return float(sizes @ self._weights)

    def load_imbalance(self) -> float:
        """Ratio between the busiest and the average element load.

        Equals 1.0 for perfectly balanced strategies (e.g. the h-triang
        strategy of §5 of the paper).
        """
        loads = self.element_loads()
        mean = loads.mean()
        if mean == 0:
            raise StrategyError("strategy induces zero load everywhere")
        return float(loads.max() / mean)

    def sample(self, rng: np.random.Generator) -> Quorum:
        """Draw a quorum according to the distribution."""
        return self._quorums[self.sample_index(rng)]

    def sample_index(self, rng: np.random.Generator) -> int:
        """Draw the index of a support quorum according to the distribution.

        O(1) per draw via a cached alias table (one uniform variate, one
        lookup) — ``rng.choice`` would redo O(m) CDF work per call.
        Coordinators that keep per-quorum statistics (hit rates, latencies)
        want the index rather than the frozenset; :meth:`sample` wraps this.
        """
        return self._alias_table().sample(rng)

    def sample_many(self, rng: np.random.Generator, count: int) -> List[Quorum]:
        """Draw ``count`` iid quorums in one vectorised pass.

        Equivalent to ``[self.sample(rng) for _ in range(count)]`` but one
        RNG call, which matters for load generators issuing thousands of
        operations.
        """
        if count < 0:
            raise StrategyError(f"sample count must be >= 0, got {count}")
        indices = self._alias_table().sample_many(rng, count)
        return [self._quorums[int(i)] for i in indices]

    def ranked_order(self) -> Tuple[int, ...]:
        """Support indices sorted by descending weight (ties: small first),
        computed once and cached."""
        if self._ranked_order is None:
            self._ranked_order = tuple(
                sorted(
                    range(len(self._quorums)),
                    key=lambda j: (-self._weights[j], len(self._quorums[j]),
                                   sorted(self._quorums[j])),
                )
            )
        return self._ranked_order

    def ranked_quorums(self) -> List[Quorum]:
        """Support quorums sorted by descending weight (ties: small first).

        The deterministic fallback order used by coordinators when
        sampling keeps hitting crashed elements: try the most-preferred
        quorums first.
        """
        return [self._quorums[j] for j in self.ranked_order()]

    def least_damaged(self, down: Iterable[int]) -> Quorum:
        """The support quorum with the fewest members in ``down``.

        Unlike :meth:`avoiding` this always returns a quorum, even when
        every support quorum touches a down element — it is the degraded
        fan-out set used by coordinators serving best-effort stale reads
        when no fully-live quorum exists.  Ties break toward higher
        weight, then smaller quorums, then lexicographic order, so the
        result is deterministic.
        """
        blocked = frozenset(down)
        damage = bitpack.intersection_sizes(
            self.packed_quorums(), self._blocked_mask(blocked)
        )
        best = min(
            range(len(self._quorums)),
            key=lambda j: (
                int(damage[j]),
                -self._weights[j],
                len(self._quorums[j]),
                sorted(self._quorums[j]),
            ),
        )
        return self._quorums[best]

    def avoiding(self, down: Iterable[int]) -> Optional["Strategy"]:
        """The strategy conditioned on quorums disjoint from ``down``.

        Returns ``None`` when every support quorum touches a down element
        (the caller must then wait for recoveries or widen its support).
        Surviving weights are renormalised; if they all carry zero weight
        the restriction falls back to uniform over the survivors, so a
        crash can never resurrect an empty distribution.
        """
        blocked = frozenset(down)
        touched = bitpack.intersects(
            self.packed_quorums(), self._blocked_mask(blocked)
        )
        kept = [
            (self._quorums[j], float(self._weights[j]))
            for j in range(len(self._quorums))
            if not touched[j]
        ]
        if not kept:
            return None
        total = sum(weight for _, weight in kept)
        if total <= _PROBABILITY_TOLERANCE:
            uniform = 1.0 / len(kept)
            return Strategy(
                self._system,
                [q for q, _ in kept],
                [uniform] * len(kept),
                validate_quorums=self._validate_quorums,
            )
        return Strategy(
            self._system,
            [q for q, _ in kept],
            [w / total for _, w in kept],
            validate_quorums=self._validate_quorums,
        )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def uniform(cls, system: QuorumSystem) -> "Strategy":
        """Uniform distribution over the system's minimal quorums."""
        quorums = system.minimal_quorums()
        weight = 1.0 / len(quorums)
        return cls(system, quorums, [weight] * len(quorums))

    @classmethod
    def single(cls, system: QuorumSystem, quorum: Iterable[int]) -> "Strategy":
        """Degenerate strategy that always picks the given quorum."""
        return cls(system, [frozenset(quorum)], [1.0])

    @classmethod
    def from_mapping(
        cls, system: QuorumSystem, mapping: Mapping[Quorum, float]
    ) -> "Strategy":
        """Build from a {quorum: probability} mapping."""
        items = sorted(mapping.items(), key=lambda kv: (len(kv[0]), sorted(kv[0])))
        return cls(system, [q for q, _ in items], [w for _, w in items])

    def __repr__(self) -> str:
        return (
            f"<Strategy over {self._system.system_name!r}"
            f" support={len(self._quorums)}"
            f" load={self.induced_load():.4f}>"
        )


def balanced_strategy_over(
    system: QuorumSystem, quorums: Optional[Sequence[Quorum]] = None
) -> Strategy:
    """Least-max-load strategy restricted to the given support, via LP.

    Convenience wrapper used by constructions that know a good support but
    not the exact weights; delegates to :mod:`repro.analysis.load`.
    """
    from ..analysis.load import optimal_strategy

    return optimal_strategy(system, quorums=quorums)
