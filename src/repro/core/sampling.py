"""O(1) discrete sampling via Walker's alias method.

``numpy``'s ``Generator.choice(p=...)`` rebuilds a cumulative
distribution and binary-searches it on every call — O(m) work per
sample over a support of size m.  A strategy-serving coordinator samples
a quorum per operation, so that per-op O(m) dominates once supports get
large (wall systems have tens of thousands of quorums).  The alias
method spends O(m) once at build time and then answers every draw with
one uniform variate, one table lookup and one comparison.

The implementation is Vose's numerically-stable variant.  Draws consume
exactly one ``rng.random()`` per sample (the uniform is split into slot
and coin), so sample streams are reproducible under a fixed seed and
cheap to vectorise.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .errors import StrategyError


class AliasTable:
    """Preprocessed sampler for a fixed discrete distribution.

    Parameters
    ----------
    weights:
        Non-negative weights (need not be normalised; must not all be
        zero).

    Attributes
    ----------
    samples_drawn:
        Total draws served (single and vectorised), for tests asserting
        that sampling work is table lookups rather than rebuilds.
    """

    __slots__ = ("size", "_prob", "_alias", "samples_drawn")

    def __init__(self, weights: Sequence[float]) -> None:
        scaled = np.asarray(weights, dtype=float).copy()
        if scaled.ndim != 1 or scaled.size == 0:
            raise StrategyError("alias table needs a non-empty weight vector")
        if (scaled < 0).any() or not np.isfinite(scaled).all():
            raise StrategyError("alias weights must be finite and non-negative")
        total = float(scaled.sum())
        if total <= 0:
            raise StrategyError("alias weights must not all be zero")
        size = scaled.size
        scaled *= size / total
        prob = np.ones(size, dtype=float)
        alias = np.arange(size, dtype=np.intp)
        small = [i for i in range(size) if scaled[i] < 1.0]
        large = [i for i in range(size) if scaled[i] >= 1.0]
        while small and large:
            lo = small.pop()
            hi = large.pop()
            prob[lo] = scaled[lo]
            alias[lo] = hi
            scaled[hi] -= 1.0 - scaled[lo]
            (small if scaled[hi] < 1.0 else large).append(hi)
        # Leftovers in either list are 1.0 up to rounding: keep prob=1.
        self.size = size
        self._prob = prob
        self._alias = alias
        self.samples_drawn = 0

    def sample(self, rng: np.random.Generator) -> int:
        """Draw one index; O(1) and exactly one uniform variate."""
        self.samples_drawn += 1
        u = float(rng.random()) * self.size
        slot = min(int(u), self.size - 1)
        return slot if (u - slot) < self._prob[slot] else int(self._alias[slot])

    def sample_many(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Vectorised draw of ``count`` iid indices (one RNG call)."""
        if count < 0:
            raise StrategyError(f"sample count must be >= 0, got {count}")
        self.samples_drawn += count
        u = rng.random(count) * self.size
        slots = np.minimum(u.astype(np.intp), self.size - 1)
        coins = u - slots
        take_alias = coins >= self._prob[slots]
        return np.where(take_alias, self._alias[slots], slots)

    def probabilities(self) -> np.ndarray:
        """The exact distribution the table encodes (sums to 1)."""
        probs = self._prob.copy()
        out = probs / self.size
        np.add.at(out, self._alias, (1.0 - probs) / self.size)
        return out

    def __repr__(self) -> str:
        return f"<AliasTable size={self.size} drawn={self.samples_drawn}>"
