"""Finite-projective-plane quorum system (Maekawa [13]).

For a prime ``q``, the projective plane ``PG(2, q)`` has
``n = q^2 + q + 1`` points and equally many lines; every line holds
``q + 1 ~ sqrt(n)`` points, every two lines meet in exactly one point,
and every point lies on exactly ``q + 1`` lines.  Taking the lines as
quorums gives Maekawa's system: optimal load ``1/sqrt(n)`` (each element
is in exactly ``q+1`` of the ``n`` quorums, so the uniform strategy is
perfectly balanced) but poor asymptotic availability — the paper's
summary notes it as the optimal-load / poor-availability counterpoint to
h-triang.

Only prime ``q`` is supported (prime powers would need full ``GF(p^k)``
arithmetic); this covers the classical instances n = 7, 13, 31, 57, 133.
"""

from __future__ import annotations

import itertools
from typing import Iterator, List, Tuple

from ..core.errors import ConstructionError
from ..core.quorum_system import Quorum, QuorumSystem
from ..core.universe import Universe


def _is_prime(q: int) -> bool:
    if q < 2:
        return False
    for f in range(2, int(q**0.5) + 1):
        if q % f == 0:
            return False
    return True


def projective_plane(q: int) -> Tuple[List[Tuple[int, int, int]], List[List[int]]]:
    """Points and lines of ``PG(2, q)`` for prime ``q``.

    Points are canonical homogeneous coordinates over ``GF(q)``; lines are
    returned as lists of point indices.
    """
    if not _is_prime(q):
        raise ConstructionError(f"q must be prime, got {q}")
    points: List[Tuple[int, int, int]] = []
    for x in range(q):
        for y in range(q):
            points.append((x, y, 1))
    for x in range(q):
        points.append((x, 1, 0))
    points.append((1, 0, 0))
    index = {pt: i for i, pt in enumerate(points)}

    def canonical(v: Tuple[int, int, int]) -> Tuple[int, int, int]:
        # Scale so the last nonzero coordinate is 1.
        for position in (2, 1, 0):
            if v[position] % q:
                inverse = pow(v[position], q - 2, q)
                return tuple((c * inverse) % q for c in v)  # type: ignore[return-value]
        raise ConstructionError("zero vector has no canonical form")

    lines: List[List[int]] = []
    for a, b, c in points:  # lines are dual points
        line = [
            index[pt]
            for pt in points
            if (a * pt[0] + b * pt[1] + c * pt[2]) % q == 0
        ]
        lines.append(sorted(line))
    return points, lines


class FPPQuorumSystem(QuorumSystem):
    """Maekawa's projective-plane quorums over ``n = q^2 + q + 1`` points."""

    system_name = "fpp"

    def __init__(self, q: int) -> None:
        points, lines = projective_plane(q)
        self.q = q
        self._lines = lines
        super().__init__(Universe.of_size(len(points)))
        self.system_name = f"fpp(q={q})"

    @classmethod
    def of_size(cls, n: int) -> "FPPQuorumSystem":
        """FPP over ``n = q^2+q+1`` elements for some prime ``q``."""
        q = 1
        while q * q + q + 1 < n:
            q += 1
        if q * q + q + 1 != n:
            raise ConstructionError(f"{n} is not of the form q^2+q+1")
        return cls(q)

    def _generate_quorums(self) -> Iterator[Quorum]:
        for line in self._lines:
            yield frozenset(line)

    def load_exact(self) -> float:
        """Optimal: every point is on exactly ``q+1`` of the ``n`` lines,
        so the uniform strategy gives load ``(q+1)/n ~ 1/sqrt(n)``."""
        return (self.q + 1) / self.n
