"""Hierarchical Quorum System (HQS) of Kumar [8].

Elements are the leaves of a tree; a quorum is assembled recursively by
taking quorums in a *majority* of the children of each node.  With the
ternary recursion the quorum size is ``n^{log_3 2+...} = O(n^0.63)``; the
paper's Tables 2-4 use HQS instances with 15 and 27 elements (quorum sizes
6 and 8).

The construction is parameterised by the full branching structure, so
both the balanced ``3 x 5`` (15 leaves) and ``3 x 3 x 3`` (27 leaves)
instances of the paper, and arbitrary irregular trees, are expressible.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.errors import ConstructionError
from ..core.quorum_system import Quorum, QuorumSystem
from ..core.universe import Universe

#: A tree spec is either the leaf sentinel or a sequence of child specs.
TreeSpec = Union[str, Sequence]

LEAF = "leaf"


def balanced_spec(branching: Sequence[int]) -> TreeSpec:
    """Spec of a balanced tree: ``branching[0]`` children at the root, each
    with ``branching[1:]`` below, leaves at the bottom.

    ``balanced_spec([3, 5])`` is the paper's 15-element HQS;
    ``balanced_spec([3, 3, 3])`` the 27-element one.
    """
    if not branching:
        return LEAF
    head, *rest = branching
    if head < 1:
        raise ConstructionError(f"branching factors must be >= 1, got {head}")
    return [balanced_spec(rest) for _ in range(head)]


def _count_leaves(spec: TreeSpec) -> int:
    if spec == LEAF:
        return 1
    return sum(_count_leaves(child) for child in spec)


def _majority_of(k: int) -> int:
    """Number of children needed at a node with ``k`` children."""
    return k // 2 + 1


class HQSQuorumSystem(QuorumSystem):
    """Kumar's hierarchical quorum consensus over an arbitrary tree.

    Parameters
    ----------
    spec:
        Nested-list tree description (see :data:`LEAF`,
        :func:`balanced_spec`).
    """

    system_name = "hqs"

    def __init__(self, spec: TreeSpec) -> None:
        self._spec = spec
        n = _count_leaves(spec)
        super().__init__(Universe.of_size(n))
        self._leaf_ranges = {}

    @classmethod
    def balanced(cls, branching: Sequence[int]) -> "HQSQuorumSystem":
        """Balanced HQS, e.g. ``balanced([3, 5])`` for the paper's n=15."""
        system = cls(balanced_spec(branching))
        system.system_name = f"hqs{list(branching)}"
        return system

    # ------------------------------------------------------------------
    @property
    def spec(self) -> TreeSpec:
        """The tree description."""
        return self._spec

    def _quorums_of(self, spec: TreeSpec, offset: int) -> Tuple[List[Quorum], int]:
        """Minimal quorums of the subtree starting at leaf id ``offset``.

        Returns the quorums and the number of leaves consumed.
        """
        if spec == LEAF:
            return [frozenset({offset})], 1
        child_quorums: List[List[Quorum]] = []
        consumed = 0
        for child in spec:
            quorums, used = self._quorums_of(child, offset + consumed)
            child_quorums.append(quorums)
            consumed += used
        k = len(child_quorums)
        need = _majority_of(k)
        result: List[Quorum] = []
        for subset in itertools.combinations(range(k), need):
            for pick in itertools.product(*(child_quorums[i] for i in subset)):
                combined: frozenset = frozenset()
                for part in pick:
                    combined |= part
                result.append(combined)
        return result, consumed

    def _generate_quorums(self) -> Iterator[Quorum]:
        quorums, consumed = self._quorums_of(self._spec, 0)
        assert consumed == self.n
        return iter(quorums)

    # ------------------------------------------------------------------
    def _availability_of(self, spec: TreeSpec, q: float) -> float:
        """Probability a quorum can be formed in the subtree."""
        if spec == LEAF:
            return q
        child_avail = [self._availability_of(child, q) for child in spec]
        k = len(child_avail)
        need = _majority_of(k)
        # Probability that at least `need` independent children succeed:
        # convolve the success-count distribution.
        distribution = np.zeros(k + 1)
        distribution[0] = 1.0
        for a in child_avail:
            distribution[1:] = distribution[1:] * (1 - a) + distribution[:-1] * a
            distribution[0] *= 1 - a
        return float(distribution[need:].sum())

    def failure_probability_exact(self, p: float) -> float:
        """Exact recursion: child subtrees are element-disjoint, hence
        independent; each node needs a majority of its children."""
        return 1.0 - self._availability_of(self._spec, 1.0 - p)

    def availability_heterogeneous(self, survive) -> float:
        """Tree-majority recursion at per-leaf survival probabilities."""
        if len(survive) != self.n:
            raise ConstructionError(
                f"expected {self.n} survival probabilities, got {len(survive)}"
            )
        leaves = iter(survive)

        def recurse(spec) -> float:
            if spec == LEAF:
                return float(next(leaves))
            child_avail = [recurse(child) for child in spec]
            k = len(child_avail)
            need = _majority_of(k)
            distribution = np.zeros(k + 1)
            distribution[0] = 1.0
            for a in child_avail:
                distribution[1:] = distribution[1:] * (1 - a) + distribution[:-1] * a
                distribution[0] *= 1 - a
            return float(distribution[need:].sum())

        return recurse(self._spec)

    # ------------------------------------------------------------------
    def _is_balanced(self, spec: Optional[TreeSpec] = None) -> bool:
        spec = self._spec if spec is None else spec
        if spec == LEAF:
            return True
        shapes = {self._shape(child) for child in spec}
        return len(shapes) == 1 and all(self._is_balanced(child) for child in spec)

    def _shape(self, spec: TreeSpec):
        if spec == LEAF:
            return LEAF
        return tuple(self._shape(child) for child in spec)

    def load_exact(self) -> Optional[float]:
        """For balanced trees, symmetry makes the uniform strategy optimal
        and the load equals ``quorum_size / n`` (all quorums have equal
        size in a balanced HQS)."""
        if not self._is_balanced():
            return None
        return self.smallest_quorum_size() / self.n

    def quorum_size_formula(self) -> int:
        """Quorum size of a balanced tree: product of child majorities."""

        def size(spec: TreeSpec) -> int:
            if spec == LEAF:
                return 1
            return _majority_of(len(spec)) * size(spec[0])

        if not self._is_balanced():
            raise ConstructionError("quorum_size_formula requires a balanced tree")
        return size(self._spec)
