"""The (flat) grid protocol of Cheung, Ammar and Ahamad [3].

Elements are arranged in an ``R x C`` grid.  Following the paper's
orientation (§4.1):

* a **row-cover** contains at least one element of every row — used as a
  *read* quorum;
* a **full-line** is one complete row — used as a *(blind) write* quorum;
* a **read-write quorum** is the union of a row-cover and a full-line and
  is a proper quorum system (any two read-write quorums intersect).

Row-covers alone and full-lines alone are *not* quorum systems (two
covers, or two lines, may be disjoint — which is precisely why concurrent
reads and concurrent blind writes are allowed by the protocol).

The quorum size is ``~ 2 sqrt(n) - 1`` for square grids and the failure
probability tends to 1 as the grid grows (Peleg–Wool) — the weakness the
hierarchical grid of [9] repairs and that this paper's h-T-grid improves
further.
"""

from __future__ import annotations

import itertools
from typing import Iterator, List, Tuple

from ..core.errors import ConstructionError
from ..core.quorum_system import Quorum, QuorumSystem, reduce_to_coterie
from ..core.universe import Universe


class GridQuorumSystem(QuorumSystem):
    """Flat grid read-write quorums over an ``R x C`` grid.

    Element names are ``(row, col)`` pairs, rows numbered top to bottom
    from 0.
    """

    system_name = "grid"

    def __init__(self, rows: int, cols: int) -> None:
        if rows < 1 or cols < 1:
            raise ConstructionError(f"grid needs positive dims, got {rows}x{cols}")
        self.rows = rows
        self.cols = cols
        names = [(r, c) for r in range(rows) for c in range(cols)]
        super().__init__(Universe(names))
        self.system_name = f"grid{rows}x{cols}"

    # ------------------------------------------------------------------
    def element(self, row: int, col: int) -> int:
        """Dense id of grid position ``(row, col)``."""
        return self.universe.id_of((row, col))

    def row_elements(self, row: int) -> Tuple[int, ...]:
        """All element ids of one row."""
        return tuple(self.element(row, c) for c in range(self.cols))

    # ------------------------------------------------------------------
    # Quorum families
    # ------------------------------------------------------------------
    def full_lines(self) -> Iterator[Quorum]:
        """Write quorums: each complete row."""
        for row in range(self.rows):
            yield frozenset(self.row_elements(row))

    def row_covers(self) -> Iterator[Quorum]:
        """Minimal read quorums: one element from every row."""
        per_row = [self.row_elements(r) for r in range(self.rows)]
        for pick in itertools.product(*per_row):
            yield frozenset(pick)

    def read_quorums(self) -> List[Quorum]:
        """Minimal read quorums for split read/write serving.

        The uniform protocol hook consumed by
        :func:`repro.analysis.capacity.read_quorums_of`: each row cover
        (size R) intersects every read-write quorum and every full line,
        so reads served from covers always see the newest write.
        """
        return list(self.row_covers())

    def _generate_quorums(self) -> Iterator[Quorum]:
        """Read-write quorums: full row plus one element per other row."""
        for row in range(self.rows):
            line = frozenset(self.row_elements(row))
            other_rows = [self.row_elements(r) for r in range(self.rows) if r != row]
            if not other_rows:
                yield line
                continue
            for pick in itertools.product(*other_rows):
                yield line | frozenset(pick)

    # ------------------------------------------------------------------
    # Closed forms
    # ------------------------------------------------------------------
    def read_failure_probability(self, p: float) -> float:
        """Probability no row-cover is alive: some row entirely failed."""
        alive_row = 1.0 - p**self.cols
        return 1.0 - alive_row**self.rows

    def write_failure_probability(self, p: float) -> float:
        """Probability no full line is alive: every row has a failure."""
        full_row = (1.0 - p) ** self.cols
        return (1.0 - full_row) ** self.rows

    def failure_probability_exact(self, p: float) -> float:
        """Read-write availability needs every row live *and* some row
        full; rows are independent, so

        ``A = prod(1 - p^C) - prod(1 - p^C - q^C)``.
        """
        q = 1.0 - p
        live = 1.0 - p**self.cols
        live_not_full = live - q**self.cols
        return 1.0 - (live**self.rows - live_not_full**self.rows)

    def availability_heterogeneous(self, survive) -> float:
        """Per-row products at per-element survival probabilities."""
        if len(survive) != self.n:
            raise ConstructionError(
                f"expected {self.n} survival probabilities, got {len(survive)}"
            )
        all_live = 1.0
        live_not_full = 1.0
        for row in range(self.rows):
            probs = [survive[self.element(row, c)] for c in range(self.cols)]
            full = 1.0
            dead = 1.0
            for value in probs:
                full *= value
                dead *= 1.0 - value
            live = 1.0 - dead
            all_live *= live
            live_not_full *= live - full
        return all_live - live_not_full

    def load_exact(self) -> float:
        """Exact load of the read-write grid.

        All minimal quorums have size ``C + R - 1``; picking the full row
        uniformly and cover elements uniformly loads every element equally
        (each element is in the full line w.p. ``1/R`` and in the cover
        w.p. ``(R-1)/R * 1/C``), so the load is ``(C + R - 1) / (R*C)``.
        """
        return (self.cols + self.rows - 1) / (self.rows * self.cols)
