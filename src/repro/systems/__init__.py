"""Quorum-system constructions.

The paper's two contributions — :class:`HierarchicalTGrid` (§4) and
:class:`HierarchicalTriangle` (§5) — plus every baseline its evaluation
compares against: majority/weighted voting, Kumar's HQS, the
Agrawal–El Abbadi tree, the flat grid protocol, crumbling walls (CWlog,
flat T-grid, triangle, diamond), the Kumar–Cheung hierarchical grid, the
Naor–Wool Paths system, the Kuo–Huang Y system, and Maekawa's
finite-projective-plane system.
"""

from .fpp import FPPQuorumSystem, projective_plane
from .grid import GridQuorumSystem
from .hgrid import (
    HierarchicalGrid,
    LEAF,
    flat_spec,
    halving_spec,
    pairing_spec,
)
from .hqs import HQSQuorumSystem, balanced_spec
from .htgrid import HierarchicalTGrid
from .htriangle import (
    HierarchicalTriangle,
    LoadProfile,
    standard_spec,
    triangle_size,
)
from .majority import MajorityQuorumSystem, WeightedVotingQuorumSystem
from .paths import PathsQuorumSystem, diamond_vertices
from .singleton import SingletonQuorumSystem
from .tree import TreeQuorumSystem
from .walls import CrumblingWallQuorumSystem
from .yquorum import YQuorumSystem, triangle_vertices

__all__ = [
    "CrumblingWallQuorumSystem",
    "FPPQuorumSystem",
    "GridQuorumSystem",
    "HQSQuorumSystem",
    "HierarchicalGrid",
    "HierarchicalTGrid",
    "HierarchicalTriangle",
    "LEAF",
    "LoadProfile",
    "MajorityQuorumSystem",
    "PathsQuorumSystem",
    "SingletonQuorumSystem",
    "TreeQuorumSystem",
    "WeightedVotingQuorumSystem",
    "YQuorumSystem",
    "balanced_spec",
    "diamond_vertices",
    "flat_spec",
    "halving_spec",
    "pairing_spec",
    "projective_plane",
    "standard_spec",
    "triangle_size",
    "triangle_vertices",
]
