"""The Y quorum system of Kuo and Huang [10].

``n = t(t+1)/2`` elements form a triangular lattice with ``t`` rows (row
``r`` has ``r+1`` sites, 0-based).  A quorum is a connected set of sites
touching all **three sides** of the triangle — the left side
(``col = 0``), the right side (``col = row``) and the bottom row — i.e. a
"Y" shape: three lattice paths joined at a common site (any connected
three-side-touching set contains such a Y).

Any two quorums intersect: two connected sets each touching all three
sides of a topological triangle must cross (a classical planar argument;
``tests`` verify it exhaustively on small instances).  The system is
*self-dual* — the minimal transversals are again the Y sets — hence
``F_{1/2} = 1/2`` exactly, matching Tables 2 and 3 of the paper, and our
triangular-lattice model reproduces the paper's quoted Y values exactly
(they were taken from [10]): e.g. ``F_0.1(Y(15)) = 0.000745``.

Exact availability for ``t = 7`` (n = 28, beyond 2^28 enumeration) comes
from the frontier DP of :mod:`repro.analysis.lattice`.
"""

from __future__ import annotations

import collections
import itertools
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from ..analysis.lattice import ConnectivityProblem, probability_all_satisfied
from ..core.errors import ConstructionError
from ..core.quorum_system import Quorum, QuorumSystem
from ..core.universe import Universe


def triangle_vertices(t: int) -> List[Tuple[int, int]]:
    """Row-major sites of the ``t``-row triangular lattice."""
    return [(r, c) for r in range(t) for c in range(r + 1)]


class YQuorumSystem(QuorumSystem):
    """Kuo–Huang Y quorums on the ``t``-row triangular lattice."""

    system_name = "y"

    def __init__(self, t: int) -> None:
        if t < 1:
            raise ConstructionError(f"need t >= 1, got {t}")
        self.t = t
        vertices = triangle_vertices(t)
        super().__init__(Universe(vertices))
        self.system_name = f"y{t}"
        self._vertices = vertices
        self._vertex_set = set(vertices)

    @classmethod
    def of_size(cls, n: int) -> "YQuorumSystem":
        """Y system over ``n = t(t+1)/2`` elements."""
        t = 1
        while t * (t + 1) // 2 < n:
            t += 1
        if t * (t + 1) // 2 != n:
            raise ConstructionError(f"{n} is not a triangular number")
        return cls(t)

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    def neighbours(self, vertex: Tuple[int, int]) -> List[Tuple[int, int]]:
        """Triangular-lattice neighbours (up to six)."""
        r, c = vertex
        candidates = (
            (r, c - 1),
            (r, c + 1),
            (r - 1, c - 1),
            (r - 1, c),
            (r + 1, c),
            (r + 1, c + 1),
        )
        return [v for v in candidates if v in self._vertex_set]

    def side(self, which: str) -> FrozenSet[Tuple[int, int]]:
        """One of the three sides: ``left``, ``right`` or ``bottom``."""
        if which == "left":
            return frozenset(v for v in self._vertices if v[1] == 0)
        if which == "right":
            return frozenset(v for v in self._vertices if v[1] == v[0])
        if which == "bottom":
            return frozenset(v for v in self._vertices if v[0] == self.t - 1)
        raise ConstructionError(f"unknown side {which!r}")

    # ------------------------------------------------------------------
    # Quorums
    # ------------------------------------------------------------------
    def _touches_all_sides(self, sites: FrozenSet[Tuple[int, int]]) -> bool:
        left, right, bottom = (
            self.side("left"),
            self.side("right"),
            self.side("bottom"),
        )
        return bool(sites & left) and bool(sites & right) and bool(sites & bottom)

    def _is_connected(self, sites: FrozenSet[Tuple[int, int]]) -> bool:
        if not sites:
            return False
        start = next(iter(sites))
        seen = {start}
        queue = collections.deque([start])
        while queue:
            site = queue.popleft()
            for nxt in self.neighbours(site):
                if nxt in sites and nxt not in seen:
                    seen.add(nxt)
                    queue.append(nxt)
        return len(seen) == len(sites)

    def is_y_set(self, sites) -> bool:
        """Whether the given sites form a (not necessarily minimal) Y."""
        frozen = frozenset(sites)
        return self._is_connected(frozen) and self._touches_all_sides(frozen)

    def _generate_quorums(self) -> Iterator[Quorum]:
        """Minimal Y sets by exhaustive subset filtering (small ``t``)."""
        if self.n > 16:
            raise ConstructionError(
                f"enumerating Y quorums for t={self.t} is intractable;"
                " availability has an exact DP"
            )
        vertices = self._vertices
        n = self.n
        ids = self.universe.id_of
        for mask in range(1, 1 << n):
            sites = frozenset(
                vertices[i] for i in range(n) if mask >> i & 1
            )
            if not self.is_y_set(sites):
                continue
            # Keep minimal sets only (removing any site breaks the Y).
            if all(
                not self.is_y_set(sites - {site}) for site in sites
            ):
                yield frozenset(ids(v) for v in sites)

    def smallest_quorum_size(self) -> int:
        """``t``: a straight left-right path along the bottom row touches
        all three sides."""
        return self.t

    # ------------------------------------------------------------------
    # Exact availability
    # ------------------------------------------------------------------
    def connectivity_problem(self) -> ConnectivityProblem:
        """"Some component touches all three sides" as a lattice problem."""
        adjacency = {v: frozenset(self.neighbours(v)) for v in self._vertices}
        return ConnectivityProblem(
            vertices=tuple(self._vertices),
            adjacency=adjacency,
            groups={
                "left": self.side("left"),
                "right": self.side("right"),
                "bottom": self.side("bottom"),
            },
            requirements=(frozenset({"left", "right", "bottom"}),),
        )

    def failure_probability_exact(self, p: float) -> float:
        """Exact frontier DP over the triangle rows."""
        problem = self.connectivity_problem()
        survive = {v: 1.0 - p for v in self._vertices}
        return 1.0 - probability_all_satisfied(problem, survive)
