"""Hierarchical grid quorum system of Kumar and Cheung [9] (§4.1).

Processes sit at level 0; a logical object at level ``i > 0`` is an
``m_i x n_i`` grid of level ``i-1`` objects (grids of different sizes are
allowed, exactly as the paper notes).  Quorums are formed recursively:

* a **row-cover** of a grid object takes a row-cover in at least one
  object of *every* row (read quorums);
* a **full-line** takes a full-line in *all* objects of one row (write
  quorums);
* a **read-write quorum** is the union of a row-cover and a full-line and
  forms a proper quorum system.

The hierarchy is described by a *spec*: the string ``"leaf"`` for a
process, or a tuple of rows, each row a tuple of child specs.  Two
builders cover the paper's configurations: :meth:`HierarchicalGrid.flat`
(one level — the plain grid protocol) and
:meth:`HierarchicalGrid.pairing`, which groups a physical ``R x C`` grid
into 2x2 blocks recursively so that "logical grids have size 2x2 whenever
it is possible" (§4.3).

Exact failure probabilities come from a joint recursion: for every object
we compute the joint probability mass over the pair of indicator events
(row-cover formable, full-line formable); sibling objects are element-
disjoint hence independent, and per-row / across-row combination is a
small DP.  The read-write availability is the ``(1, 1)`` cell at the
root.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..core.errors import ConstructionError
from ..core.quorum_system import Quorum, QuorumSystem
from ..core.universe import Universe

#: Spec grammar: LEAF or tuple(rows) of tuple(children).
GridSpec = Union[str, Tuple]

LEAF = "leaf"


def flat_spec(rows: int, cols: int) -> GridSpec:
    """Single-level grid spec: ``rows x cols`` processes."""
    if rows < 1 or cols < 1:
        raise ConstructionError(f"grid needs positive dims, got {rows}x{cols}")
    return tuple(tuple(LEAF for _ in range(cols)) for _ in range(rows))


def halving_spec(rows: int, cols: int) -> GridSpec:
    """Top-down halving decomposition of a physical ``rows x cols`` grid.

    Any dimension larger than 2 is split into two near-halves (floor
    first: 3 -> 1+2, 5 -> 2+3) and the halves are decomposed recursively,
    so every logical grid is at most 2x2 — the paper's "logical grids have
    size 2x2 whenever it is possible".  This decomposition reproduces the
    paper's Table 1 values *exactly*: the h-grid numbers for all four
    configurations (3x3, 4x4, 5x5 and the 6-lines x 4-columns grid, where
    ceiling-first would give the same by up/down symmetry) and the
    h-T-grid numbers (where the split order matters because partial
    row-covers break the symmetry — ceiling-first 3x3 gives 0.013940 at
    p=0.1 instead of the paper's 0.015213).  The bottom-up
    :func:`pairing_spec` alternative differs on 5x5 and 6x4 and is kept
    for the ablation benchmark.
    """

    def split(extent: int) -> Optional[List[int]]:
        if extent <= 2:
            return None
        first = extent // 2
        return [first, extent - first]

    def build(r: int, c: int) -> GridSpec:
        row_split = split(r)
        col_split = split(c)
        if row_split is None and col_split is None:
            return flat_spec(r, c)
        row_groups = row_split if row_split else [r]
        col_groups = col_split if col_split else [c]
        return tuple(
            tuple(build(rr, cc) for cc in col_groups) for rr in row_groups
        )

    return build(rows, cols)


def pairing_spec(rows: int, cols: int) -> GridSpec:
    """Recursive 2x2 grouping of a physical ``rows x cols`` grid.

    The physical grid is tiled with (up to) 2x2 blocks; the resulting
    block grid is grouped again until it is at most 2x2.  1x1 groups
    collapse to their only child (a 1x1 logical grid is semantically
    identical to its child).  This realises the paper's "logical grids
    have size 2x2 whenever it is possible" for 9, 16, 24 and 25 nodes.
    """
    current: List[List[GridSpec]] = [[LEAF] * cols for _ in range(rows)]
    while len(current) > 2 or len(current[0]) > 2:
        r = len(current)
        c = len(current[0])
        grouped: List[List[GridSpec]] = []
        for i in range(0, r, 2):
            row_group: List[GridSpec] = []
            for j in range(0, c, 2):
                block_rows = []
                for ii in range(i, min(i + 2, r)):
                    block_rows.append(tuple(current[ii][j : min(j + 2, c)]))
                if len(block_rows) == 1 and len(block_rows[0]) == 1:
                    row_group.append(block_rows[0][0])
                else:
                    row_group.append(tuple(block_rows))
            grouped.append(row_group)
        current = grouped
    if len(current) == 1 and len(current[0]) == 1:
        return current[0][0]
    return tuple(tuple(row) for row in current)


class _Node:
    """Internal resolved tree: leaves carry element ids."""

    __slots__ = ("rows", "leaf_id", "height", "width")

    def __init__(self, rows: Optional[List[List["_Node"]]], leaf_id: Optional[int]):
        self.rows = rows
        self.leaf_id = leaf_id
        self.height = 0
        self.width = 0

    @property
    def is_leaf(self) -> bool:
        return self.leaf_id is not None


class HierarchicalGrid(QuorumSystem):
    """The h-grid read-write quorum system over a hierarchy spec.

    Element names are the global ``(row, col)`` coordinates obtained by
    laying the hierarchy out as one large grid (the paper's figure 1,
    level 0).
    """

    system_name = "h-grid"

    def __init__(self, spec: GridSpec, name: Optional[str] = None) -> None:
        self._spec = spec
        counter = itertools.count()
        self._root = self._build(spec, counter)
        n = next(counter)
        self._layout(self._root)
        coords: Dict[int, Tuple[int, int]] = {}
        rowpaths: Dict[int, Tuple[int, ...]] = {}
        self._place(self._root, 0, 0, (), coords, rowpaths)
        names = [coords[i] for i in range(n)]
        super().__init__(Universe(names))
        self._coords = coords
        self._rowpaths = rowpaths
        if name:
            self.system_name = name

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    @classmethod
    def flat(cls, rows: int, cols: int) -> "HierarchicalGrid":
        """One-level hierarchy: the plain grid protocol of [3]."""
        return cls(flat_spec(rows, cols), name=f"h-grid-flat{rows}x{cols}")

    @classmethod
    def pairing(cls, rows: int, cols: int) -> "HierarchicalGrid":
        """Recursive 2x2 pairing hierarchy over a ``rows x cols`` grid."""
        return cls(pairing_spec(rows, cols), name=f"h-grid-pairing{rows}x{cols}")

    @classmethod
    def halving(cls, rows: int, cols: int) -> "HierarchicalGrid":
        """Top-down halving hierarchy — the paper's Table 1 decomposition."""
        return cls(halving_spec(rows, cols), name=f"h-grid{rows}x{cols}")

    # ------------------------------------------------------------------
    # Construction internals
    # ------------------------------------------------------------------
    def _build(self, spec: GridSpec, counter) -> _Node:
        return build_node(spec, counter)

    def _layout(self, node: _Node) -> None:
        if node.is_leaf:
            node.height = 1
            node.width = 1
            return
        assert node.rows is not None
        for row in node.rows:
            for child in row:
                self._layout(child)
        node.height = sum(max(child.height for child in row) for row in node.rows)
        node.width = max(sum(child.width for child in row) for row in node.rows)

    def _place(self, node, row_offset, col_offset, rowpath, coords, rowpaths):
        if node.is_leaf:
            coords[node.leaf_id] = (row_offset, col_offset)
            rowpaths[node.leaf_id] = rowpath
            return
        r = row_offset
        for row_index, row in enumerate(node.rows):
            c = col_offset
            for child in row:
                self._place(child, r, c, rowpath + (row_index,), coords, rowpaths)
                c += child.width
            r += max(child.height for child in row)

    # ------------------------------------------------------------------
    # Structure accessors
    # ------------------------------------------------------------------
    @property
    def spec(self) -> GridSpec:
        """The hierarchy description."""
        return self._spec

    def coordinates(self, element: int) -> Tuple[int, int]:
        """Global ``(row, col)`` of a level-0 element."""
        return self._coords[element]

    def rowpath(self, element: int) -> Tuple[int, ...]:
        """Hierarchical row-index path of Definition 4.1 (top level first).

        ``rowpath(a) > rowpath(b)`` lexicographically corresponds to the
        paper's *above/below* order used by the h-T-grid (§4.2); see
        :mod:`repro.systems.htgrid` for the orientation convention.
        """
        return self._rowpaths[element]

    # ------------------------------------------------------------------
    # Quorum families
    # ------------------------------------------------------------------
    def full_lines(self) -> List[Quorum]:
        """All hierarchical full-lines (the write quorums)."""
        return full_lines_of(self._root)

    def row_covers(self) -> List[Quorum]:
        """All minimal hierarchical row-covers (the read quorums)."""
        return row_covers_of(self._root)

    def read_quorums(self) -> List[Quorum]:
        """Minimal read quorums for split read/write serving.

        Alias of :meth:`row_covers`, exposed under the uniform protocol
        name: every hierarchical cover picks, per root row, a recursive
        cover of one child, and therefore meets the full-line half of
        every combined quorum.
        """
        return self.row_covers()

    def _generate_quorums(self) -> Iterator[Quorum]:
        covers = self.row_covers()
        for line in self.full_lines():
            for cover in covers:
                yield line | cover

    # ------------------------------------------------------------------
    # Exact availability
    # ------------------------------------------------------------------
    def joint_cover_line_pmf(self, p: float) -> Dict[Tuple[int, int], float]:
        """Joint pmf of (row-cover, full-line) availability at the root.

        Keys are ``(rc, fl)`` indicator pairs.  Used directly by the
        hierarchical triangle (§5), whose sub-grids contribute through
        exactly this joint distribution.
        """
        pmf = joint_cover_line_pmf_of(self._root, 1.0 - p)
        return {key: pmf.get(key, 0.0) for key in ((0, 0), (0, 1), (1, 0), (1, 1))}

    def failure_probability_exact(self, p: float) -> float:
        """Read-write failure: no (cover AND line) simultaneously formable."""
        return 1.0 - self.joint_cover_line_pmf(p)[(1, 1)]

    def read_failure_probability(self, p: float) -> float:
        """Probability no hierarchical row-cover is alive."""
        pmf = self.joint_cover_line_pmf(p)
        return 1.0 - pmf[(1, 0)] - pmf[(1, 1)]

    def write_failure_probability(self, p: float) -> float:
        """Probability no hierarchical full-line is alive."""
        pmf = self.joint_cover_line_pmf(p)
        return 1.0 - pmf[(0, 1)] - pmf[(1, 1)]

    def availability_heterogeneous(self, survive) -> float:
        """Exact read-write availability under per-element survival
        probabilities (the joint recursion evaluated leaf-wise)."""
        if len(survive) != self.n:
            raise ConstructionError(
                f"expected {self.n} survival probabilities, got {len(survive)}"
            )
        pmf = joint_cover_line_pmf_of(self._root, dict(enumerate(survive)))
        return pmf.get((1, 1), 0.0)

# ----------------------------------------------------------------------
# Node-level recursions, shared with the hierarchical triangle (§5),
# whose sub-grids are h-grid objects embedded in a larger universe.
# ----------------------------------------------------------------------

def build_node(spec: GridSpec, leaf_ids) -> _Node:
    """Resolve a spec into an id-carrying node tree.

    ``leaf_ids`` is an iterator producing the element id for each leaf in
    row-major spec order — :class:`HierarchicalGrid` passes a fresh
    counter, the hierarchical triangle passes the ids of the sub-grid
    region it is carving out of the triangle.
    """
    if spec == LEAF:
        return _Node(None, next(leaf_ids))
    if not spec or any(not row for row in spec):
        raise ConstructionError("grid spec rows must be non-empty")
    rows = [[build_node(child, leaf_ids) for child in row] for row in spec]
    return _Node(rows, None)


def full_lines_of(node: _Node) -> List[Quorum]:
    """All hierarchical full-lines of the object rooted at ``node``."""
    if node.is_leaf:
        return [frozenset({node.leaf_id})]
    lines: List[Quorum] = []
    for row in node.rows:
        child_lines = [full_lines_of(child) for child in row]
        for pick in itertools.product(*child_lines):
            combined: frozenset = frozenset()
            for part in pick:
                combined |= part
            lines.append(combined)
    return lines


def row_covers_of(node: _Node) -> List[Quorum]:
    """All minimal hierarchical row-covers of the object at ``node``."""
    if node.is_leaf:
        return [frozenset({node.leaf_id})]
    per_row: List[List[Quorum]] = []
    for row in node.rows:
        choices: List[Quorum] = []
        for child in row:
            choices.extend(row_covers_of(child))
        per_row.append(choices)
    covers: List[Quorum] = []
    for pick in itertools.product(*per_row):
        combined = frozenset()
        for part in pick:
            combined |= part
        covers.append(combined)
    return covers


def joint_cover_line_pmf_of(node: _Node, q) -> Dict[Tuple[int, int], float]:
    """Joint pmf of (row-cover formable, full-line formable) at ``node``.

    Sibling objects are element-disjoint, hence independent: within a row
    we track (some child coverable, all children line-able); across rows
    (every row coverable, some row line-able).

    ``q`` is either a float (iid survival probability) or a mapping from
    leaf element id to survival probability (heterogeneous model).
    """
    # Integer literals keep the recursion generic over the number type
    # (floats normally, fractions.Fraction for the exact-rational mode).
    if node.is_leaf:
        leaf_q = q[node.leaf_id] if not isinstance(q, float) else q
        return {(1, 1): leaf_q, (0, 0): 1 - leaf_q}
    across = {(1, 0): 1}
    for row in node.rows:
        within = {(0, 1): 1}
        for child in row:
            child_pmf = joint_cover_line_pmf_of(child, q)
            merged: Dict[Tuple[int, int], float] = {}
            for (any_rc, all_fl), prob in within.items():
                for (c_rc, c_fl), c_prob in child_pmf.items():
                    key = (any_rc | c_rc, all_fl & c_fl)
                    merged[key] = merged.get(key, 0) + prob * c_prob
            within = merged
        merged_across: Dict[Tuple[int, int], float] = {}
        for (all_rc, any_fl), prob in across.items():
            for (row_rc, row_fl), row_prob in within.items():
                key = (all_rc & row_rc, any_fl | row_fl)
                merged_across[key] = merged_across.get(key, 0) + prob * row_prob
        across = merged_across
    return across


def global_rows_spanned(node: _Node) -> int:
    """Number of level-0 rows the object spans (its layout height)."""
    if node.is_leaf:
        return 1
    return sum(
        max(global_rows_spanned(child) for child in row) for row in node.rows
    )


def global_cols_spanned(node: _Node) -> int:
    """Number of level-0 columns the object spans (its layout width)."""
    if node.is_leaf:
        return 1
    return max(
        sum(global_cols_spanned(child) for child in row) for row in node.rows
    )


def line_inclusion_probabilities(node: _Node, out: Dict[int, float], scale: float = 1.0) -> None:
    """Per-element probability of being in a randomly chosen full-line.

    Rows are selected with probability proportional to the number of
    level-0 rows they span (the §5 rule: "full-lines are selected
    randomly, at each level, with probability proportional to the number
    of represented level 0 lines"); within the chosen row every child
    contributes its own full-line.
    """
    if node.is_leaf:
        out[node.leaf_id] = out.get(node.leaf_id, 0.0) + scale
        return
    row_spans = [max(global_rows_spanned(child) for child in row) for row in node.rows]
    total = sum(row_spans)
    for row, span in zip(node.rows, row_spans):
        for child in row:
            line_inclusion_probabilities(child, out, scale * span / total)


def cover_inclusion_probabilities(node: _Node, out: Dict[int, float], scale: float = 1.0) -> None:
    """Per-element probability of being in a randomly chosen row-cover.

    Within every row, one child is selected with probability proportional
    to the number of level-0 columns it spans (§5: "row-covers ...
    proportional to the number of represented columns"), recursively.
    """
    if node.is_leaf:
        out[node.leaf_id] = out.get(node.leaf_id, 0.0) + scale
        return
    for row in node.rows:
        spans = [global_cols_spanned(child) for child in row]
        total = sum(spans)
        for child, span in zip(row, spans):
            cover_inclusion_probabilities(child, out, scale * span / total)


def line_distribution(node: _Node) -> Dict[Quorum, float]:
    """Distribution over full-lines under the §5 proportional rule.

    Rows are picked with probability proportional to the number of
    level-0 rows they span; within the chosen row every child contributes
    an independently drawn full-line of its own.
    """
    if node.is_leaf:
        return {frozenset({node.leaf_id}): 1.0}
    row_spans = [max(global_rows_spanned(child) for child in row) for row in node.rows]
    total = sum(row_spans)
    distribution: Dict[Quorum, float] = {}
    for row, span in zip(node.rows, row_spans):
        row_probability = span / total
        partial: Dict[Quorum, float] = {frozenset(): 1.0}
        for child in row:
            child_lines = line_distribution(child)
            merged: Dict[Quorum, float] = {}
            for base, base_prob in partial.items():
                for line, line_prob in child_lines.items():
                    key = base | line
                    merged[key] = merged.get(key, 0.0) + base_prob * line_prob
            partial = merged
        for line, prob in partial.items():
            distribution[line] = distribution.get(line, 0.0) + row_probability * prob
    return distribution


def cover_distribution(node: _Node) -> Dict[Quorum, float]:
    """Distribution over row-covers under the §5 proportional rule.

    Within every row one child is picked with probability proportional to
    the level-0 columns it spans, recursively.
    """
    if node.is_leaf:
        return {frozenset({node.leaf_id}): 1.0}
    distribution: Dict[Quorum, float] = {frozenset(): 1.0}
    for row in node.rows:
        spans = [global_cols_spanned(child) for child in row]
        total = sum(spans)
        row_choices: Dict[Quorum, float] = {}
        for child, span in zip(row, spans):
            for cover, prob in cover_distribution(child).items():
                row_choices[cover] = row_choices.get(cover, 0.0) + prob * span / total
        merged: Dict[Quorum, float] = {}
        for base, base_prob in distribution.items():
            for cover, prob in row_choices.items():
                key = base | cover
                merged[key] = merged.get(key, 0.0) + base_prob * prob
        distribution = merged
    return distribution
