"""Crumbling-wall quorum systems (Peleg–Wool [16]) and the flat T-grid.

A *wall* arranges the elements in ``d`` rows of widths ``w_1..w_d``; a
quorum is one **full row** plus **one representative from every row below
it**.  Any two quorums intersect: if their full rows differ, the one with
the higher full row has a representative inside the other's full row.

Two members of the family matter for the paper:

* ``CWlog`` — row widths ``ceil(log2(i+1))`` — has ``O(lg n)`` smallest
  quorums and optimal availability/load among systems with such small
  quorums (Tables 2-4 baselines with 14 and 29 elements);
* the **flat T-grid** — equal widths — is exactly the grid optimisation
  of [3] that §4.2 of the paper lifts to the hierarchical setting
  ("a full-line and one element from each row below the full line").
"""

from __future__ import annotations

import itertools
import math
from typing import Iterator, List, Sequence, Tuple

import numpy as np

from ..core.errors import ConstructionError
from ..core.quorum_system import Quorum, QuorumSystem
from ..core.strategy import Strategy
from ..core.universe import Universe


class CrumblingWallQuorumSystem(QuorumSystem):
    """Wall with arbitrary row widths.

    Element names are ``(row, col)`` with rows numbered from 0 (top).
    """

    system_name = "wall"

    def __init__(self, widths: Sequence[int]) -> None:
        if not widths:
            raise ConstructionError("wall needs at least one row")
        if any(w < 1 for w in widths):
            raise ConstructionError(f"row widths must be positive: {list(widths)}")
        self.widths = tuple(int(w) for w in widths)
        names = [(r, c) for r, w in enumerate(self.widths) for c in range(w)]
        super().__init__(Universe(names))
        self.system_name = f"wall{list(self.widths)}"

    # ------------------------------------------------------------------
    @classmethod
    def cwlog(cls, n: int) -> "CrumblingWallQuorumSystem":
        """The CWlog wall over ``n`` elements.

        Row ``i`` (1-based) has width ``ceil(log2(i+1))``: 1, 2, 2, 3, 3,
        3, 3, 4, ...  Rows are added until the elements are exhausted; the
        last row may be truncated.  ``n = 14`` gives widths
        ``[1, 2, 2, 3, 3, 3]`` and ``n = 29`` gives
        ``[1, 2, 2, 3, 3, 3, 3, 4, 4, 4]`` — matching the min/max quorum
        sizes reported in Table 4 of the paper.
        """
        if n < 1:
            raise ConstructionError(f"need n >= 1, got {n}")
        widths: List[int] = []
        total = 0
        row = 1
        while total < n:
            width = math.ceil(math.log2(row + 1))
            if n - total < width:
                # A truncated short bottom row would become a tiny quorum
                # (a near-dictator); widen the last full row instead, as
                # crumbling walls require non-increasing quorum quality
                # towards the bottom.
                widths[-1] += n - total
                break
            widths.append(width)
            total += width
            row += 1
        system = cls(widths)
        system.system_name = f"cwlog{n}"
        return system

    @classmethod
    def flat_tgrid(cls, rows: int, cols: int) -> "CrumblingWallQuorumSystem":
        """The flat T-grid: a wall with ``rows`` equal rows of ``cols``."""
        system = cls([cols] * rows)
        system.system_name = f"tgrid{rows}x{cols}"
        return system

    @classmethod
    def triangle(cls, t: int) -> "CrumblingWallQuorumSystem":
        """Triangle quorums (Luk–Wong [11] / Lovász): wall with widths
        ``1, 2, ..., t`` over ``n = t(t+1)/2`` elements.  The related-work
        baseline whose failure probability does not vanish (Peleg–Wool)."""
        system = cls(list(range(1, t + 1)))
        system.system_name = f"triangle{t}"
        return system

    @classmethod
    def diamond(cls, k: int) -> "CrumblingWallQuorumSystem":
        """Diamond-shaped wall (after Fu–Wong [4]): row widths
        ``1, 2, ..., k, ..., 2, 1`` over ``n = k^2`` elements."""
        widths = list(range(1, k + 1)) + list(range(k - 1, 0, -1))
        system = cls(widths)
        system.system_name = f"diamond{k}"
        return system

    # ------------------------------------------------------------------
    def element(self, row: int, col: int) -> int:
        """Dense id of wall position ``(row, col)``."""
        return self.universe.id_of((row, col))

    def row_elements(self, row: int) -> Tuple[int, ...]:
        """All element ids of one row."""
        return tuple(self.element(row, c) for c in range(self.widths[row]))

    def _surviving_rows(self) -> List[int]:
        """Rows whose quorums are minimal (not dominated).

        A row-``i`` quorum contains one representative in every lower
        row; if some lower row ``j`` has width 1, the row-``j`` quorum
        (that single element plus matching representatives) is a strict
        subset, dominating row ``i``.  Hence exactly the rows with no
        width-1 row below them survive coterie reduction.
        """
        surviving: List[int] = []
        width_one_below = False
        for row in reversed(range(len(self.widths))):
            if not width_one_below:
                surviving.append(row)
            if self.widths[row] == 1:
                width_one_below = True
        return sorted(surviving)

    def num_quorums_formula(self) -> int:
        """Exact number of minimal quorums, without enumeration: sum over
        surviving rows of the product of the widths below (validated
        against enumeration by a property test)."""
        total = 0
        for row in self._surviving_rows():
            count = 1
            for width in self.widths[row + 1 :]:
                count *= width
            total += count
        return total

    def smallest_quorum_size(self) -> int:
        """``min (w_i + rows below i)`` over surviving rows."""
        d = len(self.widths)
        return min(self.widths[i] + (d - 1 - i) for i in self._surviving_rows())

    def largest_quorum_size(self) -> int:
        """``max (w_i + rows below i)`` over surviving rows."""
        d = len(self.widths)
        return max(self.widths[i] + (d - 1 - i) for i in self._surviving_rows())

    def _generate_quorums(self) -> Iterator[Quorum]:
        if self.num_quorums_formula() > 2_000_000:
            raise ConstructionError(
                f"wall {self.system_name} has {self.num_quorums_formula()}"
                " minimal quorums; use the structural metrics instead"
            )
        d = len(self.widths)
        for row in range(d):
            line = frozenset(self.row_elements(row))
            below = [self.row_elements(r) for r in range(row + 1, d)]
            if not below:
                yield line
                continue
            for pick in itertools.product(*below):
                yield line | frozenset(pick)

    # ------------------------------------------------------------------
    def failure_probability_exact(self, p: float) -> float:
        """Bottom-up suffix recursion.

        For the suffix of rows ``k..d`` let ``b_k`` be the probability a
        quorum exists inside the suffix and ``u_k`` the probability that a
        quorum exists *or* every suffix row has a survivor.  With ``f_k``
        (row full) and ``s_k`` (row has a survivor):

        ``b_k = f_k * u_{k+1} + (1 - f_k) * b_{k+1}``
        ``u_k = s_k * u_{k+1} + (1 - s_k) * b_{k+1}``
        """
        q = 1.0 - p
        b = 0.0  # empty suffix: no quorum
        u = 1.0  # empty suffix: "all rows live" vacuously true
        for width in reversed(self.widths):
            full = q**width
            survivor = 1.0 - p**width
            b, u = full * u + (1.0 - full) * b, survivor * u + (1.0 - survivor) * b
        return 1.0 - b

    def availability_heterogeneous(self, survive: Sequence[float]) -> float:
        """The wall DP evaluated at per-element survival probabilities."""
        if len(survive) != self.n:
            raise ConstructionError(
                f"expected {self.n} survival probabilities, got {len(survive)}"
            )
        b, u = 0.0, 1.0
        for row in reversed(range(len(self.widths))):
            probs = [survive[self.element(row, c)] for c in range(self.widths[row])]
            full = 1.0
            dead = 1.0
            for value in probs:
                full *= value
                dead *= 1.0 - value
            alive = 1.0 - dead
            b, u = full * u + (1.0 - full) * b, alive * u + (1.0 - alive) * b
        return b

    # ------------------------------------------------------------------
    def row_strategy(self, row_weights: Sequence[float]) -> Strategy:
        """Strategy: pick the full row per ``row_weights``, then uniform
        representatives below; expressed exactly over the minimal quorums.

        Used for the CWlog size/load trade-off numbers of §6 (average
        quorum size 4 at n=14, 5.25 at n=29) and in the Table 4 bench.
        """
        if len(row_weights) != len(self.widths):
            raise ConstructionError(
                f"{len(self.widths)} rows but {len(row_weights)} weights"
            )
        quorums: List[Quorum] = []
        weights: List[float] = []
        d = len(self.widths)
        for row, row_weight in enumerate(row_weights):
            if row_weight == 0:
                continue
            below = [self.row_elements(r) for r in range(row + 1, d)]
            combos = list(itertools.product(*below)) if below else [()]
            share = row_weight / len(combos)
            line = frozenset(self.row_elements(row))
            for pick in combos:
                quorums.append(line | frozenset(pick))
                weights.append(share)
        return Strategy(self, quorums, weights)

    def proportional_row_strategy(self) -> Strategy:
        """Width-proportional row selection: the probability of basing the
        quorum on row ``i`` is proportional to that row's width (heavier
        rows are picked more often, balancing the representative load they
        absorb from rows above)."""
        total = sum(self.widths)
        return self.row_strategy([w / total for w in self.widths])

    def tradeoff_strategy(self) -> Strategy:
        """The size/load trade-off strategy of [16] quoted in §6.

        Spreads uniformly over the last ``floor(log2 n)`` rows of the
        wall, favouring the small bottom quorums.  Reverse-engineered from
        the paper's reported numbers, which it reproduces exactly: average
        quorum size 4 and load 55.5% for CWlog(14); 5.25 and 43.7% for
        CWlog(29).
        """
        d = len(self.widths)
        span = max(1, min(d, int(math.log2(self.n))))
        weights = [0.0] * (d - span) + [1.0 / span] * span
        return self.row_strategy(weights)
