"""Hierarchical triangle quorum system (h-triang) — the paper's §5.

``n = t(t+1)/2`` processes form a triangle with ``t`` rows, row ``i``
holding ``i`` elements.  A triangle with ``j > 1`` rows is split (figure 2)
into

* **sub-triangle T1** — the top ``floor(j/2)`` rows,
* **sub-grid G** — the first ``floor(j/2)`` elements of each of the
  remaining rows (a ``(j - floor(j/2)) x floor(j/2)`` grid), and
* **sub-triangle T2** — the rest (a triangle with ``j - floor(j/2)``
  rows),

and a quorum of the triangle is obtained by one of three methods:

1. a quorum of T1 together with a quorum of T2;
2. a quorum of T1 together with a **row-cover** of G;
3. a quorum of T2 together with a **full-line** of G,

where row-covers and full-lines are those of the hierarchical grid (§4.1,
:mod:`repro.systems.hgrid`).  Every quorum has exactly ``t`` elements
(``t ~ sqrt(2n)``), the load is the near-optimal ``sqrt(2)/sqrt(n)``, and
availability tends to 1 as levels are added.

The class also implements §5's *growth operations* ("introducing new
elements"): replacing a sub-triangle of ``m`` lines by one with ``m+1``
lines, a one-element sub-grid by a 1x2 sub-grid, or an ``m x m`` sub-grid
by an ``(m+1) x (m+1)`` one — each provably improving availability, which
the ablation benchmark measures.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.errors import AnalysisError, ConstructionError
from ..core.quorum_system import Quorum, QuorumSystem
from ..core.universe import Universe
from .hgrid import (
    GridSpec,
    build_node,
    cover_inclusion_probabilities,
    flat_spec,
    full_lines_of,
    halving_spec,
    joint_cover_line_pmf_of,
    line_inclusion_probabilities,
    row_covers_of,
)

#: Triangle spec grammar: a single element, or a split into
#: (T1 spec, grid spec, T2 spec).
TriSpec = Union[Tuple[str], Tuple[str, "TriSpec", GridSpec, "TriSpec"]]

SINGLE: TriSpec = ("single",)


def triangle_size(t: int) -> int:
    """Number of elements of a standard ``t``-row triangle."""
    return t * (t + 1) // 2


def rows_for_size(n: int) -> int:
    """Inverse of :func:`triangle_size`; raises for non-triangular ``n``."""
    t = int((math.isqrt(8 * n + 1) - 1) // 2)
    if triangle_size(t) != n:
        raise ConstructionError(f"{n} is not a triangular number")
    return t


def standard_spec(t: int, subgrid: str = "halving") -> TriSpec:
    """Spec of the canonical ``t``-row triangle of §5.

    ``subgrid`` selects how sub-grids are organised internally:
    ``"halving"`` (default) for the §4 hierarchical decomposition ("as
    defined in the h-grid" — this reproduces the paper's Table 2/3
    h-triang values exactly), ``"flat"`` for one-level grids (ablation;
    identical up to t=5, measurably worse at t=7).
    """
    if t < 1:
        raise ConstructionError(f"triangle needs >= 1 rows, got {t}")
    if t == 1:
        return SINGLE
    top = t // 2
    bottom = t - top
    if subgrid == "flat":
        grid = flat_spec(bottom, top)
    elif subgrid == "halving":
        grid = halving_spec(bottom, top)
    else:
        raise ConstructionError(f"unknown subgrid organisation {subgrid!r}")
    return ("split", standard_spec(top, subgrid), grid, standard_spec(bottom, subgrid))


def spec_size(spec: TriSpec) -> int:
    """Number of elements described by a triangle spec."""
    if spec == SINGLE:
        return 1
    _, t1, grid, t2 = spec
    return spec_size(t1) + _grid_spec_size(grid) + spec_size(t2)


def _grid_spec_size(grid: GridSpec) -> int:
    if grid == "leaf":
        return 1
    return sum(_grid_spec_size(child) for row in grid for child in row)


class _TriangleNode:
    """Resolved triangle structure carrying element ids."""

    __slots__ = ("leaf_id", "t1", "grid", "t2", "spec")

    def __init__(self, leaf_id=None, t1=None, grid=None, t2=None, spec=None):
        self.leaf_id = leaf_id
        self.t1 = t1
        self.grid = grid
        self.t2 = t2
        self.spec = spec

    @property
    def is_leaf(self) -> bool:
        return self.leaf_id is not None


@dataclass(frozen=True)
class LoadProfile:
    """Analytic per-element loads induced by a strategy.

    Unlike :class:`repro.core.strategy.Strategy`, this does not
    materialise the (possibly astronomically many) support quorums — only
    the induced loads, which is all Table 4 needs.
    """

    element_loads: np.ndarray

    @property
    def induced_load(self) -> float:
        """Load of the busiest element."""
        return float(self.element_loads.max())

    @property
    def average_quorum_size(self) -> float:
        """Expected quorum cardinality (= total expected accesses)."""
        return float(self.element_loads.sum())

    @property
    def imbalance(self) -> float:
        """Busiest / average element load; 1.0 means perfectly balanced."""
        mean = float(self.element_loads.mean())
        return float(self.element_loads.max()) / mean


class HierarchicalTriangle(QuorumSystem):
    """The h-triang quorum system.

    Parameters
    ----------
    rows:
        Number of triangle rows ``t`` (universe size ``t(t+1)/2``).
    subgrid:
        ``"flat"`` or ``"halving"`` organisation of the sub-grids.

    Standard instances name their elements by triangle coordinates
    ``(row, col)`` (0-based, ``col <= row``); instances built from a
    custom grown spec use plain integer names.
    """

    system_name = "h-triang"

    def __init__(self, rows: int, subgrid: str = "halving") -> None:
        spec = standard_spec(rows, subgrid)
        self.rows = rows
        self.subgrid = subgrid
        names = [(r, c) for r in range(rows) for c in range(r + 1)]
        universe = Universe(names)
        super().__init__(universe)
        coords = [[universe.id_of((r, c)) for c in range(r + 1)] for r in range(rows)]
        self._root = self._build_standard(spec, coords)
        self.system_name = f"h-triang{rows}"

    @classmethod
    def of_size(cls, n: int, subgrid: str = "halving") -> "HierarchicalTriangle":
        """Standard triangle over ``n = t(t+1)/2`` elements."""
        return cls(rows_for_size(n), subgrid=subgrid)

    @classmethod
    def from_spec(cls, spec: TriSpec) -> "HierarchicalTriangle":
        """Build from an explicit (possibly grown) spec.

        Elements are named ``0..n-1`` in structure order (T1, grid, T2).
        """
        system = cls.__new__(cls)
        n = spec_size(spec)
        QuorumSystem.__init__(system, Universe.of_size(n))
        system.rows = None
        system.subgrid = None
        counter = itertools.count()
        system._root = system._build_spec(spec, counter)
        system.system_name = f"h-triang-spec(n={n})"
        return system

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_standard(self, spec: TriSpec, coords: List[List[int]]) -> _TriangleNode:
        """Resolve a standard spec against triangle coordinates."""
        if spec == SINGLE:
            return _TriangleNode(leaf_id=coords[0][0], spec=spec)
        _, t1_spec, grid_spec, t2_spec = spec
        t = len(coords)
        top = t // 2
        t1 = self._build_standard(t1_spec, coords[:top])
        grid_ids = iter(
            coords[r][c] for r in range(top, t) for c in range(top)
        )
        grid = build_node(grid_spec, grid_ids)
        t2_coords = [coords[top + i][top : top + i + 1] for i in range(t - top)]
        t2 = self._build_standard(t2_spec, t2_coords)
        return _TriangleNode(t1=t1, grid=grid, t2=t2, spec=spec)

    def _build_spec(self, spec: TriSpec, counter) -> _TriangleNode:
        """Resolve a custom spec with sequential ids."""
        if spec == SINGLE:
            return _TriangleNode(leaf_id=next(counter), spec=spec)
        _, t1_spec, grid_spec, t2_spec = spec
        t1 = self._build_spec(t1_spec, counter)
        grid = build_node(grid_spec, counter)
        t2 = self._build_spec(t2_spec, counter)
        return _TriangleNode(t1=t1, grid=grid, t2=t2, spec=spec)

    # ------------------------------------------------------------------
    # Quorums
    # ------------------------------------------------------------------
    def _quorums_of(self, node: _TriangleNode) -> List[Quorum]:
        if node.is_leaf:
            return [frozenset({node.leaf_id})]
        q1 = self._quorums_of(node.t1)
        q2 = self._quorums_of(node.t2)
        covers = row_covers_of(node.grid)
        lines = full_lines_of(node.grid)
        quorums: List[Quorum] = []
        for a, b in itertools.product(q1, q2):  # method 1
            quorums.append(a | b)
        for a, b in itertools.product(q1, covers):  # method 2
            quorums.append(a | b)
        for a, b in itertools.product(q2, lines):  # method 3
            quorums.append(a | b)
        return quorums

    def _generate_quorums(self) -> Iterator[Quorum]:
        if self.rows is not None and self.rows > 9:
            raise ConstructionError(
                f"enumerating h-triang quorums for t={self.rows} is"
                " intractable; every metric has a structural formula"
            )
        return iter(self._quorums_of(self._root))

    def _read_quorums_of(self, node: _TriangleNode) -> List[Quorum]:
        if node.is_leaf:
            return [frozenset({node.leaf_id})]
        r1 = self._read_quorums_of(node.t1)
        r2 = self._read_quorums_of(node.t2)
        covers = row_covers_of(node.grid)
        lines = full_lines_of(node.grid)
        reads: List[Quorum] = []
        for a, b in itertools.product(r1, r2):
            reads.append(a | b)
        for a, b in itertools.product(r1, covers):
            reads.append(a | b)
        for a, b in itertools.product(r2, lines):
            reads.append(a | b)
        return reads

    def read_quorums(self) -> List[Quorum]:
        """Read quorums for split read/write serving, built recursively.

        Three families mirror the write methods: ``r(T1) | r(T2)``,
        ``r(T1) | cover(G)`` and ``r(T2) | line(G)``.  Each intersects
        every write quorum: the ``r(T1)`` / ``r(T2)`` halves meet the
        sub-triangle quorum of methods 1-3 by induction, and any grid
        cover meets any grid line (per row, the cover holds a recursive
        cover of one child and the line a recursive line of that same
        child).  All read quorums have size ``t`` — h-triang is
        self-dual, so reads cannot be smaller than writes and the split
        buys balance, not capacity (unlike the grid families).
        """
        if self.rows is not None and self.rows > 9:
            raise ConstructionError(
                f"enumerating h-triang read quorums for t={self.rows} is"
                " intractable; every metric has a structural formula"
            )
        return self._read_quorums_of(self._root)

    def smallest_quorum_size(self) -> int:
        if self.rows is not None:
            return self.rows
        return super().smallest_quorum_size()

    def largest_quorum_size(self) -> int:
        if self.rows is not None:
            return self.rows
        return super().largest_quorum_size()

    def has_uniform_quorum_size(self) -> bool:
        if self.rows is not None:
            return True
        return super().has_uniform_quorum_size()

    # ------------------------------------------------------------------
    # Exact availability
    # ------------------------------------------------------------------
    def _availability_of(self, node: _TriangleNode, q) -> float:
        if node.is_leaf:
            return q[node.leaf_id] if not isinstance(q, float) else q
        pa = self._availability_of(node.t1, q)
        pb = self._availability_of(node.t2, q)
        pmf = joint_cover_line_pmf_of(node.grid, q)
        g00 = pmf.get((0, 0), 0)
        g01 = pmf.get((0, 1), 0)
        g10 = pmf.get((1, 0), 0)
        g11 = pmf.get((1, 1), 0)
        # Condition on the sub-grid's (row-cover, full-line) feasibility:
        #   both: need a quorum in T1 or T2; cover only: need T1;
        #   line only: need T2; neither: need both sub-triangles.
        return (
            g11 * (pa + pb - pa * pb)
            + g10 * pa
            + g01 * pb
            + g00 * pa * pb
        )

    def failure_probability_exact(self, p: float) -> float:
        """Exact structural recursion over (T1, G, T2)."""
        return 1.0 - self._availability_of(self._root, 1.0 - p)

    def availability_heterogeneous(self, survive) -> float:
        """The (T1, G, T2) recursion at per-element survival
        probabilities."""
        if len(survive) != self.n:
            raise ConstructionError(
                f"expected {self.n} survival probabilities, got {len(survive)}"
            )
        return self._availability_of(self._root, dict(enumerate(survive)))

    # ------------------------------------------------------------------
    # Load (§5 strategy)
    # ------------------------------------------------------------------
    def method_weights(self, node: Optional[_TriangleNode] = None) -> Tuple[float, float, float]:
        """The §5 probabilities ``(w1, w2, w3)`` for one triangle level.

        Solves the linear system of §5 with ``c_i`` the component sizes,
        ``q_1, q_2`` the sub-triangle quorum sizes and ``q_3l, q_3r`` the
        full-line / row-cover sizes of the sub-grid.
        """
        node = node or self._root
        if node.is_leaf:
            raise ConstructionError("single-element triangle has no methods")
        c1 = self._node_size(node.t1)
        c2 = self._node_size(node.t2)
        c3 = self._node_size_grid(node.grid)
        q1 = self._quorum_size_of(node.t1)
        q2 = self._quorum_size_of(node.t2)
        q3l = self._line_size(node.grid)
        q3r = self._cover_size(node.grid)
        # Unknowns: w1, w2, w3, k.
        matrix = np.array(
            [
                [1.0, 1.0, 1.0, 0.0],
                [1.0, 1.0, 0.0, -c1 / q1],
                [1.0, 0.0, 1.0, -c2 / q2],
                [0.0, q3r / c3, q3l / c3, -1.0],
            ]
        )
        rhs = np.array([1.0, 0.0, 0.0, 0.0])
        try:
            w1, w2, w3, _k = np.linalg.solve(matrix, rhs)
        except np.linalg.LinAlgError as exc:
            raise AnalysisError(f"§5 load system is singular: {exc}") from None
        weights = np.array([w1, w2, w3])
        if (weights < -1e-9).any():
            raise AnalysisError(
                f"§5 load system gave negative weights {weights};"
                " structure too asymmetric for the balanced strategy"
            )
        weights = np.clip(weights, 0.0, None)
        return tuple(float(w) for w in weights / weights.sum())

    def _node_size(self, node: _TriangleNode) -> int:
        if node.is_leaf:
            return 1
        return (
            self._node_size(node.t1)
            + self._node_size_grid(node.grid)
            + self._node_size(node.t2)
        )

    def _node_size_grid(self, grid) -> int:
        if grid.is_leaf:
            return 1
        return sum(self._node_size_grid(child) for row in grid.rows for child in row)

    def _quorum_size_of(self, node: _TriangleNode) -> int:
        """Quorum size (uniform for standard triangles, min for grown)."""
        if node.is_leaf:
            return 1
        q1 = self._quorum_size_of(node.t1)
        q2 = self._quorum_size_of(node.t2)
        return min(
            q1 + q2,
            q1 + self._cover_size(node.grid),
            q2 + self._line_size(node.grid),
        )

    def _line_size(self, grid) -> int:
        if grid.is_leaf:
            return 1
        return min(
            sum(self._line_size(child) for child in row) for row in grid.rows
        )

    def _cover_size(self, grid) -> int:
        if grid.is_leaf:
            return 1
        return sum(
            min(self._cover_size(child) for child in row) for row in grid.rows
        )

    def balanced_load_profile(self) -> LoadProfile:
        """Per-element loads under the §5 strategy.

        For standard triangles this is provably uniform — every element
        carries ``t/n = sqrt(2)/sqrt(n)`` — which the tests verify both
        against this analytic profile and against an explicit strategy on
        small instances.
        """
        loads: Dict[int, float] = {}
        self._accumulate_loads(self._root, 1.0, loads)
        vector = np.zeros(self.n)
        for element, load in loads.items():
            vector[element] = load
        return LoadProfile(element_loads=vector)

    def _accumulate_loads(self, node: _TriangleNode, scale: float, out: Dict[int, float]) -> None:
        if node.is_leaf:
            out[node.leaf_id] = out.get(node.leaf_id, 0.0) + scale
            return
        w1, w2, w3 = self.method_weights(node)
        self._accumulate_loads(node.t1, scale * (w1 + w2), out)
        self._accumulate_loads(node.t2, scale * (w1 + w3), out)
        cover_inclusion_probabilities(node.grid, out, scale * w2)
        line_inclusion_probabilities(node.grid, out, scale * w3)

    def balanced_strategy(self):
        """Explicit §5 strategy (small triangles); see module helper."""
        return balanced_strategy(self)

    def load_exact(self) -> Optional[float]:
        """Standard triangles: ``t / n`` (the §5 strategy is uniform and
        matches the Prop. 3.3 bound ``c(S)/n``, hence optimal)."""
        if self.rows is None:
            return None
        return self.rows / self.n

    # ------------------------------------------------------------------
    # §5 growth operations
    # ------------------------------------------------------------------
    def grown_spec(self, where: str) -> TriSpec:
        """Spec after applying one §5 growth operation at the root split.

        ``where`` is one of:

        * ``"t1"`` — replace sub-triangle 1 (``m`` lines) by a standard
          triangle with ``m+1`` lines;
        * ``"t2"`` — same for sub-triangle 2;
        * ``"grid"`` — replace the sub-grid: a single element becomes a
          1x2 grid, an ``r x c`` grid becomes ``(r+1) x (c+1)``.
        """
        root_spec = self._spec_of(self._root)
        if root_spec == SINGLE:
            # Growing a single element: 1 line -> 2 lines (3 elements).
            return standard_spec(2)
        _, t1_spec, grid_spec, t2_spec = root_spec
        grown_subgrid = self.subgrid or "flat"
        if where == "t1":
            t1_spec = standard_spec(self._spec_rows(t1_spec) + 1, grown_subgrid)
        elif where == "t2":
            t2_spec = standard_spec(self._spec_rows(t2_spec) + 1, grown_subgrid)
        elif where == "grid":
            rows, cols = self._grid_dims(grid_spec)
            if rows == 1 and cols == 1:
                grid_spec = flat_spec(1, 2)
            else:
                grid_spec = flat_spec(rows + 1, cols + 1)
        else:
            raise ConstructionError(f"unknown growth site {where!r}")
        return ("split", t1_spec, grid_spec, t2_spec)

    def grown(self, where: str) -> "HierarchicalTriangle":
        """A new system with one §5 growth operation applied."""
        return HierarchicalTriangle.from_spec(self.grown_spec(where))

    def _spec_of(self, node: _TriangleNode) -> TriSpec:
        return node.spec

    def _spec_rows(self, spec: TriSpec) -> int:
        """Rows of a *standard* triangle spec (by element count)."""
        return rows_for_size(spec_size(spec))

    def _grid_dims(self, grid_spec: GridSpec) -> Tuple[int, int]:
        """(rows, cols) of a flat grid spec."""
        if grid_spec == "leaf":
            return 1, 1
        rows = len(grid_spec)
        cols = max(len(row) for row in grid_spec)
        if any(child != "leaf" for row in grid_spec for child in row):
            raise ConstructionError(
                "growth of hierarchical sub-grids is not defined by §5;"
                " use subgrid='flat'"
            )
        return rows, cols


def _merge_product(
    left: Dict[frozenset, float], right: Dict[frozenset, float], weight: float
) -> Dict[frozenset, float]:
    """Weighted product distribution of unions of two independent picks."""
    out: Dict[frozenset, float] = {}
    for a, pa in left.items():
        for b, pb in right.items():
            key = a | b
            out[key] = out.get(key, 0.0) + weight * pa * pb
    return out


def _accumulate(target: Dict[frozenset, float], source: Dict[frozenset, float]) -> None:
    for key, prob in source.items():
        target[key] = target.get(key, 0.0) + prob


def _quorum_distribution(system: "HierarchicalTriangle", node: _TriangleNode) -> Dict[frozenset, float]:
    """Explicit §5 strategy distribution over the quorums of a node."""
    from .hgrid import cover_distribution, line_distribution

    if node.is_leaf:
        return {frozenset({node.leaf_id}): 1.0}
    w1, w2, w3 = system.method_weights(node)
    d1 = _quorum_distribution(system, node.t1)
    d2 = _quorum_distribution(system, node.t2)
    covers = cover_distribution(node.grid)
    lines = line_distribution(node.grid)
    out: Dict[frozenset, float] = {}
    _accumulate(out, _merge_product(d1, d2, w1))
    _accumulate(out, _merge_product(d1, covers, w2))
    _accumulate(out, _merge_product(d2, lines, w3))
    return out


def balanced_strategy(system: "HierarchicalTriangle"):
    """The §5 strategy as an explicit :class:`repro.core.strategy.Strategy`.

    Materialises the full quorum distribution, so it is limited to small
    triangles (the quorum count grows super-exponentially in ``t``); use
    :meth:`HierarchicalTriangle.balanced_load_profile` for the analytic
    loads at any size.
    """
    from ..core.errors import ConstructionError
    from ..core.strategy import Strategy

    if system.rows is not None and system.rows > 7:
        raise ConstructionError(
            f"explicit §5 strategy for t={system.rows} is intractable;"
            " use balanced_load_profile() instead"
        )
    distribution = _quorum_distribution(system, system._root)
    return Strategy.from_mapping(system, distribution)
