"""Tree quorum protocol of Agrawal and El Abbadi [1].

All ``n`` elements are arranged in a (usually binary) in-tree: *every*
node of the tree is an element (unlike HQS, where only leaves are).  A
quorum of a subtree rooted at ``r`` is either

* ``{r}`` together with a quorum of **one** child subtree, or
* the union of quorums of **all** child subtrees (used when ``r`` failed).

For a leaf the only quorum is the leaf itself.  Quorum sizes therefore
range from a root-to-leaf path (``O(log n)``) up to a leaf-majority
(``O(n)`` in the worst case), which is the "different sizes" property the
paper's related-work section mentions.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from ..core.errors import ConstructionError
from ..core.quorum_system import Quorum, QuorumSystem
from ..core.universe import Universe


class TreeQuorumSystem(QuorumSystem):
    """Agrawal–El Abbadi tree quorums over a complete d-ary tree.

    Parameters
    ----------
    height:
        Height of the tree; a tree of height 0 is a single element.
    arity:
        Number of children per internal node (default 2, the classic
        construction).
    """

    system_name = "tree"

    def __init__(self, height: int, arity: int = 2) -> None:
        if height < 0:
            raise ConstructionError(f"height must be >= 0, got {height}")
        if arity < 2:
            raise ConstructionError(f"arity must be >= 2, got {arity}")
        self.height = height
        self.arity = arity
        count = (arity ** (height + 1) - 1) // (arity - 1)
        super().__init__(Universe.of_size(count))
        self.system_name = f"tree(h={height},d={arity})"

    # ------------------------------------------------------------------
    # Tree addressing: node 0 is the root; children of node v are
    # v*arity + 1 ... v*arity + arity (heap layout).
    # ------------------------------------------------------------------
    def children(self, node: int) -> List[int]:
        """Ids of the children of ``node`` (empty for leaves)."""
        first = node * self.arity + 1
        if first >= self.n:
            return []
        return list(range(first, first + self.arity))

    def _quorums_of(self, node: int) -> List[Quorum]:
        kids = self.children(node)
        if not kids:
            return [frozenset({node})]
        child_quorums = [self._quorums_of(kid) for kid in kids]
        result: List[Quorum] = []
        for quorums in child_quorums:
            for quorum in quorums:
                result.append(quorum | {node})
        # Root replaced: quorums of all children combined.
        import itertools

        for pick in itertools.product(*child_quorums):
            combined: frozenset = frozenset()
            for part in pick:
                combined |= part
            result.append(combined)
        return result

    def _generate_quorums(self) -> Iterator[Quorum]:
        return iter(self._quorums_of(0))

    # ------------------------------------------------------------------
    def _availability_of(self, node: int, q: float) -> float:
        kids = self.children(node)
        if not kids:
            return q
        child_avail = [self._availability_of(kid, q) for kid in kids]
        any_child = 1.0
        all_children = 1.0
        for a in child_avail:
            any_child *= 1.0 - a
            all_children *= a
        any_child = 1.0 - any_child
        # Node alive: need any child quorum (or the node is a leaf-path
        # endpoint already handled above).  Node dead: need all children.
        return q * any_child + (1.0 - q) * all_children

    def failure_probability_exact(self, p: float) -> float:
        """Exact recursion over the tree (subtrees are independent).

        Note the node itself participates in quorums, unlike HQS.
        """
        return 1.0 - self._availability_of(0, 1.0 - p)

    def availability_heterogeneous(self, survive) -> float:
        """Tree recursion at per-node survival probabilities."""
        if len(survive) != self.n:
            raise ConstructionError(
                f"expected {self.n} survival probabilities, got {len(survive)}"
            )

        def recurse(node: int) -> float:
            q = float(survive[node])
            kids = self.children(node)
            if not kids:
                return q
            child_avail = [recurse(kid) for kid in kids]
            none_child = 1.0
            all_children = 1.0
            for a in child_avail:
                none_child *= 1.0 - a
                all_children *= a
            return q * (1.0 - none_child) + (1.0 - q) * all_children

        return recurse(0)
