"""Voting-based quorum systems: majority and weighted voting (Gifford).

The earliest quorum systems define quorums through votes [Gifford 1979]:
a quorum is any set whose combined votes exceed half of the total.  With
one vote per element this is the *majority* system, which has the best
possible failure probability for ``p < 1/2`` (Prop. 3.2) but linear
quorum size ``(n+1)/2`` and load ``~ 1/2`` — the baseline of Tables 2-5.
"""

from __future__ import annotations

import itertools
import math
from typing import Iterator, Optional, Sequence

from ..core.errors import ConstructionError
from ..core.quorum_system import Quorum, QuorumSystem
from ..core.universe import Universe


class WeightedVotingQuorumSystem(QuorumSystem):
    """Gifford-style weighted voting.

    A set is a quorum when its votes are strictly more than half the total
    (ties broken upward).  Minimal quorums are enumerated directly, so the
    class targets the small/medium universes of the paper.

    Parameters
    ----------
    universe:
        Universe of elements.
    votes:
        Non-negative integer vote count per element.
    """

    system_name = "weighted-voting"

    def __init__(self, universe: Universe, votes: Sequence[int]) -> None:
        super().__init__(universe)
        if len(votes) != universe.size:
            raise ConstructionError(
                f"{universe.size} elements but {len(votes)} vote counts"
            )
        if any(v < 0 for v in votes):
            raise ConstructionError("votes must be non-negative")
        if sum(votes) <= 0:
            raise ConstructionError("total votes must be positive")
        self.votes = tuple(int(v) for v in votes)
        self.threshold = sum(self.votes) // 2 + 1

    def _generate_quorums(self) -> Iterator[Quorum]:
        elements = sorted(
            (e for e in self.universe.ids if self.votes[e] > 0),
            key=lambda e: -self.votes[e],
        )

        def grow(start: int, chosen: tuple, total: int) -> Iterator[Quorum]:
            if total >= self.threshold:
                yield frozenset(chosen)
                return
            for k in range(start, len(elements)):
                element = elements[k]
                yield from grow(k + 1, chosen + (element,), total + self.votes[element])

        yield from grow(0, (), 0)


class MajorityQuorumSystem(WeightedVotingQuorumSystem):
    """One element, one vote: quorums are the ``floor(n/2)+1``-subsets.

    For odd ``n`` the system is self-dual, hence ``F_{1/2} = 1/2`` exactly
    (visible in Tables 2 and 3 of the paper).
    """

    system_name = "majority"

    def __init__(self, universe: Universe) -> None:
        super().__init__(universe, [1] * universe.size)
        self.quorum_size = universe.size // 2 + 1

    @classmethod
    def of_size(cls, n: int) -> "MajorityQuorumSystem":
        """Majority over an anonymous universe of ``n`` elements."""
        return cls(Universe.of_size(n))

    def _generate_quorums(self) -> Iterator[Quorum]:
        for combo in itertools.combinations(self.universe.ids, self.quorum_size):
            yield frozenset(combo)

    def minimal_quorums(self):
        """Refuse accidental enumeration blow-ups.

        ``C(n, n//2+1)`` explodes quickly; all metrics of the majority
        system have closed forms, so enumeration is only allowed where it
        is actually feasible.
        """
        if self.n > 30:
            raise ConstructionError(
                f"refusing to enumerate C({self.n}, {self.quorum_size}) majority"
                " quorums; use the closed-form metrics instead"
            )
        return super().minimal_quorums()

    def failure_probability_exact(self, p: float) -> float:
        """Binomial tail: the system fails iff at least ``n - q + 1``
        elements fail, i.e. fewer than ``q = floor(n/2)+1`` survive.

        Computed term-by-term for small ``n`` (bit-exact against the
        exhaustive engine) and through the scipy survival function for
        large ``n``, where ``math.comb`` overflows floats.
        """
        n = self.n
        min_failures = n - self.quorum_size + 1
        q = 1.0 - p
        if n <= 500:
            return sum(
                math.comb(n, k) * (p**k) * (q ** (n - k))
                for k in range(min_failures, n + 1)
            )
        from scipy.stats import binom

        return float(binom.sf(min_failures - 1, n, p))

    def availability_heterogeneous(self, survive) -> float:
        """Poisson-binomial tail: DP over the survivor-count distribution."""
        if len(survive) != self.n:
            raise ConstructionError(
                f"expected {self.n} survival probabilities, got {len(survive)}"
            )
        import numpy as np

        distribution = np.zeros(self.n + 1)
        distribution[0] = 1.0
        for q in survive:
            distribution[1:] = distribution[1:] * (1 - q) + distribution[:-1] * q
            distribution[0] *= 1 - q
        return float(distribution[self.quorum_size :].sum())

    def load_exact(self) -> float:
        """By symmetry the uniform strategy is optimal: ``L = (n//2+1)/n``."""
        return self.quorum_size / self.n

    def smallest_quorum_size(self) -> int:
        return self.quorum_size

    def largest_quorum_size(self) -> int:
        return self.quorum_size

    def has_uniform_quorum_size(self) -> bool:
        return True
