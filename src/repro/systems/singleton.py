"""Singleton quorum system.

The degenerate system whose only quorum is one distinguished element.
Proposition 3.2: for element crash probability ``p > 1/2`` the singleton
is the coterie with the best possible failure probability — which is why
the paper restricts its numeric study to ``p <= 1/2``.
"""

from __future__ import annotations

from typing import Iterator

from ..core.quorum_system import Quorum, QuorumSystem
from ..core.universe import Universe
from ..core.errors import ConstructionError


class SingletonQuorumSystem(QuorumSystem):
    """All decisions go through one distinguished element.

    Parameters
    ----------
    universe:
        Universe the system lives in (extra elements simply carry no load).
    center:
        Id of the distinguished element, default 0.
    """

    system_name = "singleton"

    def __init__(self, universe: Universe, center: int = 0) -> None:
        super().__init__(universe)
        if not 0 <= center < universe.size:
            raise ConstructionError(
                f"center {center} outside universe of size {universe.size}"
            )
        self.center = center

    @classmethod
    def of_size(cls, n: int, center: int = 0) -> "SingletonQuorumSystem":
        """Singleton over an anonymous universe of ``n`` elements."""
        return cls(Universe.of_size(n), center=center)

    def _generate_quorums(self) -> Iterator[Quorum]:
        yield frozenset({self.center})

    def failure_probability_exact(self, p: float) -> float:
        """Fails exactly when the centre fails: ``F_p = p``."""
        return p

    def load_exact(self) -> float:
        """The centre handles every request: load 1."""
        return 1.0
