"""The Paths quorum system of Naor and Wool [14].

Naor–Wool build quorums from crossing paths on a planar grid and its
dual; the universe has ``2d^2 + 2d + 1`` elements and quorums are unions
of a left–right and a top–bottom crossing, giving smallest quorums of
size ``~ sqrt(2n) = 2d + 1``, load between ``sqrt(2)/sqrt(n)`` and
``2*sqrt(2)/sqrt(n)`` and exponentially vanishing failure probability.

We realise this as a *site* system on the diagonal (diamond) lattice —
the ``2d^2+2d+1`` lattice points with ``|x| + |y| <= d``, which is the
union of a ``(d+1) x (d+1)`` primal grid and its ``d x d`` dual
interleaved at 45 degrees.  A quorum is the union of

* a **NW-to-SE crossing**: a path of elements from the side
  ``y - x = d`` to the side ``x - y = d``, and
* a **NE-to-SW crossing**: a path from ``x + y = d`` to ``x + y = -d``,

with axis-parallel steps (variant ``"axis"``); in variant ``"mixed"`` the
NE–SW crossing may additionally take diagonal steps (the site analogue of
the primal/dual edge identification of [14]).  Both variants are proper
quorum systems: two crossings in transversal directions always share a
lattice point because unit axis/diagonal segments can only meet at
lattice points, and the single diagonal path along ``y = 0`` touches all
four sides, so ``c(S) = 2d + 1`` exactly as in [14].

Calibration note: the exact numeric construction used for Tables 2–3 of
the ICDCS paper could not be recovered (the tables' values match no
axis/diagonal adjacency combination on this lattice); EXPERIMENTS.md
documents the deviation.  The qualitative shape — failure probability
decaying with ``d``, ``F_{1/2} > 1/2``, min quorum ``sqrt(2n)`` — is
preserved.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

from ..analysis.lattice import ConnectivityProblem, probability_all_satisfied
from ..core.errors import AnalysisError, ConstructionError
from ..core.quorum_system import Quorum, QuorumSystem
from ..core.universe import Universe

_AXIS_STEPS = ((1, 0), (-1, 0), (0, 1), (0, -1))
_DIAG_STEPS = ((1, 1), (1, -1), (-1, 1), (-1, -1))


def diamond_vertices(d: int) -> List[Tuple[int, int]]:
    """The ``2d^2+2d+1`` lattice points with ``|x|+|y| <= d``, in
    column-major order (good frontier order for the exact DP)."""
    return [
        (x, y)
        for x in range(-d, d + 1)
        for y in range(-(d - abs(x)), d - abs(x) + 1)
    ]


class PathsQuorumSystem(QuorumSystem):
    """Paths(d) crossing-path quorums on the diamond lattice.

    Parameters
    ----------
    d:
        Lattice radius; the universe has ``2d^2 + 2d + 1`` elements.
    variant:
        ``"axis"`` (both crossings axis-connected, default) or
        ``"mixed"`` (the NE-SW crossing may also use diagonal steps).
    """

    system_name = "paths"

    def __init__(self, d: int, variant: str = "axis") -> None:
        if d < 1:
            raise ConstructionError(f"need d >= 1, got {d}")
        if variant not in ("axis", "mixed"):
            raise ConstructionError(f"unknown variant {variant!r}")
        self.d = d
        self.variant = variant
        vertices = diamond_vertices(d)
        super().__init__(Universe(vertices))
        self.system_name = f"paths{d}-{variant}"
        self._vertices = vertices
        self._vertex_set = set(vertices)

    @classmethod
    def of_size(cls, n: int, variant: str = "axis") -> "PathsQuorumSystem":
        """Paths over ``n = 2d^2+2d+1`` elements."""
        d = 1
        while 2 * d * d + 2 * d + 1 < n:
            d += 1
        if 2 * d * d + 2 * d + 1 != n:
            raise ConstructionError(f"{n} is not of the form 2d^2+2d+1")
        return cls(d, variant=variant)

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    def _steps(self, crossing: str) -> Tuple[Tuple[int, int], ...]:
        if crossing == "nwse" or self.variant == "axis":
            return _AXIS_STEPS
        return _AXIS_STEPS + _DIAG_STEPS

    def neighbours(self, vertex: Tuple[int, int], crossing: str) -> List[Tuple[int, int]]:
        """Adjacent lattice sites for the given crossing direction."""
        x, y = vertex
        return [
            (x + dx, y + dy)
            for dx, dy in self._steps(crossing)
            if (x + dx, y + dy) in self._vertex_set
        ]

    def side(self, which: str) -> FrozenSet[Tuple[int, int]]:
        """Vertices of one diagonal side: ``nw``, ``se``, ``ne``, ``sw``."""
        d = self.d
        if which == "nw":
            return frozenset(v for v in self._vertices if v[1] - v[0] == d)
        if which == "se":
            return frozenset(v for v in self._vertices if v[0] - v[1] == d)
        if which == "ne":
            return frozenset(v for v in self._vertices if v[0] + v[1] == d)
        if which == "sw":
            return frozenset(v for v in self._vertices if v[0] + v[1] == -d)
        raise ConstructionError(f"unknown side {which!r}")

    # ------------------------------------------------------------------
    # Quorums
    # ------------------------------------------------------------------
    def _simple_paths(self, sources, targets, crossing: str) -> Iterator[FrozenSet]:
        """All simple source->target paths (as vertex sets).

        Exponential; guarded by :meth:`_generate_quorums` to small ``d``.
        """

        def extend(path: Tuple, visited: frozenset) -> Iterator[FrozenSet]:
            head = path[-1]
            if head in targets:
                yield frozenset(path)
                return
            for nxt in self.neighbours(head, crossing):
                if nxt not in visited:
                    yield from extend(path + (nxt,), visited | {nxt})

        for source in sources:
            yield from extend((source,), frozenset({source}))

    def _generate_quorums(self) -> Iterator[Quorum]:
        if self.d > 2:
            raise ConstructionError(
                f"enumerating Paths quorums for d={self.d} is intractable;"
                " availability has an exact DP and sizes have formulas"
            )
        nwse = list(self._simple_paths(self.side("nw"), self.side("se"), "nwse"))
        nesw = list(self._simple_paths(self.side("ne"), self.side("sw"), "nesw"))
        ids = self.universe.id_of
        for first, second in itertools.product(nwse, nesw):
            yield frozenset(ids(v) for v in first | second)

    def smallest_quorum_size(self) -> int:
        """``2d + 1``: the main diagonal path crosses in both directions."""
        return 2 * self.d + 1

    # ------------------------------------------------------------------
    # Exact availability
    # ------------------------------------------------------------------
    def connectivity_problem(self) -> ConnectivityProblem:
        """The crossing events as a lattice-reliability problem."""
        if self.variant != "axis":
            raise AnalysisError(
                "the exact DP supports one adjacency; use variant='axis'"
                " (mixed-variant availability: exhaustive for d=2, Monte"
                " Carlo beyond)"
            )
        adjacency = {
            v: frozenset(self.neighbours(v, "nwse")) for v in self._vertices
        }
        return ConnectivityProblem(
            vertices=tuple(self._vertices),
            adjacency=adjacency,
            groups={
                "nw": self.side("nw"),
                "se": self.side("se"),
                "ne": self.side("ne"),
                "sw": self.side("sw"),
            },
            requirements=(
                frozenset({"nw", "se"}),
                frozenset({"ne", "sw"}),
            ),
        )

    def failure_probability_exact(self, p: float) -> Optional[float]:
        """Exact frontier DP over the diamond (axis variant only)."""
        if self.variant != "axis":
            return None
        problem = self.connectivity_problem()
        survive = {v: 1.0 - p for v in self._vertices}
        return 1.0 - probability_all_satisfied(problem, survive)
