"""Hierarchical T-grid quorum system — the paper's §4 contribution.

The h-T-grid removes unnecessary elements from the hierarchical grid's
read-write quorums: a quorum is the union of a hierarchical **full-line**
``L`` and a **partial row-cover with respect to L`` — a hierarchical
row-cover from which every level-0 object lying *above* the topmost
element of ``L`` is removed (Definitions 4.1/4.2).

Orientation convention: we compare elements by their *rowpath* (the tuple
of row indices from the top logical level down, Definition 4.1) with row
0 at the top; element ``a`` is **above** ``b`` when ``rowpath(a) <
rowpath(b)`` lexicographically.  The topmost element of a full-line is
its minimal rowpath, and the partial cover keeps exactly the cover
elements with ``rowpath >= min_rowpath(L)``.  (The paper words the order
with the opposite sign; only the relative order matters and this choice
makes "above" agree with the visual layout of figure 1.)

Consequences proved in the paper and verified by this package's tests:

* any two h-T-grid quorums intersect (Lemma 4.1);
* every h-T-grid quorum still intersects every full (read) row-cover, so
  replicated-data reads can keep using h-grid read quorums (§4.2 remark);
* quorum sizes drop from the constant ``2*sqrt(n) - 1`` of the h-grid to
  the range ``sqrt(n) .. 2*sqrt(n) - 1``;
* failure probability improves by ~7.5-10% on square grids and by ~3x on
  the slightly rectangular 6-lines x 4-columns grid (Table 1).
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..core.errors import AnalysisError, ConstructionError
from ..core.quorum_system import Quorum, QuorumSystem
from ..core.strategy import Strategy
from .hgrid import GridSpec, HierarchicalGrid


class HierarchicalTGrid(QuorumSystem):
    """h-T-grid over the same hierarchy specs as :class:`HierarchicalGrid`."""

    system_name = "h-T-grid"

    def __init__(self, spec: GridSpec, name: Optional[str] = None) -> None:
        self._hgrid = HierarchicalGrid(spec)
        super().__init__(self._hgrid.universe)
        self.system_name = name or f"h-T-{self._hgrid.system_name}"

    @classmethod
    def halving(cls, rows: int, cols: int) -> "HierarchicalTGrid":
        """h-T-grid over the paper's top-down halving hierarchy."""
        from .hgrid import halving_spec

        return cls(halving_spec(rows, cols), name=f"h-T-grid{rows}x{cols}")

    @classmethod
    def pairing(cls, rows: int, cols: int) -> "HierarchicalTGrid":
        """h-T-grid over the bottom-up pairing hierarchy (ablation)."""
        from .hgrid import pairing_spec

        return cls(pairing_spec(rows, cols), name=f"h-T-grid-pairing{rows}x{cols}")

    # ------------------------------------------------------------------
    @property
    def hgrid(self) -> HierarchicalGrid:
        """The underlying hierarchical grid (shares the universe)."""
        return self._hgrid

    def topmost_key(self, elements: Quorum) -> Tuple[int, ...]:
        """Rowpath of the topmost (visually highest) element of a set."""
        return min(self._hgrid.rowpath(e) for e in elements)

    def partial_cover(self, cover: Quorum, line: Quorum) -> Quorum:
        """Partial row-cover of ``cover`` with respect to ``line``:
        drop every element strictly above the line's topmost element."""
        cutoff = self.topmost_key(line)
        return frozenset(
            e for e in cover if self._hgrid.rowpath(e) >= cutoff
        )

    def global_cols(self) -> int:
        """Number of global columns of the layout."""
        return 1 + max(self._hgrid.coordinates(e)[1] for e in self.universe.ids)

    def smallest_quorum_size(self) -> int:
        """``C`` (the global column count, ~sqrt(n)).

        Every hierarchical full-line has exactly one element per global
        column, and the line picking the lowest row everywhere is the
        global bottom row, whose partial cover is empty — so the bottom
        line alone is a quorum of size ``C``.  Validated against full
        enumeration on small instances in the tests.
        """
        return self.global_cols()

    def largest_quorum_size(self) -> int:
        """``C + R - 1`` (~2 sqrt(n) - 1): a top-row line plus one cover
        element in each row below it."""
        return self.global_cols() + self.global_rows() - 1

    def read_quorums(self) -> List[Quorum]:
        """Minimal read quorums: the underlying grid's full row-covers.

        §4.2's remark carries over to serving: every h-T-grid quorum
        contains a *full* hierarchical line, and every full row-cover
        intersects every full line (per root row, the cover holds a
        recursive cover of one child and the line a recursive line of
        that same child).  So covers of size ``R`` are safe read quorums
        even though the write quorums only carry *partial* covers.
        """
        return self._hgrid.row_covers()

    def _generate_quorums(self) -> Iterator[Quorum]:
        covers = self._hgrid.row_covers()
        lines = self._hgrid.full_lines()
        if len(covers) * len(lines) > 2_000_000:
            raise ConstructionError(
                f"{self.system_name} has ~{len(covers) * len(lines)} quorum"
                " candidates; use the structural metrics instead"
            )
        for line in lines:
            cutoff = self.topmost_key(line)
            for cover in covers:
                partial = frozenset(
                    e for e in cover if self._hgrid.rowpath(e) >= cutoff
                )
                yield line | partial

    # ------------------------------------------------------------------
    # Strategies of §4.3
    # ------------------------------------------------------------------
    def _global_row_line(self, row: int) -> Quorum:
        """The full-line consisting of the complete global row ``row``."""
        members = frozenset(
            e
            for e in self.universe.ids
            if self._hgrid.coordinates(e)[0] == row
        )
        lines = [line for line in self._hgrid.full_lines() if line == members]
        if not lines:
            raise ConstructionError(
                f"global row {row} is not a hierarchical full-line"
            )
        return lines[0]

    def global_rows(self) -> int:
        """Number of global rows of the layout."""
        return 1 + max(self._hgrid.coordinates(e)[0] for e in self.universe.ids)

    def line_based_quorums(self, row: int) -> List[Quorum]:
        """All quorums whose full-line is the complete global row ``row``
        (partial covers enumerate uniformly over hierarchical covers)."""
        line = self._global_row_line(row)
        cutoff = self.topmost_key(line)
        quorums = []
        for cover in self._hgrid.row_covers():
            partial = frozenset(
                e for e in cover if self._hgrid.rowpath(e) >= cutoff
            )
            quorums.append(line | partial)
        return quorums

    def line_based_strategy(
        self, row_weights: Optional[Sequence[float]] = None
    ) -> Strategy:
        """§4.3's load-optimal strategy: full-lines are complete global
        rows, partial covers are picked uniformly at random, and the row
        probabilities minimise the maximal element load (computed by LP
        when not supplied).

        On the paper's 4x4 square grid this yields an average quorum size
        of 5.8 and a load of 36.5%.
        """
        rows = self.global_rows()
        per_row_quorums = [self.line_based_quorums(r) for r in range(rows)]
        if row_weights is None:
            row_weights = self._optimal_row_weights(per_row_quorums)
        if len(row_weights) != rows:
            raise ConstructionError(
                f"{rows} global rows but {len(row_weights)} weights"
            )
        quorums: List[Quorum] = []
        weights: List[float] = []
        for row_quorums, row_weight in zip(per_row_quorums, row_weights):
            share = row_weight / len(row_quorums)
            for quorum in row_quorums:
                quorums.append(quorum)
                weights.append(share)
        return Strategy(self, quorums, weights)

    def _optimal_row_weights(
        self, per_row_quorums: List[List[Quorum]]
    ) -> List[float]:
        """Row probabilities minimising the max element load via LP."""
        from scipy.optimize import linprog

        rows = len(per_row_quorums)
        n = self.n
        # inclusion[r][e] = P[element e in quorum | row r chosen].
        inclusion = np.zeros((rows, n))
        for r, quorums in enumerate(per_row_quorums):
            for quorum in quorums:
                for e in quorum:
                    inclusion[r, e] += 1.0 / len(quorums)
        c = np.zeros(rows + 1)
        c[rows] = 1.0
        a_ub = np.zeros((n, rows + 1))
        a_ub[:, :rows] = inclusion.T
        a_ub[:, rows] = -1.0
        a_eq = np.zeros((1, rows + 1))
        a_eq[0, :rows] = 1.0
        result = linprog(
            c,
            A_ub=a_ub,
            b_ub=np.zeros(n),
            A_eq=a_eq,
            b_eq=[1.0],
            bounds=[(0.0, None)] * rows + [(0.0, 1.0)],
            method="highs",
        )
        if not result.success:
            raise AnalysisError(f"row-weight LP failed: {result.message}")
        weights = np.clip(result.x[:rows], 0.0, None)
        return list(weights / weights.sum())

    def randomized_line_strategy(
        self,
        epsilon: float = 0.25,
        row_weights: Optional[Sequence[float]] = None,
    ) -> Strategy:
        """§4.3's "use all quorums" variant: a quorum is still based on a
        global row, but each full-line *fragment* independently drops to
        the lower row of its block with probability ``epsilon``.

        The paper reports that this necessarily does worse (on the 4x4
        grid it measures average size 5.9 and load 41%); the exact
        ``epsilon`` used is not stated, so it is a parameter here (the
        Table 4 bench calibrates it to reproduce the published numbers).
        """
        if not 0.0 <= epsilon < 1.0:
            raise ConstructionError(f"epsilon must be in [0, 1), got {epsilon}")
        rows = self.global_rows()
        support: Dict[Quorum, float] = {}
        covers = self._hgrid.row_covers()
        all_lines = self._hgrid.full_lines()
        if row_weights is None:
            base = self.line_based_strategy()
            row_weights = self._recover_row_weights(base)
        for row, row_weight in enumerate(row_weights):
            if row_weight == 0:
                continue
            base_line = self._global_row_line(row)
            variants = self._line_variants(base_line, all_lines, epsilon)
            # The quorum stays "based on" the original row: the partial
            # cover keeps covering from the base row down, even when the
            # actual full-line dropped lower (its union still contains a
            # proper h-T-grid quorum, and this is what makes the §4.3
            # randomized variant *larger* on average, not smaller).
            cutoff = self.topmost_key(base_line)
            for line, line_prob in variants.items():
                for cover in covers:
                    partial = frozenset(
                        e for e in cover if self._hgrid.rowpath(e) >= cutoff
                    )
                    quorum = line | partial
                    probability = row_weight * line_prob / len(covers)
                    support[quorum] = support.get(quorum, 0.0) + probability
        return Strategy.from_mapping(self, support)

    def _line_variants(
        self, base_line: Quorum, all_lines: List[Quorum], epsilon: float
    ) -> Dict[Quorum, float]:
        """Distribution over full-lines for the randomized strategy.

        With probability ``1 - eps`` keep the global row; with ``eps``
        switch uniformly to one of the other hierarchical full-lines whose
        topmost element is *not above* the base row (so the quorum uses
        "elements from a lower line" as §4.3 describes).
        """
        cutoff = self.topmost_key(base_line)
        lower = [
            line
            for line in all_lines
            if line != base_line and self.topmost_key(line) >= cutoff
        ]
        if not lower or epsilon == 0.0:
            return {base_line: 1.0}
        variants = {base_line: 1.0 - epsilon}
        share = epsilon / len(lower)
        for line in lower:
            variants[line] = variants.get(line, 0.0) + share
        return variants

    def _recover_row_weights(self, strategy: Strategy) -> List[float]:
        rows = self.global_rows()
        weights = [0.0] * rows
        for quorum, weight in zip(strategy.quorums, strategy.weights):
            line_row = min(self._hgrid.coordinates(e)[0] for e in quorum)
            weights[line_row] += float(weight)
        return weights
