"""Analysis engines: availability, load, reliability polynomials.

The metrics of the paper (Definitions 3.2 and 3.4, Propositions 3.1 and
3.3) with several independent exact engines plus Monte Carlo, so every
reported number can be cross-checked.
"""

from .adaptive import (
    FailureAwareSelector,
    availability_with_selector,
    find_live_quorum,
    live_quorums,
)
from .asymptotics import TABLE5, AsymptoticProfile, predicted_load_interval, profile
from .byzantine import (
    boost,
    byzantine_profile,
    dissemination_threshold,
    is_b_dissemination,
    is_b_masking,
    masking_majority,
    masking_threshold,
    min_pairwise_intersection,
)
from .bounds import (
    availability_gap,
    capacity,
    capacity_upper_bound,
    optimal_failure_probability,
)
from .crossover import dominance_interval, find_crossover
from .importance import (
    birnbaum_importance,
    importance_profile,
    improvement_potential,
    most_critical_elements,
)
from .availability import (
    availability,
    availability_comparison,
    failure_probability,
    failure_probability_heterogeneous,
)
from .exhaustive import (
    MAX_EXHAUSTIVE_N,
    availability_exhaustive,
    failure_probability_exhaustive,
)
from .latency import (
    fastest_quorum,
    latency_load_frontier,
    latency_optimal_strategy,
    latency_profile,
    quorum_latency,
)
from .lattice import (
    ConnectivityProblem,
    probability_all_satisfied,
    solve as solve_connectivity,
    uniform_survival,
)
from .capacity import (
    CapacityResult,
    read_quorums_of,
    read_write_capacity,
)

# Importing the capacity submodule above rebinds the package attribute
# ``capacity`` to the module; restore the Prop. 3.2 capacity *function*
# under its long-standing public name (the LP module stays importable as
# ``repro.analysis.capacity``).
from .bounds import capacity

from .load import (
    load_lower_bound,
    load_lower_bounds,
    optimal_strategy,
    read_write_optimal,
    system_load,
    verify_load_bounds,
)
from .montecarlo import MonteCarloEstimate, failure_probability_montecarlo
from .optimization import (
    best_grid_shape,
    best_triangle_growth,
    best_wall,
    grid_shapes,
    partitions_nondecreasing,
)
from .polynomial import ReliabilityPolynomial, reliability_polynomial
from .rare import RareEventEstimate, failure_probability_rare
from .shannon import availability_shannon, failure_probability_shannon

__all__ = [
    "CapacityResult",
    "FailureAwareSelector",
    "read_quorums_of",
    "read_write_capacity",
    "read_write_optimal",
    "MAX_EXHAUSTIVE_N",
    "availability_with_selector",
    "boost",
    "byzantine_profile",
    "dissemination_threshold",
    "find_live_quorum",
    "is_b_dissemination",
    "is_b_masking",
    "live_quorums",
    "masking_majority",
    "masking_threshold",
    "min_pairwise_intersection",
    "availability_gap",
    "capacity",
    "capacity_upper_bound",
    "dominance_interval",
    "find_crossover",
    "optimal_failure_probability",
    "birnbaum_importance",
    "importance_profile",
    "improvement_potential",
    "most_critical_elements",
    "fastest_quorum",
    "latency_load_frontier",
    "latency_optimal_strategy",
    "latency_profile",
    "quorum_latency",
    "RareEventEstimate",
    "failure_probability_rare",
    "best_grid_shape",
    "best_triangle_growth",
    "best_wall",
    "grid_shapes",
    "partitions_nondecreasing",
    "TABLE5",
    "AsymptoticProfile",
    "ConnectivityProblem",
    "MonteCarloEstimate",
    "ReliabilityPolynomial",
    "availability",
    "availability_exhaustive",
    "availability_shannon",
    "failure_probability",
    "failure_probability_exhaustive",
    "failure_probability_heterogeneous",
    "failure_probability_montecarlo",
    "failure_probability_shannon",
    "load_lower_bound",
    "load_lower_bounds",
    "optimal_strategy",
    "predicted_load_interval",
    "probability_all_satisfied",
    "profile",
    "reliability_polynomial",
    "solve_connectivity",
    "system_load",
    "uniform_survival",
    "verify_load_bounds",
]
