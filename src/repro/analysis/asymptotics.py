"""Asymptotic properties of the studied constructions (Table 5).

Table 5 of the paper is analytic rather than measured: for each system it
lists the smallest quorum size ``c(S)``, whether all quorums have the same
size, and the (asymptotic) system load.  This module encodes those
formulas as inspectable records and evaluates them at concrete ``n`` so
the benchmark can print the table and the tests can confront the formulas
with the exact values measured on finite instances.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple


@dataclass(frozen=True)
class AsymptoticProfile:
    """Closed-form asymptotic description of one construction."""

    #: System name as used in the paper's Table 5.
    name: str
    #: Human-readable formula for the smallest quorum size c(S).
    smallest_quorum_formula: str
    #: Evaluate c(S) at a concrete universe size n.
    smallest_quorum: Callable[[int], float]
    #: Whether every quorum of the system has the same cardinality.
    uniform_quorum_size: bool
    #: Human-readable formula for the system load L(S).
    load_formula: str
    #: Evaluate the load formula at n (None when the paper gives a range).
    load: Optional[Callable[[int], float]]
    #: Optional load range formulas (lower, upper) when not a single value.
    load_range: Optional[Tuple[Callable[[int], float], Callable[[int], float]]] = None
    #: Note reproduced from the paper, if any.
    note: str = ""


def _lg(x: float) -> float:
    return math.log2(x)


#: Table 5 of the paper, row by row.
TABLE5: Dict[str, AsymptoticProfile] = {
    "majority": AsymptoticProfile(
        name="Majority",
        smallest_quorum_formula="(n+1)/2",
        smallest_quorum=lambda n: (n + 1) / 2,
        uniform_quorum_size=True,
        load_formula="1/2",
        load=lambda n: 0.5,
    ),
    "hqs": AsymptoticProfile(
        name="HQS",
        smallest_quorum_formula="n^0.63",
        smallest_quorum=lambda n: n**0.63,
        uniform_quorum_size=True,
        load_formula="n^-0.37",
        load=lambda n: n**-0.37,
    ),
    "cwlog": AsymptoticProfile(
        name="CWlog",
        smallest_quorum_formula="lg n - lg lg n",
        smallest_quorum=lambda n: _lg(n) - _lg(max(_lg(n), 2.0)),
        uniform_quorum_size=False,
        load_formula="1/lg n",
        load=lambda n: 1.0 / _lg(n),
    ),
    "h-t-grid": AsymptoticProfile(
        name="h-T-grid",
        smallest_quorum_formula="sqrt(n)",
        smallest_quorum=lambda n: math.sqrt(n),
        uniform_quorum_size=False,
        load_formula="> 3/(2 sqrt(n))",
        load=None,
        load_range=(
            lambda n: 1.5 / math.sqrt(n),
            lambda n: 2.0 / math.sqrt(n),
        ),
        note="avg quorum size > 1.5 sqrt(n)",
    ),
    "paths": AsymptoticProfile(
        name="Paths",
        smallest_quorum_formula="~ sqrt(2n)",
        smallest_quorum=lambda n: math.sqrt(2 * n),
        uniform_quorum_size=False,
        load_formula="sqrt(2)/sqrt(n) <= L <= 2 sqrt(2)/sqrt(n)",
        load=None,
        load_range=(
            lambda n: math.sqrt(2) / math.sqrt(n),
            lambda n: 2 * math.sqrt(2) / math.sqrt(n),
        ),
    ),
    "y": AsymptoticProfile(
        name="Y",
        smallest_quorum_formula="~ sqrt(2n)",
        smallest_quorum=lambda n: math.sqrt(2 * n),
        uniform_quorum_size=False,
        load_formula="> sqrt(2)/sqrt(n)",
        load=None,
        load_range=(
            lambda n: math.sqrt(2) / math.sqrt(n),
            lambda n: 2 * math.sqrt(2) / math.sqrt(n),
        ),
    ),
    "h-triang": AsymptoticProfile(
        name="h-triang",
        smallest_quorum_formula="~ sqrt(2n)",
        smallest_quorum=lambda n: math.sqrt(2 * n),
        uniform_quorum_size=True,
        load_formula="sqrt(2)/sqrt(n)",
        load=lambda n: math.sqrt(2) / math.sqrt(n),
        note="only O(1/sqrt(n))-load system with uniform quorum size",
    ),
    "h-grid": AsymptoticProfile(
        name="h-grid",
        smallest_quorum_formula="~ 2 sqrt(n) - 1",
        smallest_quorum=lambda n: 2 * math.sqrt(n) - 1,
        uniform_quorum_size=True,
        load_formula="~ 2/sqrt(n)",
        load=lambda n: 2.0 / math.sqrt(n),
        note="all quorums ~ 2 sqrt(n) - 1 (section 4.3)",
    ),
    "grid": AsymptoticProfile(
        name="grid",
        smallest_quorum_formula="~ 2 sqrt(n) - 1",
        smallest_quorum=lambda n: 2 * math.sqrt(n) - 1,
        uniform_quorum_size=True,
        load_formula="~ 2/sqrt(n)",
        load=lambda n: 2.0 / math.sqrt(n),
        note="availability tends to 0 as n grows (Peleg-Wool)",
    ),
    "fpp": AsymptoticProfile(
        name="FPP (Maekawa)",
        smallest_quorum_formula="~ sqrt(n)",
        smallest_quorum=lambda n: math.sqrt(n),
        uniform_quorum_size=True,
        load_formula="1/sqrt(n) (optimal)",
        load=lambda n: 1.0 / math.sqrt(n),
        note="only constructible for n = q^2 + q + 1, q a prime power",
    ),
    "singleton": AsymptoticProfile(
        name="Singleton",
        smallest_quorum_formula="1",
        smallest_quorum=lambda n: 1.0,
        uniform_quorum_size=True,
        load_formula="1",
        load=lambda n: 1.0,
        note="optimal availability for p > 1/2 (Prop. 3.2)",
    ),
}


def profile(name: str) -> AsymptoticProfile:
    """Look up a Table 5 profile by (case-insensitive) name."""
    key = name.lower()
    if key not in TABLE5:
        raise KeyError(f"no asymptotic profile for {name!r}; have {sorted(TABLE5)}")
    return TABLE5[key]


def predicted_load_interval(name: str, n: int) -> Tuple[float, float]:
    """(lower, upper) predicted load at universe size ``n``."""
    entry = profile(name)
    if entry.load is not None:
        value = entry.load(n)
        return value, value
    assert entry.load_range is not None
    low, high = entry.load_range
    return low(n), high(n)
