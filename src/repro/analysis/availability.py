"""Front-end for failure-probability computation.

Dispatches between the structured closed forms provided by the
constructions themselves, the exhaustive 2^n engine, the Shannon-expansion
engine and Monte Carlo, following the paper's failure model (Def. 3.2):
independent transient crashes, identical probability ``p`` per element.

Methods
-------
``auto``
    Structured closed form if the system provides one, else exhaustive for
    small universes, else Shannon, else an error advising Monte Carlo.
``exact`` / ``structural`` / ``exhaustive`` / ``shannon`` / ``montecarlo``
    Force a particular engine.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.errors import AnalysisError
from ..core.quorum_system import QuorumSystem
from .exhaustive import MAX_EXHAUSTIVE_N, failure_probability_exhaustive
from .montecarlo import failure_probability_montecarlo
from .shannon import failure_probability_shannon


def _validate_probability(p: float) -> None:
    if not 0.0 <= p <= 1.0:
        raise AnalysisError(f"crash probability must be in [0, 1], got {p}")


def failure_probability(
    system: QuorumSystem,
    p: float,
    method: str = "auto",
    **kwargs,
) -> float:
    """Failure probability ``F_p(S)`` of a quorum system.

    Parameters
    ----------
    system:
        The quorum system.
    p:
        Per-element crash probability.
    method:
        Engine selector, see module docstring.
    kwargs:
        Extra options forwarded to the chosen engine (``samples``/``seed``
        for Monte Carlo, ``max_states`` for Shannon).
    """
    _validate_probability(p)
    if p == 0.0:
        return 0.0
    if p == 1.0:
        return 1.0

    if method == "auto":
        structural = system.failure_probability_exact(p)
        if structural is not None:
            return structural
        if system.n <= MAX_EXHAUSTIVE_N:
            return failure_probability_exhaustive(system, p)
        return failure_probability_shannon(system, p, **kwargs)
    if method in ("structural", "exact"):
        structural = system.failure_probability_exact(p)
        if structural is None:
            raise AnalysisError(
                f"{system.system_name} provides no structural closed form"
            )
        return structural
    if method == "exhaustive":
        return failure_probability_exhaustive(system, p)
    if method == "shannon":
        return failure_probability_shannon(system, p, **kwargs)
    if method == "montecarlo":
        return failure_probability_montecarlo(system, p, **kwargs).value
    raise AnalysisError(f"unknown failure-probability method {method!r}")


def availability(system: QuorumSystem, p: float, method: str = "auto", **kwargs) -> float:
    """``1 - F_p(S)``: probability some quorum is fully alive."""
    return 1.0 - failure_probability(system, p, method=method, **kwargs)


def availability_comparison(
    system: QuorumSystem,
    p: float,
    measured: float,
    method: str = "auto",
    **kwargs,
) -> dict:
    """Measured availability next to the exact ``1 - F_p(S)``.

    The closing-the-loop summary used by the chaos harness and service
    benchmarks: ``measured`` is an empirical fraction of epochs (or
    operations) in which a quorum was fully alive, compared against the
    exact failure probability of the same iid crash model.
    """
    if not 0.0 <= measured <= 1.0:
        raise AnalysisError(f"measured availability must be in [0, 1], got {measured}")
    exact = availability(system, p, method=method, **kwargs)
    return {
        "crash_rate": p,
        "exact": exact,
        "measured": measured,
        "abs_error": abs(measured - exact),
    }


def failure_probability_heterogeneous(
    system: QuorumSystem, per_element: Sequence[float], method: str = "auto"
) -> float:
    """Failure probability with a distinct crash probability per element.

    Used by hierarchical decompositions where "elements" are logical
    objects with their own (already computed) failure probabilities.
    """
    for crash in per_element:
        _validate_probability(crash)
    if method == "auto":
        if system.n <= MAX_EXHAUSTIVE_N:
            method = "exhaustive"
        else:
            method = "shannon"
    if method == "exhaustive":
        return failure_probability_exhaustive(system, 0.0, per_element=per_element)
    if method == "shannon":
        return failure_probability_shannon(system, 0.0, per_element=per_element)
    if method == "montecarlo":
        return failure_probability_montecarlo(
            system, 0.0, per_element=per_element
        ).value
    raise AnalysisError(f"unknown heterogeneous method {method!r}")
