"""Optimality bounds on failure probability and load.

Proposition 3.2 (Peleg–Wool): for ``p < 1/2`` no coterie over ``n``
elements beats the majority system's failure probability; for
``p > 1/2`` nothing beats the singleton.  This module exposes those
envelopes, the trivial monotone bounds, and Naor–Wool's *capacity*
notion (throughput scales with ``1/L``), so any construction can be
placed on the optimality map — the tests assert that every system in
:mod:`repro.systems` respects all of them.
"""

from __future__ import annotations

import math
from typing import Tuple

from ..core.errors import AnalysisError
from ..core.quorum_system import QuorumSystem
from .load import load_lower_bound


def optimal_failure_probability(n: int, p: float) -> float:
    """The Prop. 3.2 envelope: the best failure probability any coterie
    over ``n`` elements can achieve at crash probability ``p``.

    Majority for ``p <= 1/2`` (odd ``n`` is used for even inputs, since
    adding the extra element never helps a majority), singleton (= ``p``)
    for ``p >= 1/2``.
    """
    if not 0.0 <= p <= 1.0:
        raise AnalysisError(f"crash probability must be in [0, 1], got {p}")
    if n < 1:
        raise AnalysisError(f"universe size must be positive, got {n}")
    if p >= 0.5:
        return p
    odd = n if n % 2 == 1 else n - 1
    if odd < 1:
        return p
    need = odd // 2 + 1
    q = 1.0 - p
    return sum(
        math.comb(odd, k) * (p**k) * (q ** (odd - k))
        for k in range(need, odd + 1)
    )


def failure_probability_floor(system: QuorumSystem, p: float) -> float:
    """A structural floor: with ``c = c(S)``, the failure probability is
    at least ``p**c`` *is not generally true*; what always holds is the
    Prop. 3.2 envelope plus the single-quorum bound below.

    Returns ``max(envelope, all-quorums-hit floor)`` where the second
    term lower-bounds ``F_p`` by the probability that *every* element
    fails (the coarsest always-valid bound), kept explicit so the tests
    can document the hierarchy of bounds.
    """
    return max(optimal_failure_probability(system.n, p), p**system.n)


def availability_gap(system: QuorumSystem, p: float) -> float:
    """How far the system sits above the optimal envelope at ``p``.

    ``F_p(S) - optimal(n, p) >= 0`` for every coterie (Prop. 3.2); the
    gap is the paper's price-of-small-quorums, e.g. h-triang(15) pays
    ~6.4e-4 over majority at p = 0.1 for quorums of 5 instead of 8.
    """
    return system.failure_probability(p) - optimal_failure_probability(system.n, p)


def capacity(system: QuorumSystem) -> float:
    """Naor–Wool capacity: sustainable throughput per element-capacity.

    If every element can serve one request per time unit, a system with
    load ``L`` sustains ``1/L`` requests per time unit system-wide; the
    paper's load comparisons are therefore capacity comparisons.
    """
    return 1.0 / system.load()


def capacity_upper_bound(system: QuorumSystem) -> float:
    """``1 / max(c/n, 1/c)`` — the Prop. 3.3 capacity ceiling."""
    return 1.0 / load_lower_bound(system)


def probe_envelope(n: int, points: int = 11) -> Tuple[Tuple[float, float], ...]:
    """Sampled (p, optimal F_p) pairs for plotting/benchmarks."""
    if points < 2:
        raise AnalysisError("need at least two probe points")
    return tuple(
        (i / (points - 1), optimal_failure_probability(n, i / (points - 1)))
        for i in range(points)
    )
