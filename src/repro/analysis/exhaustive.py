"""Exact availability by exhaustive enumeration of the 2^n failure states.

The reference engine: conceptually trivial, numerically exact, and used in
tests as the ground truth against which the structured recursions and the
Shannon engine are validated.  Practical up to ``n`` around 22.

All computations work over element *bitmasks*: bit ``i`` of a state is set
when element ``i`` is alive.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.errors import AnalysisError
from ..core.quorum_system import QuorumSystem

#: Largest universe size the exhaustive engine accepts (2^22 states).
MAX_EXHAUSTIVE_N = 22


def _quorum_masks(system: QuorumSystem) -> np.ndarray:
    """Minimal quorums as uint64 bitmasks."""
    masks = []
    for quorum in system.minimal_quorums():
        mask = 0
        for element in quorum:
            mask |= 1 << element
        masks.append(mask)
    return np.array(masks, dtype=np.uint64)


def usable_states(system: QuorumSystem) -> np.ndarray:
    """Boolean vector over all 2^n alive-masks: does the state hold a quorum?

    Index ``s`` corresponds to the alive set whose bitmask is ``s``.
    """
    n = system.n
    if n > MAX_EXHAUSTIVE_N:
        raise AnalysisError(
            f"exhaustive engine supports n <= {MAX_EXHAUSTIVE_N}, got {n}"
        )
    states = np.arange(1 << n, dtype=np.uint64)
    usable = np.zeros(1 << n, dtype=bool)
    for mask in _quorum_masks(system):
        usable |= (states & mask) == mask
    return usable


def state_probabilities(
    n: int, p: float, per_element: Optional[Sequence[float]] = None
) -> np.ndarray:
    """Probability of each alive-mask under independent crashes.

    Parameters
    ----------
    n:
        Universe size.
    p:
        Common crash probability (ignored when ``per_element`` given).
    per_element:
        Optional per-element crash probabilities (heterogeneous model used
        by hierarchical decompositions).
    """
    if per_element is None:
        per_element = [p] * n
    if len(per_element) != n:
        raise AnalysisError(
            f"expected {n} element probabilities, got {len(per_element)}"
        )
    probabilities = np.ones(1 << n, dtype=float)
    states = np.arange(1 << n, dtype=np.uint64)
    for element, crash in enumerate(per_element):
        alive = (states >> np.uint64(element)) & np.uint64(1)
        probabilities *= np.where(alive == 1, 1.0 - crash, crash)
    return probabilities


def failure_probability_exhaustive(
    system: QuorumSystem, p: float, per_element: Optional[Sequence[float]] = None
) -> float:
    """``F_p(S)`` by direct summation over all failure configurations."""
    usable = usable_states(system)
    probabilities = state_probabilities(system.n, p, per_element)
    return float(probabilities[~usable].sum())


def availability_exhaustive(
    system: QuorumSystem, p: float, per_element: Optional[Sequence[float]] = None
) -> float:
    """Complement of :func:`failure_probability_exhaustive`."""
    usable = usable_states(system)
    probabilities = state_probabilities(system.n, p, per_element)
    return float(probabilities[usable].sum())
