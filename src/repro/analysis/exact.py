"""Exact rational failure probabilities.

Every structural recursion in this library uses only field operations
(+, -, *), so evaluating it over :class:`fractions.Fraction` instead of
floats yields the failure probability as an **exact rational number** —
no accumulation error, no rounding luck.  This module provides those
evaluations for the constructions with closed recursions and uses them
to certify the reproduction: rounding the exact rational to the paper's
six decimals must reproduce the printed string.

(The generic engines work over exact arithmetic too: the exhaustive
engine's sum of monomials is evaluated here directly from the minimal
quorums via inclusion–exclusion-free state enumeration for small ``n``.)
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Sequence, Tuple, Union

from ..core.errors import AnalysisError
from ..core.quorum_system import QuorumSystem

Rational = Union[Fraction, int]


def _as_fraction(p: Union[str, float, Fraction]) -> Fraction:
    """Accept '1/10', 0.1 (converted via its decimal string) or Fraction."""
    if isinstance(p, Fraction):
        return p
    if isinstance(p, str):
        return Fraction(p)
    # Going through the decimal representation keeps 0.1 meaning 1/10
    # rather than its binary-float neighbour.
    return Fraction(str(p))


def exact_failure_majority(n: int, p: Union[str, float, Fraction]) -> Fraction:
    """Exact binomial tail of the majority system."""
    from math import comb

    crash = _as_fraction(p)
    survive = 1 - crash
    quorum = n // 2 + 1
    min_failures = n - quorum + 1
    return sum(
        Fraction(comb(n, k)) * crash**k * survive ** (n - k)
        for k in range(min_failures, n + 1)
    )


def exact_failure_wall(widths: Sequence[int], p: Union[str, float, Fraction]) -> Fraction:
    """Exact wall DP (CWlog, flat T-grid, triangle, diamond)."""
    crash = _as_fraction(p)
    survive = 1 - crash
    b: Fraction = Fraction(0)
    u: Fraction = Fraction(1)
    for width in reversed(list(widths)):
        full = survive**width
        alive = 1 - crash**width
        b, u = full * u + (1 - full) * b, alive * u + (1 - alive) * b
    return 1 - b


def exact_failure_hqs(spec, p: Union[str, float, Fraction]) -> Fraction:
    """Exact tree-majority recursion (HQS)."""
    crash = _as_fraction(p)
    survive = 1 - crash

    def recurse(node) -> Fraction:
        if node == "leaf":
            return survive
        child_avail = [recurse(child) for child in node]
        k = len(child_avail)
        need = k // 2 + 1
        # Exact success-count convolution.
        distribution: List[Fraction] = [Fraction(1)] + [Fraction(0)] * k
        for a in child_avail:
            updated = [distribution[0] * (1 - a)] + [
                distribution[i] * (1 - a) + distribution[i - 1] * a
                for i in range(1, k + 1)
            ]
            distribution = updated
        return sum(distribution[need:], Fraction(0))

    return 1 - recurse(spec)


def exact_failure_hgrid(system, p: Union[str, float, Fraction]) -> Fraction:
    """Exact hierarchical-grid joint recursion.

    Reuses the library's joint pmf recursion, which is generic over the
    number type: passing a Fraction-valued leaf mapping keeps every
    intermediate value rational.
    """
    from ..systems.hgrid import joint_cover_line_pmf_of

    crash = _as_fraction(p)
    survive = 1 - crash
    leaf_values = {element: survive for element in system.universe.ids}
    pmf = joint_cover_line_pmf_of(system._root, leaf_values)
    return 1 - pmf.get((1, 1), Fraction(0))


def exact_failure_htriangle(system, p: Union[str, float, Fraction]) -> Fraction:
    """Exact hierarchical-triangle recursion (same genericity trick)."""
    crash = _as_fraction(p)
    survive = 1 - crash
    leaf_values = {element: survive for element in system.universe.ids}
    return 1 - system._availability_of(system._root, leaf_values)


def exact_failure_enumeration(
    system: QuorumSystem, p: Union[str, float, Fraction]
) -> Fraction:
    """Exact failure probability by rational state enumeration (n <= 16)."""
    n = system.n
    if n > 16:
        raise AnalysisError(f"rational enumeration supports n <= 16, got {n}")
    crash = _as_fraction(p)
    survive = 1 - crash
    quorums = system.minimal_quorums()
    masks = []
    for quorum in quorums:
        mask = 0
        for element in quorum:
            mask |= 1 << element
        masks.append(mask)
    total = Fraction(0)
    for state in range(1 << n):
        if any((state & mask) == mask for mask in masks):
            continue
        alive = bin(state).count("1")
        total += survive**alive * crash ** (n - alive)
    return total


def rounds_to(value: Fraction, printed: str) -> bool:
    """Whether the exact rational rounds (half-up) to the printed decimal.

    The paper prints six decimals; ties are resolved either way to
    accommodate its unknown rounding mode.
    """
    if "." not in printed:
        printed += "."
    digits = len(printed.split(".")[1])
    scale = 10**digits
    scaled = value * scale
    floor = scaled.__floor__()
    candidates = {floor, floor + 1}
    printed_int = int(printed.replace(".", ""))
    if printed_int not in candidates:
        return False
    # The printed value must be within half a unit in the last place.
    return abs(scaled - printed_int) <= Fraction(1, 2)
