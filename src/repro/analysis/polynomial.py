"""Reliability polynomial and transversal counts (Proposition 3.1).

The paper computes failure probabilities through the *transversals* of a
system: a size-``i`` transversal is a set of ``i`` elements hitting every
quorum, and with ``a_i`` the number of such sets,

    ``F_p(S) = sum_i a_i * p^i * q^(n-i)``.

This module computes the exact transversal profile ``(a_0, ..., a_n)`` by
bitmask enumeration (n <= 22) and exposes the failure probability as an
explicit polynomial, which makes properties like monotonicity in ``p`` and
the self-duality identity ``F_{1/2} = 1/2`` directly checkable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from ..core.quorum_system import QuorumSystem
from .exhaustive import MAX_EXHAUSTIVE_N, usable_states
from ..core.errors import AnalysisError


@dataclass(frozen=True)
class ReliabilityPolynomial:
    """Failure probability of a system as a polynomial in ``p``.

    ``transversal_counts[i]`` is ``a_i`` of Proposition 3.1: the number of
    element sets of size ``i`` whose failure makes every quorum unusable.
    """

    n: int
    transversal_counts: Tuple[int, ...]

    def failure_probability(self, p: float) -> float:
        """Evaluate ``F_p = sum_i a_i p^i (1-p)^(n-i)``."""
        q = 1.0 - p
        total = 0.0
        for i, count in enumerate(self.transversal_counts):
            if count:
                total += count * (p**i) * (q ** (self.n - i))
        return total

    def availability(self, p: float) -> float:
        """``1 - F_p``."""
        return 1.0 - self.failure_probability(p)

    @property
    def minimum_transversal_size(self) -> int:
        """Size of the smallest transversal (the dual's ``c(S*)``)."""
        for i, count in enumerate(self.transversal_counts):
            if count:
                return i
        raise AnalysisError("system has no transversal; not a quorum system?")

    def is_self_complementary(self) -> bool:
        """True when ``a_i + a_{n-i} = C(n, i)`` for all ``i``.

        This combinatorial identity characterises self-dual systems and
        implies ``F_{1/2} = 1/2`` — the fixed point visible for majority,
        HQS, CWlog, Y and h-triang in Tables 2 and 3 of the paper.
        """
        from math import comb

        return all(
            self.transversal_counts[i] + self.transversal_counts[self.n - i]
            == comb(self.n, i)
            for i in range(self.n + 1)
        )


def popcount_table(n: int) -> np.ndarray:
    """Number of set bits for every mask in ``range(2**n)``."""
    states = np.arange(1 << n, dtype=np.uint64)
    counts = np.zeros(1 << n, dtype=np.uint8)
    for bit in range(n):
        counts += ((states >> np.uint64(bit)) & np.uint64(1)).astype(np.uint8)
    return counts


def reliability_polynomial(system: QuorumSystem) -> ReliabilityPolynomial:
    """Exact transversal profile of the system by 2^n enumeration."""
    n = system.n
    if n > MAX_EXHAUSTIVE_N:
        raise AnalysisError(
            f"polynomial engine supports n <= {MAX_EXHAUSTIVE_N}, got {n}"
        )
    usable = usable_states(system)
    alive_counts = popcount_table(n)
    # A failed set T is a transversal iff the complementary alive set
    # contains no quorum; failed-set size = n - popcount(alive mask).
    failed_sizes = n - alive_counts[~usable]
    counts = np.bincount(failed_sizes, minlength=n + 1)
    return ReliabilityPolynomial(n=n, transversal_counts=tuple(int(c) for c in counts))
