"""Latency-aware quorum selection.

A quorum operation completes when its *slowest* member answers, so the
latency of quorum ``Q`` under per-element round-trip times ``rtt`` is
``max_{i in Q} rtt_i``.  Always using the globally fastest quorum
minimises latency but concentrates load on the fast elements; this
module exposes both extremes and the LP that trades them off:

    minimise   sum_j w_j * latency(Q_j)
    subject to sum_j w_j = 1,  w >= 0,
               load_i(w) <= L_max  for every element i

— i.e. the cheapest expected latency achievable without exceeding a load
budget.  Sweeping ``L_max`` from the system load to 1 traces the
latency/load Pareto frontier, which the placement benchmark prints for
the paper's constructions.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.errors import AnalysisError
from ..core.quorum_system import Quorum, QuorumSystem
from ..core.strategy import Strategy


def quorum_latency(quorum: Quorum, rtt: Sequence[float]) -> float:
    """Completion time of one quorum: its slowest member."""
    if not quorum:
        raise AnalysisError("empty quorum has no latency")
    return max(rtt[element] for element in quorum)


def fastest_quorum(system: QuorumSystem, rtt: Sequence[float]) -> Quorum:
    """The minimal quorum with the smallest completion time."""
    _validate_rtt(system, rtt)
    return min(
        system.minimal_quorums(),
        key=lambda q: (quorum_latency(q, rtt), len(q), sorted(q)),
    )


def latency_profile(system: QuorumSystem, rtt: Sequence[float]) -> np.ndarray:
    """Completion time of every minimal quorum."""
    _validate_rtt(system, rtt)
    return np.array([quorum_latency(q, rtt) for q in system.minimal_quorums()])


def latency_optimal_strategy(
    system: QuorumSystem,
    rtt: Sequence[float],
    max_load: Optional[float] = None,
) -> Strategy:
    """Least-expected-latency strategy under a load budget.

    With ``max_load = None`` the load constraint is dropped and the
    strategy degenerates to "always the fastest quorum"; with
    ``max_load = L(S)`` it yields the most latency-friendly of the
    load-optimal strategies.
    """
    from scipy.optimize import linprog

    _validate_rtt(system, rtt)
    quorums = system.minimal_quorums()
    latencies = latency_profile(system, rtt)
    m = len(quorums)
    n = system.n
    bounds = [(0.0, 1.0)] * m
    a_eq = np.ones((1, m))
    b_eq = np.array([1.0])
    if max_load is None:
        a_ub = None
        b_ub = None
    else:
        if max_load <= 0.0 or max_load > 1.0:
            raise AnalysisError(f"max_load must be in (0, 1], got {max_load}")
        a_ub = np.zeros((n, m))
        for j, quorum in enumerate(quorums):
            for element in quorum:
                a_ub[element, j] = 1.0
        b_ub = np.full(n, max_load)
    result = linprog(
        latencies, A_ub=a_ub, b_ub=b_ub, A_eq=a_eq, b_eq=b_eq,
        bounds=bounds, method="highs",
    )
    if not result.success:
        raise AnalysisError(
            f"latency LP infeasible (load budget too tight?): {result.message}"
        )
    weights = np.clip(result.x, 0.0, None)
    weights /= weights.sum()
    return Strategy(system, quorums, weights)


def latency_load_frontier(
    system: QuorumSystem,
    rtt: Sequence[float],
    points: int = 8,
) -> List[Tuple[float, float]]:
    """(load budget, achievable expected latency) Pareto samples.

    Budgets sweep from the system load (tightest feasible) to 1.
    """
    if points < 2:
        raise AnalysisError("need at least two frontier points")
    _validate_rtt(system, rtt)
    tightest = system.load(method="lp")
    frontier = []
    for step in range(points):
        budget = tightest + (1.0 - tightest) * step / (points - 1)
        budget = min(1.0, budget + 1e-9)  # absorb LP tolerance at the ends
        strategy = latency_optimal_strategy(system, rtt, max_load=budget)
        expected = float(
            latency_profile(system, rtt) @ np.asarray(strategy.weights)
        )
        frontier.append((budget, expected))
    return frontier


def _validate_rtt(system: QuorumSystem, rtt: Sequence[float]) -> None:
    if len(rtt) != system.n:
        raise AnalysisError(f"expected {system.n} RTTs, got {len(rtt)}")
    if any(value < 0 for value in rtt):
        raise AnalysisError("RTTs must be non-negative")
