"""Byzantine quorum-system analysis (the paper's §2/§7 outlook).

The paper notes that its constructions "can also be adapted and used in
Byzantine quorum systems" in the sense of Malkhi–Reiter [12].  This
module provides the analysis side of that outlook:

* a **b-dissemination** system needs every pairwise quorum intersection
  to contain at least ``b+1`` elements (some correct element is shared,
  enough for self-verifying data);
* a **b-masking** system needs intersections of at least ``2b+1``
  elements (correct copies outvote the ``b`` liars).

Given any crash-model construction from :mod:`repro.systems`, the
functions below compute its *Byzantine thresholds* (the largest tolerable
``b`` of each kind), and :func:`boost` mechanically thickens a system to
reach a requested threshold by replacing each element with a group of
``2b+1`` replicas — the composition route the paper's remark suggests
(every pairwise intersection then contains a full group).  This is an
*extension* beyond the paper's evaluation, flagged as such in
EXPERIMENTS.md and exercised by `bench_ext_byzantine.py`.
"""

from __future__ import annotations

import itertools
from typing import Optional, Tuple

from ..core.composition import ComposedQuorumSystem
from ..core.errors import AnalysisError, ConstructionError
from ..core.quorum_system import ExplicitQuorumSystem, QuorumSystem
from ..core.universe import Universe


def min_pairwise_intersection(system: QuorumSystem) -> int:
    """Smallest ``|Q1 ∩ Q2|`` over distinct minimal quorums.

    Quadratic in the number of minimal quorums, computed as a blocked
    boolean matrix product so families with tens of thousands of quorums
    (e.g. masking majorities) finish in seconds.  A single quorum counts
    as intersection with itself (its own size).
    """
    import numpy as np

    quorums = system.minimal_quorums()
    if len(quorums) == 1:
        return len(quorums[0])
    if len(quorums) <= 200:
        return min(
            len(first & second)
            for first, second in itertools.combinations(quorums, 2)
        )
    matrix = np.zeros((len(quorums), system.n), dtype=np.float32)
    for row, quorum in enumerate(quorums):
        matrix[row, sorted(quorum)] = 1.0
    best = system.n
    block = 2048
    for start in range(0, len(quorums), block):
        chunk = matrix[start : start + block]
        overlaps = chunk @ matrix.T  # (block, m) intersection sizes
        # Mask the diagonal (self-intersections) inside this chunk.
        for offset in range(chunk.shape[0]):
            overlaps[offset, start + offset] = np.inf
        best = min(best, int(overlaps.min()))
        if best == 0:
            break
    return best


def dissemination_threshold(system: QuorumSystem) -> int:
    """Largest ``b`` for which the system is b-dissemination
    (``|Q1 ∩ Q2| >= b + 1``)."""
    return min_pairwise_intersection(system) - 1


def masking_threshold(system: QuorumSystem) -> int:
    """Largest ``b`` for which the system is b-masking
    (``|Q1 ∩ Q2| >= 2b + 1``)."""
    return (min_pairwise_intersection(system) - 1) // 2


def is_b_dissemination(system: QuorumSystem, b: int) -> bool:
    """Whether every pairwise intersection has more than ``b`` elements."""
    if b < 0:
        raise AnalysisError(f"b must be >= 0, got {b}")
    return min_pairwise_intersection(system) >= b + 1


def is_b_masking(system: QuorumSystem, b: int) -> bool:
    """Whether every pairwise intersection has at least ``2b+1`` elements."""
    if b < 0:
        raise AnalysisError(f"b must be >= 0, got {b}")
    return min_pairwise_intersection(system) >= 2 * b + 1


def _replica_group(size: int) -> ExplicitQuorumSystem:
    """Inner system whose single quorum is the whole group.

    Replacing an element by this group turns a shared element into
    ``size`` shared replicas in every pairwise intersection.
    """
    universe = Universe.of_size(size)
    return ExplicitQuorumSystem(
        universe, [frozenset(range(size))], name=f"group{size}"
    )


def boost(system: QuorumSystem, b: int) -> ComposedQuorumSystem:
    """Thicken a crash-model system into a b-masking Byzantine one.

    Every element becomes a group of ``2b+1`` replicas, all of which must
    be contacted.  Any two boosted quorums then share at least one whole
    group, i.e. at least ``2b+1`` replicas, so the result is b-masking
    (and (2b)-dissemination) whatever the base construction — at a
    ``(2b+1)x`` size/load cost, which the benchmark quantifies against
    the masking-majority baseline.
    """
    if b < 0:
        raise ConstructionError(f"b must be >= 0, got {b}")
    group = 2 * b + 1
    return ComposedQuorumSystem(system, [_replica_group(group)] * system.n)


def validate_masking(system: QuorumSystem, b: int) -> int:
    """Check a system is b-masking; the serving path's startup gate.

    Returns the system's masking threshold when it is at least ``b``.
    Raises :class:`AnalysisError` otherwise, naming the actual bound and
    the :func:`boost` call that would reach the requested one — the
    coordinator surfaces that message verbatim so a misconfigured
    deployment learns the fix, not just the failure.
    """
    if b < 0:
        raise AnalysisError(f"b must be >= 0, got {b}")
    threshold = masking_threshold(system)
    if threshold < b:
        raise AnalysisError(
            f"{system.system_name} is only {threshold}-masking (min pairwise "
            f"intersection {min_pairwise_intersection(system)} < {2 * b + 1}); "
            f"b={b} needs a thicker system — e.g. "
            f"analysis.byzantine.boost(system, {b})"
        )
    return threshold


def masking_majority(n: int, b: int) -> ExplicitQuorumSystem:
    """The Malkhi–Reiter masking-majority baseline.

    Quorums are all subsets of size ``ceil((n + 2b + 1) / 2)``; any two
    intersect in at least ``2b+1`` elements.  Requires ``n >= 4b + 1``.
    """
    if b < 0:
        raise ConstructionError(f"b must be >= 0, got {b}")
    if n < 4 * b + 1:
        raise ConstructionError(
            f"masking majority needs n >= 4b+1 = {4 * b + 1}, got {n}"
        )
    size = -((-(n + 2 * b + 1)) // 2)  # ceil
    universe = Universe.of_size(n)
    quorums = [frozenset(c) for c in itertools.combinations(range(n), size)]
    # Any two size-k subsets of [n] share >= 2k - n >= 2b + 1 elements, so
    # the quadratic eager validation is provably unnecessary (and would
    # dominate construction time for the larger instances).
    system = ExplicitQuorumSystem(
        universe, quorums, name=f"masking-majority(n={n},b={b})", validate=False
    )
    return system


def byzantine_profile(system: QuorumSystem) -> Tuple[int, int, int]:
    """(min pairwise intersection, dissemination b, masking b)."""
    overlap = min_pairwise_intersection(system)
    return overlap, overlap - 1, (overlap - 1) // 2
