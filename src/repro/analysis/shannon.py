"""Exact availability by Shannon expansion over minimal quorums.

The availability event "the alive set contains some minimal quorum" is a
monotone boolean function in the element states.  We evaluate its
probability by conditioning on one element at a time (Shannon expansion),
memoising on the *canonical residual system* — the set of surviving,
element-reduced, domination-free quorums.  This is equivalent to building
a binary decision diagram for the monotone DNF with a greedy variable
order, and handles the paper's systems (n <= ~105, up to a few thousand
minimal quorums) where 2^n enumeration cannot.

Branching heuristics matter: we always branch on the element occurring in
the largest number of residual quorums, which keeps residuals small for
the grid- and wall-structured systems studied in the paper.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Sequence, Tuple

from ..core.errors import AnalysisError
from ..core.quorum_system import QuorumSystem

#: Safety valve: abort rather than consume unbounded memory.
DEFAULT_MAX_STATES = 2_000_000

_Residual = FrozenSet[int]  # frozenset of quorum bitmasks


def _reduce_masks(masks: Tuple[int, ...]) -> Tuple[int, ...]:
    """Remove dominated quorum masks (supersets of another mask)."""
    by_bits = sorted(set(masks), key=lambda m: bin(m).count("1"))
    kept = []
    for mask in by_bits:
        if not any((mask & other) == other for other in kept):
            kept.append(mask)
    return tuple(kept)


class ShannonEvaluator:
    """Reusable evaluator carrying the memo table across probability points.

    The residual decomposition depends only on the system structure, not on
    the numeric probabilities, but probabilities enter at the leaves of the
    recursion, so the memo table maps residuals to *symbolic* sub-results
    only when probabilities are fixed.  We therefore keep one memo per
    evaluation; the evaluator object just bundles configuration.
    """

    def __init__(self, max_states: int = DEFAULT_MAX_STATES) -> None:
        self.max_states = max_states

    def availability(
        self,
        system: QuorumSystem,
        p: float,
        per_element: Optional[Sequence[float]] = None,
    ) -> float:
        """Probability the alive set contains a quorum."""
        n = system.n
        if per_element is None:
            survive = [1.0 - p] * n
        else:
            if len(per_element) != n:
                raise AnalysisError(
                    f"expected {n} element probabilities, got {len(per_element)}"
                )
            survive = [1.0 - crash for crash in per_element]

        masks = []
        for quorum in system.minimal_quorums():
            mask = 0
            for element in quorum:
                mask |= 1 << element
            masks.append(mask)
        root = frozenset(_reduce_masks(tuple(masks)))

        memo: Dict[_Residual, float] = {}
        sys_max_states = self.max_states

        def count_best_element(residual: _Residual) -> int:
            counts: Dict[int, int] = {}
            for mask in residual:
                m = mask
                while m:
                    low = m & -m
                    bit = low.bit_length() - 1
                    counts[bit] = counts.get(bit, 0) + 1
                    m ^= low
            # Deterministic tie-break on element id for reproducibility.
            return max(counts.items(), key=lambda kv: (kv[1], -kv[0]))[0]

        def solve(residual: _Residual) -> float:
            if not residual:
                return 0.0  # no surviving quorum can ever complete
            if 0 in residual:
                return 1.0  # some quorum fully satisfied
            cached = memo.get(residual)
            if cached is not None:
                return cached
            if len(memo) > sys_max_states:
                raise AnalysisError(
                    "Shannon engine exceeded its state budget"
                    f" ({sys_max_states}); use Monte Carlo instead"
                )
            element = count_best_element(residual)
            bit = 1 << element
            # Element alive: strip it from the quorums that contain it.
            alive_masks = _reduce_masks(
                tuple((m & ~bit) if (m & bit) else m for m in residual)
            )
            # Element dead: quorums containing it can no longer complete.
            dead_masks = tuple(m for m in residual if not (m & bit))
            q_i = survive[element]
            value = q_i * solve(frozenset(alive_masks))
            if dead_masks:
                value += (1.0 - q_i) * solve(frozenset(dead_masks))
            memo[residual] = value
            return value

        return solve(root)


def availability_shannon(
    system: QuorumSystem,
    p: float,
    per_element: Optional[Sequence[float]] = None,
    max_states: int = DEFAULT_MAX_STATES,
) -> float:
    """Module-level convenience wrapper."""
    return ShannonEvaluator(max_states=max_states).availability(
        system, p, per_element
    )


def failure_probability_shannon(
    system: QuorumSystem,
    p: float,
    per_element: Optional[Sequence[float]] = None,
    max_states: int = DEFAULT_MAX_STATES,
) -> float:
    """``F_p(S)`` via Shannon expansion."""
    return 1.0 - availability_shannon(
        system, p, per_element=per_element, max_states=max_states
    )
