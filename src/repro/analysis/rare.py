"""Rare-event estimation of tiny failure probabilities.

At small ``p`` the failure probabilities of the hierarchical systems are
minuscule (h-triang(28) at p = 0.05 is ~1e-7), so naive Monte Carlo sees
zero failures in any reasonable budget.  *Failure biasing* fixes this:
sample crashes from an inflated probability ``p'`` and weight each
sample by its likelihood ratio

    LR(x) = prod_i (p/p')^{x_i} ((1-p)/(1-p'))^{1-x_i},

an unbiased estimator of ``F_p`` whose variance collapses because the
biased sampler actually visits failure states.  Used to validate the
structural recursions deep in their tails, where neither exhaustive
enumeration (n too big) nor naive sampling works.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.errors import AnalysisError
from ..core.quorum_system import QuorumSystem


@dataclass(frozen=True)
class RareEventEstimate:
    """A failure-probability estimate from biased sampling."""

    #: Unbiased point estimate of F_p.
    value: float
    #: Standard error of the estimate.
    standard_error: float
    #: Number of samples drawn under the biased measure.
    samples: int
    #: The inflated crash probability used for sampling.
    biased_p: float
    #: Fraction of biased samples that hit the failure event.
    hit_rate: float

    def relative_error(self) -> float:
        """Standard error over the estimate (NaN when the estimate is 0)."""
        if self.value == 0.0:
            return float("nan")
        return self.standard_error / self.value


def failure_probability_rare(
    system: QuorumSystem,
    p: float,
    biased_p: Optional[float] = None,
    samples: int = 100_000,
    seed: int = 0,
    batch: int = 65_536,
) -> RareEventEstimate:
    """Estimate ``F_p`` by failure-biased importance sampling.

    Parameters
    ----------
    system:
        The quorum system (minimal quorums must be enumerable).
    p:
        The true (small) crash probability.
    biased_p:
        Sampling crash probability; defaults to a heuristic that puts the
        expected number of crashes near the dual's smallest transversal.
    samples:
        Number of biased samples.
    """
    if not 0.0 < p < 1.0:
        raise AnalysisError(f"p must be in (0, 1), got {p}")
    if samples <= 0:
        raise AnalysisError("samples must be positive")
    n = system.n
    if biased_p is None:
        # Push the sampler towards states with enough failures to hit
        # every quorum: c(S) failures are necessary, so aim the mean
        # failure count there (capped away from the extremes).
        biased_p = min(0.5, max(p, system.smallest_quorum_size() / n))
    if not p <= biased_p < 1.0:
        raise AnalysisError(
            f"biased_p must satisfy p <= biased_p < 1, got {biased_p}"
        )

    quorum_rows = [
        np.fromiter(sorted(q), dtype=np.int64) for q in system.minimal_quorums()
    ]
    log_fail_ratio = math.log(p / biased_p)
    log_ok_ratio = math.log((1 - p) / (1 - biased_p))

    rng = np.random.default_rng(seed)
    total = 0.0
    total_sq = 0.0
    hits = 0
    remaining = samples
    while remaining > 0:
        size = min(batch, remaining)
        failed = rng.random((size, n)) < biased_p
        alive = ~failed
        usable = np.zeros(size, dtype=bool)
        for row in quorum_rows:
            usable |= alive[:, row].all(axis=1)
        failure = ~usable
        crash_counts = failed.sum(axis=1)
        log_weights = crash_counts * log_fail_ratio + (n - crash_counts) * log_ok_ratio
        weights = np.where(failure, np.exp(log_weights), 0.0)
        total += float(weights.sum())
        total_sq += float((weights**2).sum())
        hits += int(failure.sum())
        remaining -= size

    mean = total / samples
    variance = max(total_sq / samples - mean**2, 0.0)
    return RareEventEstimate(
        value=mean,
        standard_error=math.sqrt(variance / samples),
        samples=samples,
        biased_p=biased_p,
        hit_rate=hits / samples,
    )
