"""Exact reliability of connectivity events on lattice graphs.

The Paths system of Naor–Wool and the Y system of Kuo–Huang define quorums
through *crossing paths* on planar lattices.  Their availability events
are therefore site-percolation connectivity events:

* Paths: the alive vertex set contains a left–right crossing **and** a
  top–bottom crossing;
* Y: the alive vertex set contains a connected component touching all
  three sides of a triangle.

For the universe sizes in the paper (13–113 vertices) enumeration over
``2^n`` states is impossible, but these events are computable exactly with
a *frontier* (path-decomposition / transfer-matrix) dynamic program: we
sweep the vertices in a fixed order, maintaining for every reachable
configuration the partition of the alive frontier vertices into connected
blocks, the set of terminal groups each block has touched, and the set of
requirements already satisfied by retired blocks.

The engine is generic: callers supply the adjacency, a sweep order, the
terminal groups, and a list of requirements (each a set of groups that one
component must jointly touch).  It also returns the full joint
distribution over satisfied-requirement subsets, which tests use to verify
inclusion–exclusion identities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Iterable, List, Mapping, Sequence, Tuple

from ..core.errors import AnalysisError

Vertex = Hashable

#: Sentinel used in frontier assignments for a dead / absent vertex.
_DEAD = -1


@dataclass(frozen=True)
class ConnectivityProblem:
    """A lattice reliability question.

    Attributes
    ----------
    vertices:
        All lattice sites, in the sweep order used by the DP.  A good
        order keeps the *frontier* (processed vertices that still have
        unprocessed neighbours) small; for grids and triangles, row- or
        column-major order gives frontiers bounded by one row/column.
    adjacency:
        Undirected adjacency mapping.  Only pairs where both endpoints are
        in ``vertices`` are considered.
    groups:
        Terminal groups: name -> vertices belonging to the group (e.g. the
        left border of a grid).
    requirements:
        Each requirement is a set of group names; it is satisfied when a
        single alive connected component touches every named group.
    """

    vertices: Tuple[Vertex, ...]
    adjacency: Mapping[Vertex, FrozenSet[Vertex]]
    groups: Mapping[str, FrozenSet[Vertex]]
    requirements: Tuple[FrozenSet[str], ...]

    def __post_init__(self) -> None:
        vertex_set = set(self.vertices)
        if len(vertex_set) != len(self.vertices):
            raise AnalysisError("duplicate vertices in sweep order")
        for name, members in self.groups.items():
            missing = set(members) - vertex_set
            if missing:
                raise AnalysisError(
                    f"group {name!r} references unknown vertices {missing}"
                )
        for requirement in self.requirements:
            unknown = set(requirement) - set(self.groups)
            if unknown:
                raise AnalysisError(f"requirement uses unknown groups {unknown}")


def solve(
    problem: ConnectivityProblem,
    survive: Mapping[Vertex, float],
) -> Dict[FrozenSet[int], float]:
    """Joint distribution over the set of satisfied requirement indices.

    Parameters
    ----------
    problem:
        The connectivity problem.
    survive:
        Per-vertex survival probability ``q_v``.

    Returns
    -------
    dict mapping each ``frozenset`` of requirement indices to the
    probability that *exactly* those requirements end up satisfied.
    """
    order = problem.vertices
    index_of = {v: i for i, v in enumerate(order)}
    group_names = sorted(problem.groups)
    group_bit = {name: 1 << k for k, name in enumerate(group_names)}
    vertex_group_mask = {
        v: sum(group_bit[name] for name in group_names if v in problem.groups[name])
        for v in order
    }
    requirement_masks = [
        sum(group_bit[name] for name in requirement)
        for requirement in problem.requirements
    ]

    # last_step[v]: index after which v can never matter again.
    last_step: Dict[Vertex, int] = {}
    for v in order:
        latest = index_of[v]
        for neighbour in problem.adjacency.get(v, ()):  # type: ignore[arg-type]
            if neighbour in index_of:
                latest = max(latest, index_of[neighbour])
        last_step[v] = latest

    # A state is (assignment, block_masks, satisfied):
    #   assignment: tuple aligned with the current frontier vertex list,
    #     entries are _DEAD or a canonical block id;
    #   block_masks: tuple of touched-group bitmasks indexed by block id;
    #   satisfied: bitmask over requirements already locked in.
    State = Tuple[Tuple[int, ...], Tuple[int, ...], int]
    states: Dict[State, float] = {((), (), 0): 1.0}
    frontier: List[Vertex] = []

    def canonicalise(
        assignment: List[int], block_masks: Dict[int, int], satisfied: int
    ) -> State:
        relabel: Dict[int, int] = {}
        canon_assignment = []
        canon_masks: List[int] = []
        for block in assignment:
            if block == _DEAD:
                canon_assignment.append(_DEAD)
                continue
            if block not in relabel:
                relabel[block] = len(canon_masks)
                canon_masks.append(block_masks[block])
            canon_assignment.append(relabel[block])
        return tuple(canon_assignment), tuple(canon_masks), satisfied

    def retire_block(mask: int, satisfied: int) -> int:
        for req_index, req_mask in enumerate(requirement_masks):
            if (mask & req_mask) == req_mask:
                satisfied |= 1 << req_index
        return satisfied

    for step, vertex in enumerate(order):
        q_v = survive[vertex]
        if not 0.0 <= q_v <= 1.0:
            raise AnalysisError(f"survival probability of {vertex!r} is {q_v}")
        neighbour_slots = [
            slot
            for slot, frontier_vertex in enumerate(frontier)
            if frontier_vertex in problem.adjacency.get(vertex, frozenset())
        ]
        new_states: Dict[State, float] = {}

        def emit(state: State, probability: float) -> None:
            if probability > 0.0:
                new_states[state] = new_states.get(state, 0.0) + probability

        retiring = [
            slot
            for slot, frontier_vertex in enumerate(frontier)
            if last_step[frontier_vertex] <= step
        ]
        vertex_retires = last_step[vertex] <= step

        for (assignment, block_masks, satisfied), probability in states.items():
            # --- vertex dies -------------------------------------------------
            dead_assignment = list(assignment) + ([] if vertex_retires else [_DEAD])
            dead_masks = dict(enumerate(block_masks))
            dead_satisfied = satisfied
            dead_assignment, dead_masks, dead_satisfied = _drop_slots(
                dead_assignment, dead_masks, dead_satisfied, retiring, retire_block
            )
            emit(
                canonicalise(dead_assignment, dead_masks, dead_satisfied),
                probability * (1.0 - q_v),
            )

            # --- vertex survives ---------------------------------------------
            masks = dict(enumerate(block_masks))
            merged_blocks = sorted(
                {assignment[slot] for slot in neighbour_slots if assignment[slot] != _DEAD}
            )
            new_mask = vertex_group_mask[vertex]
            for block in merged_blocks:
                new_mask |= masks[block]
            if merged_blocks:
                target = merged_blocks[0]
            else:
                target = max(masks, default=-1) + 1
            masks[target] = new_mask
            alive_assignment = [
                target if block in merged_blocks else block for block in assignment
            ]
            for block in merged_blocks[1:]:
                masks.pop(block, None)
            alive_satisfied = satisfied
            if vertex_retires:
                # The vertex leaves immediately; its block may still live on
                # through merged frontier vertices.
                if target not in alive_assignment:
                    alive_satisfied = retire_block(masks.pop(target), alive_satisfied)
            else:
                alive_assignment.append(target)
            alive_assignment, masks, alive_satisfied = _drop_slots(
                alive_assignment, masks, alive_satisfied, retiring, retire_block
            )
            emit(
                canonicalise(alive_assignment, masks, alive_satisfied),
                probability * q_v,
            )

        frontier = [
            frontier_vertex
            for frontier_vertex in frontier
            if last_step[frontier_vertex] > step
        ]
        if not vertex_retires:
            frontier.append(vertex)
        states = new_states

    distribution: Dict[FrozenSet[int], float] = {}
    for (assignment, block_masks, satisfied), probability in states.items():
        # All vertices processed: any remaining blocks retire now.
        final_satisfied = satisfied
        for mask in block_masks:
            final_satisfied = retire_block(mask, final_satisfied)
        key = frozenset(
            i for i in range(len(requirement_masks)) if final_satisfied & (1 << i)
        )
        distribution[key] = distribution.get(key, 0.0) + probability
    return distribution


def _drop_slots(assignment, masks, satisfied, retiring, retire_block):
    """Remove retiring frontier slots, finalising emptied blocks."""
    if not retiring:
        return assignment, masks, satisfied
    retiring_set = set(retiring)
    kept = [block for slot, block in enumerate(assignment) if slot not in retiring_set]
    for slot in retiring:
        block = assignment[slot]
        if block != _DEAD and block not in kept:
            if block in masks:
                satisfied = retire_block(masks.pop(block), satisfied)
    return kept, masks, satisfied


def probability_all_satisfied(
    problem: ConnectivityProblem, survive: Mapping[Vertex, float]
) -> float:
    """Probability that every requirement is satisfied."""
    everything = frozenset(range(len(problem.requirements)))
    distribution = solve(problem, survive)
    return sum(
        probability
        for satisfied, probability in distribution.items()
        if satisfied == everything
    )


def uniform_survival(vertices: Iterable[Vertex], q: float) -> Dict[Vertex, float]:
    """Convenience: identical survival probability for every vertex."""
    return {v: q for v in vertices}
