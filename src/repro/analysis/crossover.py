"""Crossover analysis between quorum systems.

The paper's comparisons implicitly contain crossover structure: e.g. the
majority beats h-triang at every ``p < 1/2`` (Prop. 3.2) but pays 60%
more per quorum; the h-T-grid beats the flat grid with a margin that
grows with ``p``; the singleton overtakes everything at ``p = 1/2``.
This module locates such crossings numerically.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..core.errors import AnalysisError
from ..core.quorum_system import QuorumSystem


def failure_difference(
    first: QuorumSystem, second: QuorumSystem
) -> Callable[[float], float]:
    """``p -> F_p(first) - F_p(second)``."""

    def difference(p: float) -> float:
        return first.failure_probability(p) - second.failure_probability(p)

    return difference


def find_crossover(
    first: QuorumSystem,
    second: QuorumSystem,
    low: float = 1e-6,
    high: float = 0.5,
    tolerance: float = 1e-9,
    max_iterations: int = 200,
) -> Optional[float]:
    """The crash probability where the two failure curves cross in
    ``(low, high)``, or ``None`` when one dominates throughout.

    Uses bisection on the (continuous) difference; if the sign is equal
    at both ends the caller learns there is no crossing in the interval.
    """
    if not 0.0 <= low < high <= 1.0:
        raise AnalysisError(f"bad interval [{low}, {high}]")
    difference = failure_difference(first, second)
    f_low, f_high = difference(low), difference(high)
    if f_low == 0.0:
        return low
    if f_high == 0.0:
        return high
    if (f_low > 0) == (f_high > 0):
        return None
    for _ in range(max_iterations):
        mid = (low + high) / 2
        f_mid = difference(mid)
        if abs(f_mid) < tolerance or high - low < tolerance:
            return mid
        if (f_mid > 0) == (f_low > 0):
            low, f_low = mid, f_mid
        else:
            high = mid
    return (low + high) / 2


def dominance_interval(
    first: QuorumSystem,
    second: QuorumSystem,
    points: int = 51,
    high: float = 0.5,
) -> List[Tuple[float, bool]]:
    """Sampled ``(p, first_is_better)`` pairs over ``(0, high]``.

    Convenience for reports: shows where each system wins without
    assuming a single crossing.
    """
    if points < 2:
        raise AnalysisError("need at least two sample points")
    samples = []
    for i in range(1, points + 1):
        p = high * i / points
        samples.append(
            (p, first.failure_probability(p) < second.failure_probability(p))
        )
    return samples
