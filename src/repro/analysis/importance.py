"""Element criticality: Birnbaum importance of quorum-system members.

Availability is a multilinear function of the per-element survival
probabilities, so the *Birnbaum importance* of element ``i``,

    I_i  =  dA/dq_i  =  A(q_i = 1) - A(q_i = 0),

measures how much system availability gains per unit of element-``i``
reliability — the right metric for deciding which replica to place on
better hardware, which the paper's symmetric constructions make
deliciously boring (every element of h-triang matters exactly equally)
and the asymmetric ones make interesting (a wall's top row is nearly
irrelevant at small ``p``; the h-T-grid's bottom rows dominate).

Computed through :meth:`QuorumSystem.availability_heterogeneous`, so
structured systems get exact importances at any size.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..core.errors import AnalysisError
from ..core.quorum_system import QuorumSystem


def birnbaum_importance(
    system: QuorumSystem, p: float, element: int
) -> float:
    """``dA/dq_i`` at the iid point ``q = 1 - p``."""
    if not 0.0 <= p <= 1.0:
        raise AnalysisError(f"crash probability must be in [0, 1], got {p}")
    if not 0 <= element < system.n:
        raise AnalysisError(f"element {element} outside universe of size {system.n}")
    survive = [1.0 - p] * system.n
    survive[element] = 1.0
    high = system.availability_heterogeneous(survive)
    survive[element] = 0.0
    low = system.availability_heterogeneous(survive)
    return high - low


def importance_profile(system: QuorumSystem, p: float) -> np.ndarray:
    """Birnbaum importance of every element at the iid point."""
    return np.array(
        [birnbaum_importance(system, p, element) for element in system.universe.ids]
    )


def most_critical_elements(
    system: QuorumSystem, p: float, count: int = 3
) -> List[Tuple[int, float]]:
    """The ``count`` highest-importance elements as ``(id, importance)``."""
    profile = importance_profile(system, p)
    order = np.argsort(-profile)[:count]
    return [(int(i), float(profile[i])) for i in order]


def importance_identity_check(system: QuorumSystem, p: float) -> Tuple[float, float]:
    """Both sides of the multilinearity identity

        dA/dp = - sum_i I_i   (chain rule through q_i = 1 - p),

    returned as (finite-difference derivative, -sum of importances).
    Used by tests to validate every structured heterogeneous recursion.
    """
    step = 1e-6
    a_plus = 1.0 - system.failure_probability(min(1.0, p + step))
    a_minus = 1.0 - system.failure_probability(max(0.0, p - step))
    derivative = (a_plus - a_minus) / (2 * step)
    return derivative, -float(importance_profile(system, p).sum())


def improvement_potential(system: QuorumSystem, p: float, element: int) -> float:
    """Availability gained by making one element perfectly reliable."""
    survive = [1.0 - p] * system.n
    baseline = system.availability_heterogeneous(survive)
    survive[element] = 1.0
    return system.availability_heterogeneous(survive) - baseline
