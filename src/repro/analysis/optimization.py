"""Construction-space search: design the best system for given n and p.

§4.3 of the paper observes that the h-T-grid prefers *slightly
rectangular* grids — a single data point in a larger design question:
given ``n`` elements and a crash probability, which member of a
construction family maximises availability?  The exact DPs make this
searchable:

* :func:`best_wall` scans integer partitions of ``n`` (as non-decreasing
  row widths, the shape crumbling walls want) with the O(d) wall DP —
  thousands of candidates per second;
* :func:`best_grid_shape` scans the factorisations of ``n`` for the
  hierarchical grid (closed form) and the h-T-grid (Shannon engine);
* :func:`best_triangle_growth` picks the §5 growth rule with the best
  availability return per added element.

These return the optimum and the full ranking, so ablation benchmarks
can show *how much* design freedom is worth.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..core.errors import AnalysisError
from ..systems.walls import CrumblingWallQuorumSystem


def partitions_nondecreasing(
    total: int, max_parts: Optional[int] = None, smallest: int = 1
) -> Iterator[Tuple[int, ...]]:
    """Integer partitions of ``total`` as non-decreasing tuples."""
    if total == 0:
        yield ()
        return
    limit = max_parts if max_parts is not None else total
    if limit <= 0:
        return
    for first in range(smallest, total + 1):
        if first > total:
            break
        for rest in partitions_nondecreasing(total - first, limit - 1, first):
            yield (first,) + rest


def best_wall(
    n: int,
    p: float,
    max_rows: Optional[int] = None,
    top: int = 5,
) -> List[Tuple[Tuple[int, ...], float]]:
    """The ``top`` wall shapes (non-decreasing widths) by failure
    probability at ``p``.

    Partition counts grow quickly: n = 24 has 1575 shapes, n = 30 has
    5604 — each evaluated by the O(d) wall DP.  Guarded to n <= 40.
    """
    if n > 40:
        raise AnalysisError(f"wall design search supports n <= 40, got {n}")
    if not 0.0 < p < 1.0:
        raise AnalysisError(f"p must be in (0, 1), got {p}")
    ranked: List[Tuple[Tuple[int, ...], float]] = []
    for widths in partitions_nondecreasing(n, max_parts=max_rows):
        system = CrumblingWallQuorumSystem(widths)
        ranked.append((widths, system.failure_probability_exact(p)))
    ranked.sort(key=lambda item: (item[1], len(item[0])))
    return ranked[:top]


def grid_shapes(n: int, allow_near: bool = False) -> List[Tuple[int, int]]:
    """(rows, cols) factorisations of ``n`` (optionally n-1 / n+1 too)."""
    candidates = {n} | ({n - 1, n + 1} if allow_near else set())
    shapes = set()
    for total in candidates:
        for rows in range(1, total + 1):
            if total % rows == 0:
                shapes.add((rows, total // rows))
    return sorted(shapes)


def best_grid_shape(
    n: int,
    p: float,
    system: str = "h-grid",
    top: int = 5,
) -> List[Tuple[Tuple[int, int], float]]:
    """The best ``rows x cols`` shapes for the (hierarchical) grid family.

    ``system`` is ``"h-grid"`` (closed form, any size), ``"h-t-grid"``
    (Shannon engine; practical to ~n = 30) or ``"grid"`` (flat closed
    form).
    """
    from ..systems.grid import GridQuorumSystem
    from ..systems.hgrid import HierarchicalGrid
    from ..systems.htgrid import HierarchicalTGrid

    if not 0.0 < p < 1.0:
        raise AnalysisError(f"p must be in (0, 1), got {p}")
    ranked: List[Tuple[Tuple[int, int], float]] = []
    for rows, cols in grid_shapes(n):
        if rows == 1 or cols == 1:
            continue  # degenerate lines
        if system == "h-grid":
            value = HierarchicalGrid.halving(rows, cols).failure_probability_exact(p)
        elif system == "h-t-grid":
            if rows * cols > 30:
                raise AnalysisError(
                    "h-T-grid shape search needs n <= 30 (Shannon engine)"
                )
            value = HierarchicalTGrid.halving(rows, cols).failure_probability(
                p, method="shannon"
            )
        elif system == "grid":
            value = GridQuorumSystem(rows, cols).failure_probability_exact(p)
        else:
            raise AnalysisError(f"unknown grid family {system!r}")
        ranked.append(((rows, cols), value))
    if not ranked:
        raise AnalysisError(f"{n} admits no non-degenerate grid shapes")
    ranked.sort(key=lambda item: item[1])
    return ranked[:top]


def best_triangle_growth(
    triangle, p: float
) -> Tuple[str, Dict[str, Tuple[int, float, float]]]:
    """Rank the §5 growth rules by availability gain per added element.

    Returns the winning rule name and, per rule, ``(elements added,
    new failure probability, gain per element)``.
    """
    if not 0.0 < p < 1.0:
        raise AnalysisError(f"p must be in (0, 1), got {p}")
    baseline = triangle.failure_probability(p)
    outcomes: Dict[str, Tuple[int, float, float]] = {}
    for rule in ("t1", "t2", "grid"):
        grown = triangle.grown(rule)
        value = grown.failure_probability(p)
        added = grown.n - triangle.n
        outcomes[rule] = (added, value, (baseline - value) / added)
    winner = max(outcomes, key=lambda rule: outcomes[rule][2])
    return winner, outcomes
