"""System load: lower bounds, LP-exact computation, strategy evaluation.

Definition 3.4 of the paper: the load of a strategy is the access
probability of the busiest element; the *system load* minimises this over
all strategies.  Finding the minimising strategy is a linear program

    minimise t
    subject to   sum_j w_j = 1,   w_j >= 0,
                 for every element i:  sum_{j : i in S_j} w_j <= t,

solved here with ``scipy.optimize.linprog``.  Proposition 3.3 gives the
lower bounds ``L(S) >= c(S)/n`` and ``L(S) >= 1/c(S)`` (hence
``L(S) >= 1/sqrt(n)``), which we expose for tests and for the Table 4/5
reproductions.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import linprog

from ..core.errors import AnalysisError
from ..core.quorum_system import Quorum, QuorumSystem
from ..core.strategy import Strategy

#: LP sizes beyond this are refused in "auto" mode (callers should rely on
#: a structural ``load_exact`` override or an explicit strategy instead).
MAX_LP_QUORUMS = 200_000


def load_lower_bounds(system: QuorumSystem) -> Tuple[float, float]:
    """Proposition 3.3 bounds ``(c(S)/n, 1/c(S))``."""
    c = system.smallest_quorum_size()
    return c / system.n, 1.0 / c


def load_lower_bound(system: QuorumSystem) -> float:
    """The binding Prop. 3.3 bound, ``max(c/n, 1/c) >= 1/sqrt(n)``."""
    return max(load_lower_bounds(system))


def optimal_strategy(
    system: QuorumSystem, quorums: Optional[Sequence[Quorum]] = None
) -> Strategy:
    """Load-minimising strategy over the given support via linear programming.

    This optimises the *unified* (write-legal) load: every operation —
    read or write — draws from one distribution over full quorums of the
    system, which is what Definition 3.4's ``L(S)`` measures.  Workloads
    that are mostly reads can do strictly better by serving reads from
    the smaller read-quorum family; use :func:`read_write_optimal` (the
    capacity LP of :mod:`repro.analysis.capacity`) for that split.

    Parameters
    ----------
    system:
        The quorum system.
    quorums:
        Support of the strategy; defaults to all minimal quorums, which
        yields the true system load ``L(S)`` (restricting to minimal
        quorums never hurts: shrinking a quorum only lowers loads).
    """
    support = tuple(frozenset(q) for q in (quorums or system.minimal_quorums()))
    m = len(support)
    if m > MAX_LP_QUORUMS:
        raise AnalysisError(
            f"LP over {m} quorums exceeds the {MAX_LP_QUORUMS} cap;"
            " use a structural load formula or an explicit strategy"
        )
    n = system.n
    # Variables: w_0..w_{m-1}, t.  Minimise t.
    c = np.zeros(m + 1)
    c[m] = 1.0
    # Inequalities: for each element i, sum_{j: i in S_j} w_j - t <= 0.
    a_ub = np.zeros((n, m + 1))
    for j, quorum in enumerate(support):
        for i in quorum:
            a_ub[i, j] = 1.0
    a_ub[:, m] = -1.0
    b_ub = np.zeros(n)
    # Equality: weights sum to one.
    a_eq = np.zeros((1, m + 1))
    a_eq[0, :m] = 1.0
    b_eq = np.array([1.0])
    bounds = [(0.0, None)] * m + [(0.0, 1.0)]
    result = linprog(
        c, A_ub=a_ub, b_ub=b_ub, A_eq=a_eq, b_eq=b_eq, bounds=bounds, method="highs"
    )
    if not result.success:
        raise AnalysisError(f"load LP failed: {result.message}")
    weights = np.clip(result.x[:m], 0.0, None)
    weights /= weights.sum()
    return Strategy(system, support, weights)


def read_write_optimal(system: QuorumSystem, **kwargs):
    """Throughput-optimal read/write strategy pair for a mixed workload.

    Convenience façade over the capacity LP: accepts the same keyword
    arguments as :func:`repro.analysis.capacity.read_write_capacity`
    (``read_fraction``, per-node capacities, ``f``, ``min_intersection``)
    and returns the optimal
    :class:`~repro.core.rwstrategy.ReadWriteStrategy`.  Use the capacity
    module directly when the predicted capacity itself is needed.
    """
    from .capacity import read_write_capacity

    return read_write_capacity(system, **kwargs).strategy


def system_load(
    system: QuorumSystem,
    method: str = "auto",
    quorums: Optional[Sequence[Quorum]] = None,
) -> float:
    """System load ``L(S)``.

    Methods
    -------
    ``auto``
        Structural formula if the construction provides one, else LP.
    ``lp``
        Force the LP over minimal quorums (or the given support).
    ``lower-bound``
        The Prop. 3.3 bound only (cheap, always valid).
    """
    if method == "auto":
        structural = load_exact_structural(system)
        if structural is not None:
            return structural
        method = "lp"
    if method == "lp":
        return optimal_strategy(system, quorums=quorums).induced_load()
    if method == "lower-bound":
        return load_lower_bound(system)
    raise AnalysisError(f"unknown load method {method!r}")


def load_exact_structural(system: QuorumSystem) -> Optional[float]:
    """Structural load override, when the construction defines one."""
    exact = getattr(system, "load_exact", None)
    if exact is None:
        return None
    return exact()


def verify_load_bounds(system: QuorumSystem, load: float, tolerance: float = 1e-7) -> bool:
    """Check a claimed load value against Prop. 3.3 (used in tests)."""
    bound = load_lower_bound(system)
    return load >= bound - tolerance and load <= 1.0 + tolerance


def element_transitive_load(system: QuorumSystem) -> float:
    """Load of a system whose automorphism group is transitive on elements
    *and* whose minimal quorums all have the same size ``s``: the uniform
    strategy balances perfectly and the load is exactly ``s / n``.

    Used by symmetric constructions (majority, balanced HQS, h-triang) to
    avoid the LP; the caller is responsible for the symmetry claim, which
    the test suite validates against the LP on small instances.
    """
    sizes = system.quorum_sizes()
    if sizes[0] != sizes[-1]:
        raise AnalysisError(
            "element_transitive_load requires uniform quorum size"
        )
    return sizes[0] / system.n
