"""Workload-aware capacity LP for read/write strategy pairs.

"Read-Write Quorum Systems Made Practical" (Whittaker-Charapko-
Hellerstein) observes that once reads and writes draw from separate
quorum families, the throughput-maximising pair of distributions is a
linear program over the workload.  With read weights ``x_r``, write
weights ``y_w``, per-node read/write capacities ``rc_i`` / ``wc_i`` and
a read-fraction distribution ``{fr_k: p_k}``:

    minimise   sum_k p_k t_k
    subject to sum_r x_r = 1,   sum_w y_w = 1,   x, y, t >= 0,
               for every fraction k and node i:
                   fr_k  * sum_{r: i in r} x_r / rc_i
                 + (1-fr_k) * sum_{w: i in w} y_w / wc_i  <=  t_k

The objective is the expected busiest-node work per client operation;
its reciprocal is the system *capacity* in per-node-throughput units (a
node serving ``mu`` ops/s sustains ``mu / load`` client ops/s overall).
A point workload is the single-fraction special case; the f-resilient
variant only weights quorums that remain functional after any ``f``
crashes, trading capacity for fault-tolerant predictability.

The read family comes from the construction's ``read_quorums()`` hook
(grids expose row covers, h-triang its recursive cover/line families);
systems without one fall back to the minimal transversals of the write
family — the dual — which for self-dual systems (majority) honestly
yields no capacity gain.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np
from scipy.optimize import linprog

from ..core import bitpack
from ..core.errors import AnalysisError
from ..core.quorum_system import Quorum, QuorumSystem
from ..core.rwstrategy import ReadWriteStrategy
from ..core.strategy import Strategy
from .load import MAX_LP_QUORUMS

#: Cap on f-resilient candidate generation (unions of base quorums).
MAX_RESILIENT_CANDIDATES = 4096

ReadFraction = Union[float, Mapping[float, float]]
Capacities = Union[float, Sequence[float]]


def read_quorums_of(system: QuorumSystem) -> List[Quorum]:
    """The read-quorum family a system serves split reads from.

    Prefers the construction's own ``read_quorums()`` (row covers,
    hierarchical covers, the h-triang recursive families); otherwise
    falls back to the minimal quorums of the dual system — the minimal
    transversals of the write family, i.e. the smallest sets guaranteed
    to intersect every write quorum.
    """
    hook = getattr(system, "read_quorums", None)
    if hook is not None:
        return [frozenset(q) for q in hook()]
    return [frozenset(q) for q in system.dual().minimal_quorums()]


@dataclass(frozen=True)
class CapacityResult:
    """Outcome of the capacity LP.

    ``capacity`` is in per-node-throughput units: multiply by a node's
    service rate (ops/s) to predict sustainable client ops/s.  ``load``
    is its reciprocal — the expected busiest-node work per client op.
    """

    strategy: ReadWriteStrategy
    capacity: float
    load: float
    read_fraction: Dict[float, float]
    per_fraction_loads: Dict[float, float]
    read_quorum_count: int
    write_quorum_count: int
    f: int
    min_intersection: int
    unified_read_fallback: bool

    def to_dict(self) -> Dict[str, object]:
        """JSON-able summary (without the strategy object)."""
        return {
            "capacity": self.capacity,
            "load": self.load,
            "read_fraction": {str(k): v for k, v in self.read_fraction.items()},
            "per_fraction_loads": {
                str(k): v for k, v in self.per_fraction_loads.items()
            },
            "read_quorum_count": self.read_quorum_count,
            "write_quorum_count": self.write_quorum_count,
            "f": self.f,
            "min_intersection": self.min_intersection,
            "unified_read_fallback": self.unified_read_fallback,
        }


def _normalize_fractions(read_fraction: ReadFraction) -> Dict[float, float]:
    if isinstance(read_fraction, Mapping):
        items = {float(k): float(v) for k, v in read_fraction.items()}
    else:
        items = {float(read_fraction): 1.0}
    if not items:
        raise AnalysisError("read fraction distribution is empty")
    for fr, weight in items.items():
        if not 0.0 <= fr <= 1.0:
            raise AnalysisError(f"read fraction {fr} outside [0, 1]")
        if weight < 0.0:
            raise AnalysisError(f"read fraction weight {weight} is negative")
    total = sum(items.values())
    if total <= 0.0:
        raise AnalysisError("read fraction weights sum to zero")
    return {fr: weight / total for fr, weight in sorted(items.items())}


def _normalize_capacity(capacity: Capacities, n: int, label: str) -> np.ndarray:
    array = (
        np.full(n, float(capacity))
        if np.isscalar(capacity)
        else np.asarray(capacity, dtype=float)
    )
    if array.shape != (n,):
        raise AnalysisError(
            f"{label} capacity must be a scalar or length-{n} sequence"
        )
    if (array <= 0.0).any():
        raise AnalysisError(f"{label} capacities must be positive")
    return array


def _min_intersections(
    reads: Sequence[Quorum], writes: Sequence[Quorum], n: int
) -> np.ndarray:
    """Per-read-quorum minimum intersection size with the write family."""
    packed_writes = bitpack.pack_rows(writes, n)
    return np.array(
        [
            int(
                bitpack.intersection_sizes(
                    packed_writes, bitpack.pack_one(q, n)
                ).min()
            )
            for q in reads
        ]
    )


def _resilient_candidates(base: Sequence[Quorum], f: int) -> List[Quorum]:
    """Base quorums plus unions of up to ``f + 1`` of them (deduplicated).

    A single minimal quorum rarely survives crashes; unions of a few
    fatten the support enough for the resilience filter to keep
    something.  Candidate growth is capped — the LP does not need every
    resilient set, just a reasonable support.
    """
    seen = set(base)
    candidates = list(base)
    for count in range(2, f + 2):
        for combo in itertools.combinations(base, count):
            union = frozenset().union(*combo)
            if union not in seen:
                seen.add(union)
                candidates.append(union)
            if len(candidates) >= MAX_RESILIENT_CANDIDATES:
                return candidates
    return candidates


def _filter_resilient_reads(
    candidates: Sequence[Quorum], writes: Sequence[Quorum], n: int, f: int
) -> List[Quorum]:
    """Read candidates that intersect every write quorum after any f crashes."""
    packed_writes = bitpack.pack_rows(writes, n)
    kept = []
    for quorum in candidates:
        members = sorted(quorum)
        drop = min(f, len(members))
        if all(
            bool(
                bitpack.intersects(
                    packed_writes, bitpack.pack_one(set(members) - set(gone), n)
                ).all()
            )
            for gone in itertools.combinations(members, drop)
        ):
            kept.append(quorum)
    return kept


def _filter_resilient_writes(
    candidates: Sequence[Quorum], system: QuorumSystem, f: int
) -> List[Quorum]:
    """Write candidates that still contain a quorum after any f crashes."""
    kept = []
    for quorum in candidates:
        members = sorted(quorum)
        drop = min(f, len(members))
        if all(
            system.contains_quorum(frozenset(members) - frozenset(gone))
            for gone in itertools.combinations(members, drop)
        ):
            kept.append(quorum)
    return kept


def read_write_capacity(
    system: QuorumSystem,
    *,
    read_fraction: ReadFraction = 0.9,
    read_quorums: Optional[Sequence[Quorum]] = None,
    write_quorums: Optional[Sequence[Quorum]] = None,
    read_capacity: Capacities = 1.0,
    write_capacity: Optional[Capacities] = None,
    f: int = 0,
    min_intersection: int = 1,
) -> CapacityResult:
    """Throughput-optimal read/write strategy pair via the capacity LP.

    Parameters
    ----------
    system:
        The quorum system to serve.
    read_fraction:
        Point fraction (``0.9``) or weighted mixture (``{0.5: 1, 0.9: 2}``)
        of reads in the workload.
    read_quorums / write_quorums:
        Explicit families; default to :func:`read_quorums_of` and the
        system's minimal quorums.
    read_capacity / write_capacity:
        Per-node service rates (scalar or per-element).  ``write_capacity``
        defaults to ``read_capacity`` (reads and writes cost the same).
    f:
        Only weight quorums that stay functional after any ``f`` crashes.
    min_intersection:
        Require ``|R ∩ W| >= min_intersection`` for every support pair.
        Byzantine voted reads pass ``2b + 1``; if no read quorum
        qualifies, reads fall back to the write family (which a
        validated b-masking system guarantees to pairwise intersect
        deeply enough) and ``unified_read_fallback`` is set.
    """
    if f < 0:
        raise AnalysisError(f"f must be >= 0, got {f}")
    if min_intersection < 1:
        raise AnalysisError(
            f"min_intersection must be >= 1, got {min_intersection}"
        )
    n = system.n
    fractions = _normalize_fractions(read_fraction)
    read_caps = _normalize_capacity(read_capacity, n, "read")
    write_caps = _normalize_capacity(
        read_capacity if write_capacity is None else write_capacity, n, "write"
    )

    writes = [
        frozenset(q)
        for q in (write_quorums if write_quorums is not None else system.minimal_quorums())
    ]
    reads = [
        frozenset(q)
        for q in (read_quorums if read_quorums is not None else read_quorums_of(system))
    ]
    if not writes or not reads:
        raise AnalysisError("capacity LP needs non-empty read and write families")

    if f > 0:
        writes = _filter_resilient_writes(_resilient_candidates(writes, f), system, f)
        if not writes:
            raise AnalysisError(f"no write quorum survives every {f}-crash pattern")
        reads = _filter_resilient_reads(_resilient_candidates(reads, f), writes, n, f)
        if not reads:
            raise AnalysisError(f"no read quorum survives every {f}-crash pattern")

    unified_read_fallback = False
    if min_intersection > 1:
        depths = _min_intersections(reads, writes, n)
        deep_enough = [q for q, d in zip(reads, depths) if d >= min_intersection]
        if not deep_enough:
            # Voted reads need |R ∩ W| >= 2b+1; when the read family is
            # too shallow (masking systems' duals are), serve reads from
            # the write family instead — still a split pair, the LP just
            # optimises both distributions over the same support.
            write_depths = _min_intersections(writes, writes, n)
            deep_enough = [
                q for q, d in zip(writes, write_depths) if d >= min_intersection
            ]
            unified_read_fallback = True
            if not deep_enough:
                raise AnalysisError(
                    f"no quorum family reaches pairwise intersection"
                    f" {min_intersection}; the system cannot serve voted reads"
                )
        reads = deep_enough

    m_reads, m_writes, k = len(reads), len(writes), len(fractions)
    if m_reads + m_writes > MAX_LP_QUORUMS:
        raise AnalysisError(
            f"capacity LP over {m_reads + m_writes} quorums exceeds the"
            f" {MAX_LP_QUORUMS} cap; restrict the families first"
        )

    read_membership = bitpack.membership_matrix(reads, n)  # (m_reads, n)
    write_membership = bitpack.membership_matrix(writes, n)
    # Variables: x (m_reads), y (m_writes), t (k).  Minimise sum p_k t_k.
    total = m_reads + m_writes + k
    cost = np.zeros(total)
    weights = list(fractions.values())
    cost[m_reads + m_writes :] = weights
    a_ub = np.zeros((n * k, total))
    for idx, fr in enumerate(fractions):
        rows = slice(idx * n, (idx + 1) * n)
        a_ub[rows, :m_reads] = fr * (read_membership / read_caps[None, :]).T
        a_ub[rows, m_reads : m_reads + m_writes] = (1.0 - fr) * (
            write_membership / write_caps[None, :]
        ).T
        a_ub[rows, m_reads + m_writes + idx] = -1.0
    b_ub = np.zeros(n * k)
    a_eq = np.zeros((2, total))
    a_eq[0, :m_reads] = 1.0
    a_eq[1, m_reads : m_reads + m_writes] = 1.0
    b_eq = np.ones(2)
    result = linprog(
        cost,
        A_ub=a_ub,
        b_ub=b_ub,
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=[(0.0, None)] * total,
        method="highs",
    )
    if not result.success:
        raise AnalysisError(f"capacity LP failed: {result.message}")
    x = np.clip(result.x[:m_reads], 0.0, None)
    y = np.clip(result.x[m_reads : m_reads + m_writes], 0.0, None)
    t = result.x[m_reads + m_writes :]
    load = float(cost[m_reads + m_writes :] @ t)
    if load <= 0.0:
        raise AnalysisError("capacity LP produced a degenerate zero load")
    strategy = ReadWriteStrategy(
        system,
        Strategy(system, reads, x / x.sum(), validate_quorums=False),
        Strategy(system, writes, y / y.sum()),
    )
    return CapacityResult(
        strategy=strategy,
        capacity=1.0 / load,
        load=load,
        read_fraction=fractions,
        per_fraction_loads={
            fr: float(t[idx]) for idx, fr in enumerate(fractions)
        },
        read_quorum_count=m_reads,
        write_quorum_count=m_writes,
        f=f,
        min_intersection=min_intersection,
        unified_read_fallback=unified_read_fallback,
    )
