"""Failure-aware quorum selection.

§4.3 of the paper closes its strategy discussion with: "In real
situations, the strategy to be used should be adapted taking into
consideration the elements that are failed (as it should also be done in
h-grid)."  This module implements that adaptation:

* :func:`live_quorums` / :func:`find_live_quorum` — exact search for
  quorums avoiding a known-failed set (the clairvoyant baseline whose
  success probability *is* the paper's availability);
* :class:`FailureAwareSelector` — a practical selector that starts from
  a base strategy, skips quorums hitting suspected-failed elements, and
  falls back to an exact scan; it keeps the base strategy's load profile
  while failures are absent and degrades to best-possible availability
  when they are present.

The ablation benchmark quantifies the gap this closes versus blindly
sampling quorums.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Optional, Sequence

import numpy as np

from ..core.errors import AnalysisError
from ..core.quorum_system import Quorum, QuorumSystem
from ..core.strategy import Strategy


def live_quorums(system: QuorumSystem, failed: Iterable[int]) -> List[Quorum]:
    """All minimal quorums that avoid every element of ``failed``."""
    failed_set = frozenset(failed)
    return [q for q in system.minimal_quorums() if not (q & failed_set)]


def find_live_quorum(
    system: QuorumSystem,
    failed: Iterable[int],
    prefer: str = "smallest",
) -> Optional[Quorum]:
    """One quorum avoiding the failed set, or ``None`` when the system is
    unavailable under these failures (the Def. 3.2 failure event).

    ``prefer`` selects among the survivors: ``"smallest"`` (fewest
    messages) or ``"first"`` (deterministic order).
    """
    candidates = live_quorums(system, failed)
    if not candidates:
        return None
    if prefer == "smallest":
        return min(candidates, key=lambda q: (len(q), sorted(q)))
    if prefer == "first":
        return candidates[0]
    raise AnalysisError(f"unknown preference {prefer!r}")


class FailureAwareSelector:
    """Quorum selector that adapts to suspected failures.

    Parameters
    ----------
    strategy:
        Base strategy used while no failures are suspected (e.g. the §5
        balanced strategy), preserving its load profile.
    max_resamples:
        How many strategy samples to try before falling back to the
        exact live-quorum scan.

    The selector maintains a *suspicion set* fed by the caller (timeouts,
    failure detectors).  Suspicions are soft state: :meth:`clear` or
    :meth:`unsuspect` withdraw them, matching the paper's transient
    failures.
    """

    def __init__(self, strategy: Strategy, max_resamples: int = 8) -> None:
        if max_resamples < 1:
            raise AnalysisError("max_resamples must be >= 1")
        self.strategy = strategy
        self.max_resamples = max_resamples
        self._suspected: set = set()
        self.samples_drawn = 0
        self.fallback_scans = 0

    # ------------------------------------------------------------------
    @property
    def system(self) -> QuorumSystem:
        """The underlying quorum system."""
        return self.strategy.system

    @property
    def suspected(self) -> FrozenSet[int]:
        """Currently suspected-failed elements."""
        return frozenset(self._suspected)

    def suspect(self, element: int) -> None:
        """Mark an element as suspected failed."""
        self._suspected.add(element)

    def unsuspect(self, element: int) -> None:
        """Withdraw a suspicion (element responded again)."""
        self._suspected.discard(element)

    def clear(self) -> None:
        """Forget all suspicions."""
        self._suspected.clear()

    # ------------------------------------------------------------------
    def pick(self, rng: np.random.Generator) -> Optional[Quorum]:
        """A quorum avoiding all suspected elements, or ``None``.

        Draws from the base strategy first (cheap, load-preserving);
        after ``max_resamples`` collisions with the suspicion set it
        switches to the exact scan, which finds a live quorum whenever
        one exists.
        """
        if not self._suspected:
            self.samples_drawn += 1
            return self.strategy.sample(rng)
        for _ in range(self.max_resamples):
            self.samples_drawn += 1
            quorum = self.strategy.sample(rng)
            if not (quorum & self._suspected):
                return quorum
        self.fallback_scans += 1
        candidates = live_quorums(self.system, self._suspected)
        if not candidates:
            return None
        index = int(rng.integers(len(candidates)))
        return candidates[index]


def availability_with_selector(
    system: QuorumSystem,
    p: float,
    trials: int,
    rng: np.random.Generator,
    strategy: Optional[Strategy] = None,
    blind_attempts: Optional[int] = None,
) -> float:
    """Monte-Carlo success rate of quorum selection under iid crashes.

    With ``blind_attempts`` set, models a non-adaptive client that
    samples that many quorums and succeeds if one is fully alive; without
    it, models the failure-aware selector with a perfect failure
    detector, whose success rate equals the analytic availability.
    """
    strategy = strategy or Strategy.uniform(system)
    successes = 0
    n = system.n
    for _ in range(trials):
        alive = frozenset(int(e) for e in np.flatnonzero(rng.random(n) >= p))
        if blind_attempts is None:
            selector = FailureAwareSelector(strategy)
            for element in range(n):
                if element not in alive:
                    selector.suspect(element)
            quorum = selector.pick(rng)
            if quorum is not None and quorum <= alive:
                successes += 1
        else:
            for _ in range(blind_attempts):
                if strategy.sample(rng) <= alive:
                    successes += 1
                    break
    return successes / trials
