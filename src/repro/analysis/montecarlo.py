"""Monte-Carlo estimation of quorum-system failure probability.

Used (a) as an independent cross-check of the exact engines in tests and
(b) for systems too large or too unstructured for exact evaluation.
Returns estimates with binomial confidence intervals so callers can make
principled comparisons.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..core.errors import AnalysisError
from ..core.quorum_system import QuorumSystem


@dataclass(frozen=True)
class MonteCarloEstimate:
    """A failure-probability estimate with its sampling uncertainty."""

    #: Point estimate of F_p.
    value: float
    #: Half-width of the (normal-approximation) confidence interval.
    half_width: float
    #: Number of simulated failure configurations.
    samples: int
    #: Confidence level of the interval (e.g. 0.99).
    confidence: float

    @property
    def low(self) -> float:
        """Lower end of the confidence interval, clipped to [0, 1]."""
        return max(0.0, self.value - self.half_width)

    @property
    def high(self) -> float:
        """Upper end of the confidence interval, clipped to [0, 1]."""
        return min(1.0, self.value + self.half_width)

    def contains(self, exact: float) -> bool:
        """Whether the interval covers the given exact value."""
        return self.low <= exact <= self.high


# Two-sided z-scores for the common confidence levels (fast path — no
# scipy import on the default code path).
_Z_SCORES = {0.9: 1.6449, 0.95: 1.9600, 0.99: 2.5758, 0.999: 3.2905}


def _z_for(confidence: float) -> float:
    """Two-sided z-score for an arbitrary confidence level in (0, 1).

    The common levels come from the precomputed table; anything else is
    resolved through ``scipy.stats.norm.ppf`` on demand.
    """
    if not 0.0 < confidence < 1.0:
        raise AnalysisError(
            f"confidence must be strictly between 0 and 1, got {confidence}"
        )
    z = _Z_SCORES.get(confidence)
    if z is None:
        from scipy.stats import norm

        z = float(norm.ppf(0.5 + confidence / 2.0))
    return z


def failure_probability_montecarlo(
    system: QuorumSystem,
    p: float,
    samples: int = 200_000,
    seed: int = 0,
    per_element: Optional[Sequence[float]] = None,
    confidence: float = 0.99,
    batch: int = 65_536,
) -> MonteCarloEstimate:
    """Estimate ``F_p(S)`` by sampling iid crash configurations.

    Parameters
    ----------
    system:
        The quorum system under study.
    p:
        Common crash probability (paper's failure model).
    samples:
        Total number of sampled configurations.
    seed:
        Seed of the numpy PCG64 generator — estimates are reproducible.
    per_element:
        Optional heterogeneous crash probabilities.
    confidence:
        Confidence level for the reported interval — any value in
        (0, 1); common levels hit a precomputed z-table, others go
        through the normal quantile function.
    batch:
        Number of configurations evaluated per vectorised pass.
    """
    z = _z_for(confidence)
    if samples <= 0:
        raise AnalysisError("samples must be positive")
    n = system.n
    if per_element is None:
        crash = np.full(n, p)
    else:
        if len(per_element) != n:
            raise AnalysisError(
                f"expected {n} element probabilities, got {len(per_element)}"
            )
        crash = np.asarray(per_element, dtype=float)

    quorum_rows = [np.fromiter(sorted(q), dtype=np.int64) for q in system.minimal_quorums()]
    rng = np.random.default_rng(seed)
    failures = 0
    remaining = samples
    while remaining > 0:
        size = min(batch, remaining)
        alive = rng.random((size, n)) >= crash  # True = survives
        usable = np.zeros(size, dtype=bool)
        for row in quorum_rows:
            usable |= alive[:, row].all(axis=1)
            if usable.all():
                break
        failures += int(size - usable.sum())
        remaining -= size
    estimate = failures / samples
    half_width = z * math.sqrt(max(estimate * (1 - estimate), 1e-12) / samples)
    return MonteCarloEstimate(
        value=estimate, half_width=half_width, samples=samples, confidence=confidence
    )
