"""Named, seeded RNG streams.

Every stochastic component in the repo — transports drawing latencies,
fault schedules drawing crash sets, workload generators drawing keys —
needs its own independent random stream, reproducible from one root
seed.  Historical practice was ad-hoc: ``np.random.default_rng(seed +
1)`` here, ``SeedSequence(seed).generate_state(k)`` there.  That works
until two call sites pick the same offset, or a new draw shifts every
stream after it.

:class:`RngStreams` fixes both problems with *named* streams: the
stream for ``"chaos.transport"`` is derived from ``(root_seed,
sha256("chaos.transport"))`` via numpy's :class:`~numpy.random.SeedSequence`
spawn-key mechanism, so

* two distinct names can never collide or clobber each other (they are
  distinct 128-bit spawn keys), and
* a stream's draws depend only on its name and the root seed — never on
  how many other streams exist or the order they were created in.

``stream(name)`` returns the *same* generator instance on repeated
calls, making ownership explicit: a name identifies one consumer.
``seed_for(name)`` derives a plain integer for APIs that take int seeds
(legacy constructors, subprocesses).
"""

from __future__ import annotations

import hashlib
from typing import Dict, Tuple

import numpy as np

__all__ = ["RngStreams"]


def _spawn_key(name: str) -> Tuple[int, ...]:
    """Map a stream name to a 128-bit SeedSequence spawn key."""
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return tuple(
        int.from_bytes(digest[offset : offset + 4], "little")
        for offset in range(0, 16, 4)
    )


class RngStreams:
    """A family of independent generators derived from one root seed."""

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = int(root_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def sequence(self, name: str) -> np.random.SeedSequence:
        """The :class:`~numpy.random.SeedSequence` backing ``name``."""
        if not name:
            raise ValueError("stream name must be non-empty")
        return np.random.SeedSequence(
            entropy=self.root_seed, spawn_key=_spawn_key(name)
        )

    def stream(self, name: str) -> np.random.Generator:
        """The generator for ``name`` (one instance per name, cached)."""
        generator = self._streams.get(name)
        if generator is None:
            generator = np.random.default_rng(self.sequence(name))
            self._streams[name] = generator
        return generator

    def seed_for(self, name: str) -> int:
        """A 63-bit integer seed derived from ``name`` for int-seed APIs.

        Unlike :meth:`stream` this is a pure function of ``(root_seed,
        name)`` — calling it does not create or advance any stream.
        """
        state = self.sequence(name).generate_state(1, np.uint64)[0]
        return int(state) & 0x7FFF_FFFF_FFFF_FFFF

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"RngStreams(root_seed={self.root_seed}, "
            f"streams={sorted(self._streams)})"
        )
