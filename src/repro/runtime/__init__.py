"""repro.runtime — the deterministic substrate shared by sim and service.

Both execution worlds — the discrete-event simulator (:mod:`repro.sim`)
and the asyncio serving stack (:mod:`repro.service`) — need the same
four ingredients: a clock, seeded randomness, a fault model, and metrics
primitives.  This package is their single implementation:

* :mod:`~repro.runtime.clock` — the :class:`Clock` protocol with
  :class:`WallClock` / :class:`VirtualClock`, plus
  :class:`VirtualTimeLoop` / :func:`run_virtual`, which run ordinary
  asyncio code under simulated time (idle waits become clock jumps);
* :mod:`~repro.runtime.rng` — :class:`RngStreams`, named independent
  random streams derived from one root seed;
* :mod:`~repro.runtime.faults` — the declarative :class:`FaultSchedule`
  fault model (crash/flap/partition/latency/drop/duplicate rules in
  half-open tick windows) driving both the service's
  :class:`~repro.service.faults.FaultyTransport` and the simulator's
  :class:`~repro.sim.failures.ScheduleInjector`;
* :mod:`~repro.runtime.metrics` — :class:`Counter`, :class:`Gauge` and
  :class:`LatencyHistogram`, which :mod:`repro.sim.metrics` and
  :mod:`repro.service.metrics` are thin views over.

Layering: ``runtime`` depends only on :mod:`repro.core` (errors) and
numpy — never on ``sim`` or ``service``.
"""

from .clock import Clock, VirtualClock, VirtualTimeLoop, WallClock, run_virtual
from .faults import (
    ByzantineFault,
    CrashFault,
    DropFault,
    DuplicateFault,
    FaultSchedule,
    FlappingFault,
    LatencyFault,
    PartitionFault,
    Window,
    iid_crash_schedule,
    sample_iid_crash_set,
    split_brain_schedule,
)
from .metrics import Counter, Gauge, KeyCounter, LatencyHistogram
from .rng import RngStreams

__all__ = [
    # clock
    "Clock",
    "WallClock",
    "VirtualClock",
    "VirtualTimeLoop",
    "run_virtual",
    # rng
    "RngStreams",
    # faults
    "Window",
    "CrashFault",
    "FlappingFault",
    "PartitionFault",
    "LatencyFault",
    "DropFault",
    "DuplicateFault",
    "ByzantineFault",
    "FaultSchedule",
    "split_brain_schedule",
    "sample_iid_crash_set",
    "iid_crash_schedule",
    # metrics
    "Counter",
    "Gauge",
    "KeyCounter",
    "LatencyHistogram",
]
