"""The unified declarative fault model shared by sim and service.

A :class:`FaultSchedule` is an immutable list of fault rules, each active
inside a half-open window ``[start, end)`` of *ticks* — whatever virtual
time axis the substrate uses (operation index for the chaos harness,
simulator time for the discrete-event engine).  Because the schedule is
a pure function of time, one schedule object can drive three different
executors without translation:

* :class:`repro.service.faults.FaultyTransport` — injects the faults
  above any asyncio :class:`~repro.service.transport.Transport`;
* :class:`repro.sim.failures.ScheduleInjector` — applies the crash
  down-set to discrete-event :class:`~repro.sim.network.Network` nodes;
* :func:`repro.analysis.availability.availability_comparison` — scores
  the measured down-sets against the paper's exact failure probability.

Fault types
-----------
:class:`CrashFault`
    Replicas are hard-down: requests burn the full deadline and fail.
:class:`FlappingFault`
    Replicas alternate down/up with a fixed period — repeated
    crash/recover cycles that stress suspicion TTLs and circuit breakers.
:class:`PartitionFault`
    Asymmetric network partition: *clients at the given sites* cannot
    reach the listed replicas (other sites still can).  Split-brain
    scenarios use one fault per side.
:class:`LatencyFault`
    Per-replica latency spikes and tail amplification: message latency
    becomes ``latency * factor + extra`` and times out if it exceeds the
    deadline (the request side effect still happens — a slow reply is
    not a lost request).
:class:`DropFault`
    Messages are dropped with a probability; ``direction="request"``
    drops before the replica sees it, ``direction="response"`` drops the
    reply *after* the side effect applied (the nastier fault: an applied
    write the client believes failed).
:class:`DuplicateFault`
    Requests are delivered twice with a probability — exercises the
    idempotence of timestamped writes.
:class:`ByzantineFault`
    Replicas *lie* instead of failing: reads return fabricated values
    (``wrong_value``), rolled-back null state (``stale_timestamp``), or
    per-caller-site divergent fabrications (``equivocate``), and in
    ``wrong_value`` mode writes are fake-acked without applying.  Only a
    masking-mode coordinator (b+1 matching votes per accepted read) can
    survive these.

:func:`iid_crash_schedule` expresses the paper's iid transient-crash
model (each process down independently with probability ``p``, resampled
every epoch) as a schedule, replacing the imperative
``sim.failures.IidCrashInjector`` as the canonical way to realise the
availability model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.errors import ServiceError, SimulationError

__all__ = [
    "Window",
    "CrashFault",
    "FlappingFault",
    "PartitionFault",
    "LatencyFault",
    "DropFault",
    "DuplicateFault",
    "ByzantineFault",
    "BYZANTINE_MODES",
    "FaultSchedule",
    "split_brain_schedule",
    "sample_iid_crash_set",
    "iid_crash_schedule",
]


def sample_iid_crash_set(rng, ids: Iterable[int], p: float) -> frozenset:
    """Draw the paper's iid crash set: each id is down with probability ``p``.

    One ``rng.random()`` draw per id, in iteration order, so a fixed seed
    yields a fixed crash schedule.  Shared by :func:`iid_crash_schedule`,
    :meth:`FaultSchedule.random` and the serving layer's in-process
    transport, so every stack realises the exact same failure model.
    """
    if not 0.0 <= p <= 1.0:
        raise SimulationError(f"crash probability must be in [0,1], got {p}")
    return frozenset(i for i in ids if rng.random() < p)


class Window(Tuple[float, float]):
    """Half-open activity window ``[start, end)`` in ticks."""

    def __new__(cls, start: float, end: float = math.inf) -> "Window":
        if end < start:
            raise ServiceError(f"window end {end} before start {start}")
        return super().__new__(cls, (float(start), float(end)))

    @property
    def start(self) -> float:
        return self[0]

    @property
    def end(self) -> float:
        return self[1]

    def contains(self, now: float) -> bool:
        return self[0] <= now < self[1]


def _as_window(window: Any) -> Window:
    if isinstance(window, Window):
        return window
    start, end = window
    return Window(start, end)


@dataclass(frozen=True)
class CrashFault:
    """Replicas completely down for the window."""

    replicas: frozenset
    window: Window

    kind = "crash"


@dataclass(frozen=True)
class FlappingFault:
    """Replicas cycle down/up: down for the first ``down_fraction`` of
    every ``period`` ticks inside the window."""

    replicas: frozenset
    window: Window
    period: float = 8.0
    down_fraction: float = 0.5

    kind = "flap"

    def down(self, now: float) -> bool:
        if not self.window.contains(now):
            return False
        phase = (now - self.window.start) % self.period
        return phase < self.period * self.down_fraction


@dataclass(frozen=True)
class PartitionFault:
    """Clients at ``sites`` cannot reach ``unreachable`` replicas.

    ``sites=None`` applies to every client site.  Asymmetric partitions
    (A sees B, B does not see A) and split-brain (two one-sided faults)
    are both expressible.
    """

    unreachable: frozenset
    window: Window
    sites: Optional[frozenset] = None

    kind = "partition"

    def applies_to(self, site: int) -> bool:
        return self.sites is None or site in self.sites


@dataclass(frozen=True)
class LatencyFault:
    """Latency spike: message latency becomes ``latency*factor + extra``."""

    replicas: frozenset
    window: Window
    extra: float = 0.0
    factor: float = 1.0

    kind = "latency"


@dataclass(frozen=True)
class DropFault:
    """Messages to/from the replicas vanish with ``probability``."""

    replicas: frozenset
    window: Window
    probability: float = 0.5
    direction: str = "request"  # or "response"

    kind = "drop"


@dataclass(frozen=True)
class DuplicateFault:
    """Requests are delivered twice with ``probability``."""

    replicas: frozenset
    window: Window
    probability: float = 0.5

    kind = "duplicate"


#: Recognised lying styles for :class:`ByzantineFault`.
BYZANTINE_MODES = ("wrong_value", "stale_timestamp", "equivocate")


@dataclass(frozen=True)
class ByzantineFault:
    """Replicas return *wrong answers* instead of no answer.

    Unlike every other rule, a Byzantine replica looks perfectly healthy
    to the transport layer — replies arrive on time and well-formed —
    so crash-tolerant quorum intersection alone cannot mask it.  Modes:

    ``wrong_value``
        Reads return a fabricated value at the true timestamp (a
        colluding lie: every liar fabricates the same bytes for a given
        key/version, the adversary's best strategy against voting) and
        writes are acknowledged without being applied.
    ``stale_timestamp``
        Reads deny the data exists — value ``None`` at the null
        timestamp — a rollback attack that can at worst cost
        availability against a voting reader.
    ``equivocate``
        Like ``wrong_value`` on reads, but the fabrication differs per
        caller *site*, so two coordinators comparing notes disagree.

    The lie content is a pure function of (mode, replica, request,
    caller site): no RNG is consumed, so inserting or removing a
    Byzantine rule never shifts the seeded drop/duplicate coin streams.
    """

    replicas: frozenset
    window: Window
    mode: str = "wrong_value"

    kind = "byzantine"

    def __post_init__(self) -> None:
        if self.mode not in BYZANTINE_MODES:
            raise ServiceError(
                f"unknown byzantine mode {self.mode!r}; "
                f"expected one of {BYZANTINE_MODES}"
            )


_FAULT_TYPES = (
    CrashFault,
    FlappingFault,
    PartitionFault,
    LatencyFault,
    DropFault,
    DuplicateFault,
    ByzantineFault,
)


class FaultSchedule:
    """An immutable collection of fault rules queried by tick."""

    def __init__(self, faults: Sequence[Any] = ()) -> None:
        for fault in faults:
            if not isinstance(fault, _FAULT_TYPES):
                raise ServiceError(f"not a fault rule: {fault!r}")
        self.faults: Tuple[Any, ...] = tuple(faults)

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    # ------------------------------------------------------------------
    # Queries (all pure functions of the tick)
    # ------------------------------------------------------------------
    def crash_down_at(self, now: float) -> frozenset:
        """Replicas hard-down at ``now`` from crash and flapping faults.

        This is the *node-failure* down-set the availability probe
        compares against the paper's iid model — partitions and drops are
        link faults, not node faults.
        """
        down: set = set()
        for fault in self.faults:
            if isinstance(fault, CrashFault) and fault.window.contains(now):
                down |= fault.replicas
            elif isinstance(fault, FlappingFault) and fault.down(now):
                down |= fault.replicas
        return frozenset(down)

    def unreachable_at(self, now: float, site: int = 0) -> frozenset:
        """Replicas a client at ``site`` cannot reach: crashes, flaps and
        partitions that apply to the site."""
        down = set(self.crash_down_at(now))
        for fault in self.faults:
            if (
                isinstance(fault, PartitionFault)
                and fault.window.contains(now)
                and fault.applies_to(site)
            ):
                down |= fault.unreachable
        return frozenset(down)

    def latency_at(self, now: float, replica_id: int, latency: float) -> float:
        """Apply every active latency fault to a sampled message latency."""
        adjusted = latency
        for fault in self.faults:
            if (
                isinstance(fault, LatencyFault)
                and fault.window.contains(now)
                and replica_id in fault.replicas
            ):
                adjusted = adjusted * fault.factor + fault.extra
        return adjusted

    def drop_probability(self, now: float, replica_id: int, direction: str) -> float:
        """Worst active drop probability for the replica and direction."""
        worst = 0.0
        for fault in self.faults:
            if (
                isinstance(fault, DropFault)
                and fault.direction == direction
                and fault.window.contains(now)
                and replica_id in fault.replicas
            ):
                worst = max(worst, fault.probability)
        return worst

    def duplicate_probability(self, now: float, replica_id: int) -> float:
        worst = 0.0
        for fault in self.faults:
            if (
                isinstance(fault, DuplicateFault)
                and fault.window.contains(now)
                and replica_id in fault.replicas
            ):
                worst = max(worst, fault.probability)
        return worst

    def byzantine_mode_at(self, now: float, replica_id: int) -> Optional[str]:
        """Lying mode of ``replica_id`` at ``now``, or None if honest.

        First active rule wins — a replica under two overlapping
        Byzantine rules lies in one consistent style per tick, which
        keeps the fabricated replies deterministic.
        """
        for fault in self.faults:
            if (
                isinstance(fault, ByzantineFault)
                and fault.window.contains(now)
                and replica_id in fault.replicas
            ):
                return fault.mode
        return None

    def byzantine_replicas(self) -> frozenset:
        """Every replica named by any Byzantine rule, active or not."""
        liars: set = set()
        for fault in self.faults:
            if isinstance(fault, ByzantineFault):
                liars |= fault.replicas
        return frozenset(liars)

    # ------------------------------------------------------------------
    def change_points(self, horizon: float) -> List[float]:
        """Times in ``[0, horizon]`` where the crash down-set can change.

        Crash windows contribute their boundaries; flapping faults
        contribute every phase toggle.  Link-level faults (partition,
        latency, drop, duplicate) do not move the node down-set and are
        ignored.  Used by the sim-side schedule injector to apply the
        schedule event-wise instead of polling.
        """
        points = {0.0}

        def add(time: float) -> None:
            if 0.0 <= time <= horizon:
                points.add(float(time))

        for fault in self.faults:
            if isinstance(fault, CrashFault):
                add(fault.window.start)
                add(fault.window.end)
            elif isinstance(fault, FlappingFault):
                start = fault.window.start
                end = min(fault.window.end, horizon)
                half = fault.period * fault.down_fraction
                cycle = 0
                while True:
                    base = start + cycle * fault.period
                    if base > end:
                        break
                    add(base)  # goes down
                    add(base + half)  # comes back up
                    cycle += 1
        return sorted(points)

    def extended(self, faults: Iterable[Any]) -> "FaultSchedule":
        """A new schedule with extra rules appended."""
        return FaultSchedule(self.faults + tuple(faults))

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable summary, deterministic ordering."""
        counts: Dict[str, int] = {}
        for fault in self.faults:
            counts[fault.kind] = counts.get(fault.kind, 0) + 1
        return {
            "rules": len(self.faults),
            "by_kind": dict(sorted(counts.items())),
        }

    def __repr__(self) -> str:
        kinds = self.to_dict()["by_kind"]
        return f"<FaultSchedule rules={len(self.faults)} {kinds}>"

    # ------------------------------------------------------------------
    @classmethod
    def random(
        cls,
        rng: np.random.Generator,
        ids: Sequence[int],
        horizon: float,
        *,
        crash_rate: float = 0.15,
        epoch: float = 25.0,
        latency_spikes: int = 2,
        spike_extra: float = 30.0,
        spike_factor: float = 2.0,
        drops: int = 2,
        drop_probability: float = 0.4,
        duplicates: int = 1,
        duplicate_probability: float = 0.3,
        flappers: int = 1,
        flap_period: float = 8.0,
        partitions: int = 0,
        sites: int = 2,
    ) -> "FaultSchedule":
        """Seeded randomized schedule over ``[0, horizon)`` ticks.

        The crash component is the paper's iid model resampled every
        ``epoch`` ticks with probability ``crash_rate`` — exactly the
        model behind the exact failure probability, so measured
        availability is comparable to ``1 - F_p``.  The remaining fault
        families (spikes, drops, duplications, flapping, partitions) are
        placed in uniformly random windows.
        """
        if horizon <= 0:
            raise ServiceError(f"schedule horizon must be positive, got {horizon}")
        ids = sorted(ids)
        faults: List[Any] = []
        epochs = int(math.ceil(horizon / epoch))
        for index in range(epochs):
            down = sample_iid_crash_set(rng, ids, crash_rate)
            if down:
                faults.append(
                    CrashFault(down, Window(index * epoch, (index + 1) * epoch))
                )

        def random_window(min_len: float, max_len: float) -> Window:
            length = float(rng.uniform(min_len, max_len))
            start = float(rng.uniform(0.0, max(horizon - length, 1.0)))
            return Window(start, start + length)

        def random_replicas(count: int) -> frozenset:
            count = min(count, len(ids))
            picked = rng.choice(len(ids), size=count, replace=False)
            return frozenset(ids[int(i)] for i in picked)

        for _ in range(latency_spikes):
            faults.append(
                LatencyFault(
                    random_replicas(2),
                    random_window(horizon / 10.0, horizon / 4.0),
                    extra=float(rng.uniform(0.5, 1.5)) * spike_extra,
                    factor=spike_factor,
                )
            )
        for index in range(drops):
            faults.append(
                DropFault(
                    random_replicas(2),
                    random_window(horizon / 10.0, horizon / 4.0),
                    probability=drop_probability,
                    direction="request" if index % 2 == 0 else "response",
                )
            )
        for _ in range(duplicates):
            faults.append(
                DuplicateFault(
                    random_replicas(2),
                    random_window(horizon / 10.0, horizon / 4.0),
                    probability=duplicate_probability,
                )
            )
        for _ in range(flappers):
            faults.append(
                FlappingFault(
                    random_replicas(1),
                    random_window(horizon / 5.0, horizon / 2.0),
                    period=flap_period,
                )
            )
        for _ in range(partitions):
            order = [ids[int(i)] for i in rng.permutation(len(ids))]
            cut = len(order) // 2
            group_a, group_b = frozenset(order[:cut]), frozenset(order[cut:])
            window = random_window(horizon / 8.0, horizon / 3.0)
            for site in range(sites):
                unreachable = group_b if site % 2 == 0 else group_a
                faults.append(
                    PartitionFault(unreachable, window, sites=frozenset({site}))
                )
        return cls(faults)


def split_brain_schedule(
    ids: Sequence[int], window: Window, *, sites: int = 2
) -> List[PartitionFault]:
    """Two one-sided partition faults splitting the universe in half:
    even sites see only the first half, odd sites only the second.

    With a correct coordinator this only costs availability; with
    ``require_full_quorum=False`` it manufactures split-brain — the chaos
    harness's intentionally intersection-breaking scenario.
    """
    ordered = sorted(ids)
    cut = (len(ordered) + 1) // 2
    group_a, group_b = frozenset(ordered[:cut]), frozenset(ordered[cut:])
    even = frozenset(site for site in range(sites) if site % 2 == 0)
    odd = frozenset(site for site in range(sites) if site % 2 == 1)
    faults = [PartitionFault(group_b, window, sites=even)]
    if odd:
        faults.append(PartitionFault(group_a, window, sites=odd))
    return faults


def iid_crash_schedule(
    rng: np.random.Generator,
    ids: Sequence[int],
    p: float,
    *,
    horizon: float,
    epoch: float = 1.0,
) -> FaultSchedule:
    """The paper's iid crash model as a declarative schedule.

    Draws one crash set per epoch boundary at ``0, epoch, 2*epoch, ...``
    up to and *including* ``horizon`` (matching a simulator run with
    ``run(until=horizon)``, whose event at exactly ``horizon`` still
    fires), each set active for the following epoch.  Draw order is one
    ``rng.random()`` per id per epoch in the given id order — identical
    to the legacy ``IidCrashInjector`` stream, so refactored experiments
    reproduce old results bit-for-bit.
    """
    if epoch <= 0:
        raise SimulationError(f"epoch must be positive, got {epoch}")
    if horizon < 0:
        raise SimulationError(f"horizon must be >= 0, got {horizon}")
    ids = list(ids)
    faults: List[Any] = []
    draws = int(math.floor(horizon / epoch + 1e-9)) + 1
    for index in range(draws):
        down = sample_iid_crash_set(rng, ids, p)
        if down:
            faults.append(
                CrashFault(down, Window(index * epoch, (index + 1) * epoch))
            )
    return FaultSchedule(faults)
