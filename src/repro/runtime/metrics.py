"""Shared metrics primitives for sim and service.

Three small building blocks — :class:`Counter`, :class:`Gauge`,
:class:`LatencyHistogram` — that :mod:`repro.sim.metrics` and
:mod:`repro.service.metrics` are thin views over.  They are deliberately
exact (the histogram keeps every sample) because the determinism tests
hash metric snapshots byte-for-byte: a lossy sketch would trade
reproducibility for memory we don't need at chaos-run scale.

:class:`Counter` and :class:`Gauge` interoperate with plain numbers
(``counter += 1``, ``counter / total``, ``counter == 3``) so call sites
read like the bare ints they replace, while still being shareable by
reference between a component and its observer.
"""

from __future__ import annotations

from typing import Any, Dict, List, Union

import numpy as np

__all__ = ["Counter", "Gauge", "KeyCounter", "LatencyHistogram"]

Number = Union[int, float]


class Counter:
    """A monotonically increasing integer count with int ergonomics."""

    __slots__ = ("value",)

    def __init__(self, value: int = 0) -> None:
        self.value = int(value)

    def inc(self, by: int = 1) -> int:
        """Increase the count (``by`` must be non-negative)."""
        if by < 0:
            raise ValueError(f"counters only go up; inc({by})")
        self.value += int(by)
        return self.value

    # Arithmetic / comparison interop with plain numbers -----------------
    def __iadd__(self, other: Number) -> "Counter":
        self.inc(int(other))
        return self

    def __int__(self) -> int:
        return self.value

    def __index__(self) -> int:
        return self.value

    def __float__(self) -> float:
        return float(self.value)

    def __bool__(self) -> bool:
        return self.value != 0

    def _coerce(self, other: Any) -> Any:
        if isinstance(other, Counter):
            return other.value
        if isinstance(other, Gauge):
            return other.value
        if isinstance(other, (int, float)):
            return other
        return NotImplemented

    def __eq__(self, other: Any) -> Any:
        value = self._coerce(other)
        return NotImplemented if value is NotImplemented else self.value == value

    def __lt__(self, other: Any) -> Any:
        value = self._coerce(other)
        return NotImplemented if value is NotImplemented else self.value < value

    def __le__(self, other: Any) -> Any:
        value = self._coerce(other)
        return NotImplemented if value is NotImplemented else self.value <= value

    def __gt__(self, other: Any) -> Any:
        value = self._coerce(other)
        return NotImplemented if value is NotImplemented else self.value > value

    def __ge__(self, other: Any) -> Any:
        value = self._coerce(other)
        return NotImplemented if value is NotImplemented else self.value >= value

    def __add__(self, other: Any) -> Any:
        value = self._coerce(other)
        return NotImplemented if value is NotImplemented else self.value + value

    __radd__ = __add__

    def __sub__(self, other: Any) -> Any:
        value = self._coerce(other)
        return NotImplemented if value is NotImplemented else self.value - value

    def __rsub__(self, other: Any) -> Any:
        value = self._coerce(other)
        return NotImplemented if value is NotImplemented else value - self.value

    def __mul__(self, other: Any) -> Any:
        value = self._coerce(other)
        return NotImplemented if value is NotImplemented else self.value * value

    __rmul__ = __mul__

    def __truediv__(self, other: Any) -> Any:
        value = self._coerce(other)
        return NotImplemented if value is NotImplemented else self.value / value

    def __rtruediv__(self, other: Any) -> Any:
        value = self._coerce(other)
        return NotImplemented if value is NotImplemented else value / self.value

    def __str__(self) -> str:
        return str(self.value)

    def __format__(self, spec: str) -> str:
        return format(self.value, spec)

    def __repr__(self) -> str:
        return f"Counter({self.value})"


class Gauge:
    """A point-in-time numeric value (can move both ways)."""

    __slots__ = ("value",)

    def __init__(self, value: float = 0.0) -> None:
        self.value = float(value)

    def set(self, value: float) -> float:
        self.value = float(value)
        return self.value

    def add(self, delta: float) -> float:
        self.value += float(delta)
        return self.value

    def __float__(self) -> float:
        return self.value

    def __int__(self) -> int:
        return int(self.value)

    def __bool__(self) -> bool:
        return self.value != 0.0

    def __eq__(self, other: Any) -> Any:
        if isinstance(other, (Counter, Gauge)):
            return self.value == other.value
        if isinstance(other, (int, float)):
            return self.value == other
        return NotImplemented

    def _coerce(self, other: Any) -> Any:
        if isinstance(other, (Counter, Gauge)):
            return other.value
        if isinstance(other, (int, float)):
            return other
        return NotImplemented

    def __lt__(self, other: Any) -> Any:
        value = self._coerce(other)
        return NotImplemented if value is NotImplemented else self.value < value

    def __le__(self, other: Any) -> Any:
        value = self._coerce(other)
        return NotImplemented if value is NotImplemented else self.value <= value

    def __gt__(self, other: Any) -> Any:
        value = self._coerce(other)
        return NotImplemented if value is NotImplemented else self.value > value

    def __ge__(self, other: Any) -> Any:
        value = self._coerce(other)
        return NotImplemented if value is NotImplemented else self.value >= value

    def __str__(self) -> str:
        return str(self.value)

    def __format__(self, spec: str) -> str:
        return format(self.value, spec)

    def __repr__(self) -> str:
        return f"Gauge({self.value})"


class KeyCounter:
    """Exact per-key hit counts with a deterministic top-K view.

    The heavy-hitter signal behind hot-shard detection and the kvbench
    key-skew report.  Counts are exact (a lossy sketch would break the
    byte-for-byte snapshot hashing the determinism tests rely on) and
    every view orders ties by key, so two runs with identical draws
    produce identical snapshots.
    """

    __slots__ = ("counts",)

    def __init__(self) -> None:
        self.counts: Dict[str, int] = {}

    def record(self, key: str, by: int = 1) -> None:
        """Count ``by`` hits of ``key`` (``by`` must be non-negative)."""
        if by < 0:
            raise ValueError(f"key counters only go up; record({key!r}, {by})")
        self.counts[key] = self.counts.get(key, 0) + int(by)

    @property
    def total(self) -> int:
        """Hits across all keys."""
        return sum(self.counts.values())

    @property
    def distinct(self) -> int:
        """Number of distinct keys seen."""
        return len(self.counts)

    def top(self, k: int = 10) -> List[Any]:
        """The ``k`` hottest ``(key, count)`` pairs, hottest first.

        Deterministic: ties are broken by key, so the view is a pure
        function of the recorded multiset.
        """
        ranked = sorted(self.counts.items(), key=lambda item: (-item[1], item[0]))
        return [(key, count) for key, count in ranked[: max(0, int(k))]]

    def skew_summary(self, k: int = 10) -> Dict[str, Any]:
        """Key-skew snapshot: total/distinct counts and top-K shares."""
        total = self.total
        top = self.top(k)
        top_share = sum(count for _, count in top) / total if total else 0.0
        hottest_share = (top[0][1] / total) if top and total else 0.0
        return {
            "total": total,
            "distinct": self.distinct,
            "top_k": [[key, count] for key, count in top],
            "top_k_share": top_share,
            "hottest_share": hottest_share,
        }

    def merge(self, other: "KeyCounter") -> None:
        """Fold another counter's hits into this one."""
        for key, count in other.counts.items():
            self.counts[key] = self.counts.get(key, 0) + count

    def __len__(self) -> int:
        return len(self.counts)

    def __repr__(self) -> str:
        return f"<KeyCounter distinct={self.distinct} total={self.total}>"


class LatencyHistogram:
    """Exact latency aggregation: every sample kept, percentiles on demand.

    The numerics intentionally match what sim and service metrics
    computed before unification — ``np.mean`` / ``np.percentile`` over
    the raw sample list — so snapshots stay bit-identical per seed.
    """

    __slots__ = ("samples",)

    def __init__(self, samples: Union[List[float], None] = None) -> None:
        self.samples: List[float] = samples if samples is not None else []

    def record(self, value: float) -> None:
        """Add one sample."""
        self.samples.append(float(value))

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        """Average sample (0 when empty)."""
        return float(np.mean(self.samples)) if self.samples else 0.0

    def percentile(self, q: float) -> float:
        """Sample percentile ``q`` in [0, 100] (0 when empty)."""
        if not self.samples:
            return 0.0
        return float(np.percentile(self.samples, q))

    def summary(self) -> Dict[str, float]:
        """The standard snapshot block: count, mean, p50/p95/p99."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold another histogram's samples into this one."""
        self.samples.extend(other.samples)

    def __len__(self) -> int:
        return len(self.samples)

    def __repr__(self) -> str:
        return f"<LatencyHistogram count={self.count} mean={self.mean:.3f}>"
