"""Clocks and the virtual-time event loop.

The service layer measures time in **milliseconds** (latencies, timeouts,
backoffs all carry ``_ms`` suffixes); asyncio measures loop time in
seconds.  The :class:`Clock` protocol adopts the service convention —
``now()`` returns milliseconds, ``sleep`` takes milliseconds — and
:class:`VirtualTimeLoop` does the 1000× bridge exactly once, so sim and
service code agree on units without sprinkling conversions.

Two implementations:

* :class:`WallClock` — real time.  ``now()`` is ``time.monotonic()`` in
  ms, ``sleep`` awaits a real ``asyncio.sleep``.
* :class:`VirtualClock` — manually advanced time.  On its own it is a
  plain counter (the discrete-event :class:`~repro.sim.engine.Simulator`
  drives one directly); paired with :class:`VirtualTimeLoop` it also
  makes ordinary asyncio code run under simulated time: whenever the
  loop would block waiting for a timer, the wrapped selector advances
  the clock to the timer's deadline instead, so ``await
  asyncio.sleep(3600)`` completes in microseconds of wall time while
  ``clock.now()`` moves forward 3 600 000 ms.

:func:`run_virtual` is the ``asyncio.run`` analogue: it runs a coroutine
to completion on a fresh :class:`VirtualTimeLoop`.  Determinism note —
the loop never *reorders* ready callbacks, it only fast-forwards idle
waits, so a program that is deterministic under ``asyncio.run`` with a
seeded RNG is byte-for-byte deterministic (and enormously faster) under
:func:`run_virtual`.
"""

from __future__ import annotations

import asyncio
import selectors
import time
from abc import ABC, abstractmethod
from typing import Any, Coroutine, List, Optional, TypeVar

from ..core.errors import SimulationError

__all__ = [
    "Clock",
    "WallClock",
    "VirtualClock",
    "VirtualTimeLoop",
    "run_virtual",
    "install_uvloop",
    "accelerators",
]

_T = TypeVar("_T")


class Clock(ABC):
    """Source of time for transports, fault schedules and metrics.

    ``now()`` returns the current time in milliseconds; ``sleep``
    suspends the calling coroutine for ``delay_ms`` milliseconds of
    *this clock's* time (real for :class:`WallClock`, simulated for
    :class:`VirtualClock` under a :class:`VirtualTimeLoop`).
    """

    @abstractmethod
    def now(self) -> float:
        """Current time in milliseconds."""

    @abstractmethod
    async def sleep(self, delay_ms: float) -> None:
        """Suspend for ``delay_ms`` milliseconds of clock time."""


class WallClock(Clock):
    """Real time: monotonic milliseconds, real asyncio sleeps."""

    def now(self) -> float:
        return time.monotonic() * 1000.0

    async def sleep(self, delay_ms: float) -> None:
        await asyncio.sleep(max(0.0, delay_ms) / 1000.0)


class VirtualClock(Clock):
    """Manually advanced simulated time, starting at ``start`` ms.

    ``advance``/``advance_to`` move time forward (never backward).
    ``sleep`` awaits an ``asyncio.sleep`` and therefore only makes
    progress when the running loop understands virtual time — i.e.
    inside :func:`run_virtual`.  Synchronous users (the discrete-event
    engine) call ``advance_to`` directly and never sleep.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, delta_ms: float) -> float:
        if delta_ms < 0:
            raise SimulationError(f"cannot advance time by {delta_ms} ms")
        self._now += delta_ms
        return self._now

    def advance_to(self, deadline_ms: float) -> float:
        if deadline_ms < self._now:
            raise SimulationError(
                f"cannot rewind virtual clock from {self._now} to {deadline_ms}"
            )
        self._now = float(deadline_ms)
        return self._now

    async def sleep(self, delay_ms: float) -> None:
        await asyncio.sleep(max(0.0, delay_ms) / 1000.0)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"VirtualClock(now={self._now!r})"


class _TimeJumpingSelector:
    """Selector wrapper that advances a :class:`VirtualClock` instead of
    blocking.

    ``select(timeout)`` first polls real I/O without waiting.  If events
    are pending they are returned (TCP under virtual time still works,
    albeit nondeterministically — the deterministic path uses no real
    I/O).  Otherwise the wait the loop asked for is converted into a
    clock jump: timers scheduled ``timeout`` seconds out become due
    immediately.  An indefinite wait with no I/O sources means nothing
    can ever wake the loop — a simulation deadlock — and raises rather
    than hanging the process.
    """

    def __init__(self, wrapped: selectors.BaseSelector, clock: VirtualClock) -> None:
        self._wrapped = wrapped
        self._clock = clock

    def select(self, timeout: Optional[float] = None) -> List[Any]:
        events = self._wrapped.select(0)
        if events:
            return events
        if timeout is None:
            raise SimulationError(
                "virtual-time deadlock: event loop is idle with no scheduled "
                "timers and no ready I/O; some coroutine awaits an event that "
                "can never arrive"
            )
        if timeout > 0:
            self._clock.advance(timeout * 1000.0)
        return []

    def __getattr__(self, name: str) -> Any:
        return getattr(self._wrapped, name)


class VirtualTimeLoop(asyncio.SelectorEventLoop):
    """A selector event loop whose ``time()`` is a :class:`VirtualClock`.

    All asyncio timing — ``asyncio.sleep``, ``asyncio.wait(...,
    timeout=)``, ``loop.call_later`` — runs against the virtual clock,
    which jumps forward whenever the loop has nothing ready.  Loop time
    is the clock's millisecond value divided by 1000, so a coroutine's
    ``await asyncio.sleep(0.004)`` and a transport's ``await
    clock.sleep(4)`` mean the same thing.
    """

    def __init__(self, clock: Optional[VirtualClock] = None) -> None:
        super().__init__()
        self.clock = clock if clock is not None else VirtualClock()
        self._selector = _TimeJumpingSelector(self._selector, self.clock)

    def time(self) -> float:
        return self.clock.now() / 1000.0


def run_virtual(
    main: Coroutine[Any, Any, _T], *, clock: Optional[VirtualClock] = None
) -> _T:
    """Run ``main`` to completion under virtual time; the ``asyncio.run``
    of the simulation world.

    Creates a fresh :class:`VirtualTimeLoop` (over ``clock`` when given,
    so callers can share one clock between the loop and their
    transports), runs the coroutine, then cancels stragglers and closes
    the loop exactly like ``asyncio.run`` does.
    """
    loop = VirtualTimeLoop(clock=clock)
    try:
        return loop.run_until_complete(main)
    finally:
        try:
            _cancel_all_tasks(loop)
            loop.run_until_complete(loop.shutdown_asyncgens())
        finally:
            loop.close()


# ----------------------------------------------------------------------
# Optional accelerators (the ``repro[perf]`` extra)
# ----------------------------------------------------------------------
def install_uvloop() -> bool:
    """Install the uvloop event-loop policy when the environment has it.

    Returns ``True`` when uvloop is now the policy, ``False`` when the
    import failed — callers gate on the return value instead of
    requiring the dependency, so the wall-clock serving stack merely
    runs slower without the ``repro[perf]`` extra, never breaks.  Only
    affects loops created *after* the call (``asyncio.run``, cluster
    workers); never touches a loop that is already running, and is
    deliberately ignored by the virtual-time machinery above, which
    needs the selector loop it subclasses.
    """
    try:  # pragma: no cover - depends on environment
        import uvloop
    except ImportError:
        return False
    uvloop.install()  # pragma: no cover - depends on environment
    return True  # pragma: no cover - depends on environment


def accelerators() -> dict:
    """Which optional performance dependencies are importable.

    The ``quorumtool serve`` / ``kvbench`` startup banner prints this so
    a benchmark number always states what it was measured with.
    """
    report = {}
    for name in ("orjson", "uvloop"):
        try:
            __import__(name)
        except ImportError:
            report[name] = False
        else:
            report[name] = True
    return report


def _cancel_all_tasks(loop: asyncio.AbstractEventLoop) -> None:
    tasks = [task for task in asyncio.all_tasks(loop) if not task.done()]
    if not tasks:
        return
    for task in tasks:
        task.cancel()
    loop.run_until_complete(asyncio.gather(*tasks, return_exceptions=True))
