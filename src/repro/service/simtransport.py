"""A discrete-event transport: the real service stack under virtual time.

:class:`SimTransport` implements the :class:`~repro.service.transport.
Transport` interface on top of a :class:`~repro.runtime.clock.Clock`.
Message latencies are drawn from a seeded RNG exactly like the
in-process transport's, but instead of merely *reporting* the latency it
**spends** it — ``await clock.sleep(latency)`` — so concurrent requests
complete in latency order, timeouts elapse, hedging delays fire, and
backoff pauses cost time, just like against real sockets.

Run it under :func:`~repro.runtime.clock.run_virtual` with a
:class:`~repro.runtime.clock.VirtualClock` and the whole thing collapses
to a discrete-event simulation: the unmodified ``Coordinator`` /
``Replica`` code — hedging, circuit breakers, hinted handoff and all —
executes bit-reproducibly at thousands of simulated chaos runs per
second, because every idle wait is a clock jump.  Hand it a
:class:`~repro.runtime.clock.WallClock` under a normal event loop and
the *same* run plays out in real time — the wall-clock control the
``--sim`` speedup is measured against.  The RNG draws, and therefore the
operation outcomes and metric snapshots, are identical in both modes.

Fault injection composes the usual way: wrap a ``SimTransport`` in a
:class:`~repro.service.faults.FaultyTransport` and one declarative
:class:`~repro.runtime.faults.FaultSchedule` drives the virtual-time
world exactly as it drives the in-process and TCP worlds.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Mapping, Optional

import numpy as np

from ..core.errors import ServiceError
from ..runtime.clock import Clock, VirtualClock
from ..runtime.faults import sample_iid_crash_set
from ..runtime.metrics import Counter
from .replica import Replica
from .transport import (
    DEFAULT_TIMEOUT_MS,
    Reply,
    ReplicaUnavailable,
    RequestTimeout,
    Transport,
)

__all__ = ["SimTransport"]


class SimTransport(Transport):
    """Latency-spending transport over a runtime clock.

    Parameters
    ----------
    replicas:
        The replicas, one per universe element (list or {id: replica}).
    clock:
        Time source; a fresh :class:`~repro.runtime.clock.VirtualClock`
        by default.  Share one clock between the transport and the
        :class:`~repro.runtime.clock.VirtualTimeLoop` running it.
    seed / rng:
        Latency randomness — an int seed, or a generator (e.g. a named
        stream from :class:`~repro.runtime.rng.RngStreams`).
    base_latency, mean_latency:
        Message latency (ms) is ``base + Exp(mean)`` per call, the same
        distribution (and draw order) as the in-process transport.
    crash_rate:
        iid crash probability ``p`` for :meth:`resample_crashes`.
    service_time_ms:
        Per-request processing time at the replica (0, the default,
        preserves the historical pure-latency model bit-for-bit).  When
        positive, each replica is a FIFO server: concurrent requests to
        the same replica queue behind each other, so a replica has
        finite *capacity* and overload shows up as queueing delay.
        This is the knob that makes sharding measurable — spreading
        keys over more replicas buys aggregate service capacity, which
        the virtual-time throughput of the sharded benchmark reports.
    wire_check:
        Debug mode: round-trip every request and reply through the
        binary wire-v2 codec (:mod:`repro.service.wire`) and raise on
        any drift.  The sim never frames bytes on its hot path, so the
        default is off; switching it on turns every sim run into a
        proof that the op model the simulator exercises is exactly the
        one :class:`~repro.service.transport.BinaryTcpTransport` puts
        on real sockets.
    """

    def __init__(
        self,
        replicas: Iterable[Replica],
        *,
        clock: Optional[Clock] = None,
        seed: int = 0,
        rng: Optional[np.random.Generator] = None,
        base_latency: float = 1.0,
        mean_latency: float = 4.0,
        crash_rate: float = 0.0,
        service_time_ms: float = 0.0,
        wire_check: bool = False,
    ) -> None:
        if isinstance(replicas, Mapping):
            self.replicas: Dict[int, Replica] = dict(replicas)
        else:
            self.replicas = {r.replica_id: r for r in replicas}
        if not self.replicas:
            raise ServiceError("transport needs at least one replica")
        if not 0.0 <= crash_rate <= 1.0:
            raise ServiceError(f"crash rate must be in [0,1], got {crash_rate}")
        if base_latency < 0 or mean_latency < 0:
            raise ServiceError("latencies must be non-negative")
        if service_time_ms < 0:
            raise ServiceError("service time must be non-negative")
        self.clock: Clock = clock if clock is not None else VirtualClock()
        self.rng = rng if rng is not None else np.random.default_rng(seed)
        self.base_latency = base_latency
        self.mean_latency = mean_latency
        self.crash_rate = crash_rate
        self.service_time_ms = service_time_ms
        self.wire_check = wire_check
        self.down: frozenset = frozenset()
        self.epochs = 0
        self.calls = Counter()
        self.timeouts = Counter()
        self.unavailable = Counter()
        # replica id -> virtual time its FIFO queue drains (capacity model)
        self._busy_until: Dict[int, float] = {}

    # ------------------------------------------------------------------
    # Crash injection (drop-in for InProcessTransport's API)
    # ------------------------------------------------------------------
    def crash(self, *replica_ids: int) -> None:
        """Mark replicas as crashed (targeted injection, e.g. in tests)."""
        self.down = self.down | frozenset(replica_ids)

    def recover(self, *replica_ids: int) -> None:
        """Bring replicas back; with no arguments, recover everyone."""
        if not replica_ids:
            self.down = frozenset()
        else:
            self.down = self.down - frozenset(replica_ids)

    def resample_crashes(self) -> frozenset:
        """Start a new crash epoch: replica ``i`` down iid w.p. ``crash_rate``."""
        self.down = sample_iid_crash_set(
            self.rng, sorted(self.replicas), self.crash_rate
        )
        self.epochs += 1
        return self.down

    # ------------------------------------------------------------------
    async def call(
        self,
        replica_id: int,
        request: Dict[str, Any],
        timeout: float = DEFAULT_TIMEOUT_MS,
    ) -> Reply:
        replica = self.replicas.get(replica_id)
        if replica is None:
            raise ServiceError(f"unknown replica id {replica_id}")
        self.calls += 1
        # Draw the round-trip latency unconditionally so the RNG stream
        # does not depend on the current crash set — the identical
        # discipline (and distribution) as InProcessTransport, which is
        # what makes sim-mode and wall-mode runs produce the same draws.
        latency = self.base_latency + float(self.rng.exponential(self.mean_latency))
        if replica_id in self.down:
            # A crashed replica never answers: the caller burns the full
            # deadline — in clock time, not just on paper.
            self.unavailable += 1
            await self.clock.sleep(timeout)
            raise ReplicaUnavailable(replica_id, latency=timeout)
        if self.service_time_ms > 0:
            # FIFO capacity model: the request waits for the replica's
            # queue to drain, then occupies it for one service time.
            now = self.clock.now()
            start = max(now, self._busy_until.get(replica_id, now))
            finish = start + self.service_time_ms
            latency += finish - now
            if latency > timeout:
                # Overload: the client gives up before being served; the
                # slot is NOT reserved (the server never saw the work),
                # so a saturated replica's queue is bounded by timeouts.
                self.timeouts += 1
                await self.clock.sleep(timeout)
                raise RequestTimeout(replica_id, latency=timeout)
            self._busy_until[replica_id] = finish
        elif latency > timeout:
            self.timeouts += 1
            await self.clock.sleep(timeout)
            raise RequestTimeout(replica_id, latency=timeout)
        # The request is in flight for `latency` ms; the side effect
        # applies at *arrival* time, so concurrent operations interleave
        # in latency order exactly as they would over a network.
        await self.clock.sleep(latency)
        payload = replica.handle(request)
        if self.wire_check:
            # One op model across substrates: anything the sim carries
            # must survive the binary codec byte-exactly, else raise.
            from . import wire

            wire.assert_op_roundtrip(request, payload)
        return Reply(payload, latency)

    async def pause(self, delay_ms: float) -> None:
        # Backoff costs clock time here (unlike the in-process
        # transport, which only accounts it).
        await self.clock.sleep(delay_ms)

    def __repr__(self) -> str:
        return (
            f"<SimTransport replicas={len(self.replicas)}"
            f" t={self.clock.now():.1f}ms calls={int(self.calls)}>"
        )

