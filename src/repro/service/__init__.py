"""Serving layer: an asyncio quorum-replicated key-value store.

Turns any :class:`~repro.core.quorum_system.QuorumSystem` in the repo
into a running service:

* :mod:`repro.service.replica` — per-element versioned replicas
  (timestamp ordering, read-repair targets);
* :mod:`repro.service.transport` — pluggable transports: a
  deterministic seeded in-process one (virtual latency, iid crash
  epochs shared with :mod:`repro.sim.failures`), TCP/JSON-lines, and
  the coalescing binary wire-v2 client (:mod:`repro.service.wire`) —
  servers sniff the first byte, so one port speaks both protocols;
* :mod:`repro.service.cluster` — multi-process replica hosting
  (``workers=N`` OS processes behind one address map) with crash
  detection;
* :mod:`repro.service.coordinator` — strategy-sampling coordinator with
  concurrent fan-out, per-request timeouts, capped-exponential-backoff
  retries and fallback to quorums avoiding suspected-down replicas;
* :mod:`repro.service.metrics` — observed per-element load (comparable
  to the LP-predicted load of Definition 3.4), latency percentiles,
  success rate;
* :mod:`repro.service.loadgen` — closed-loop workload generator behind
  ``quorumtool kvbench`` / ``quorumtool serve``;
* :mod:`repro.service.faults` — declarative fault schedules (crash
  windows, asymmetric partitions, latency spikes, drop/duplication,
  flapping) applied by a :class:`FaultyTransport` over any transport;
* :mod:`repro.service.cache` — coordinator-side TTL +
  stale-while-revalidate read cache (the tier the cache-avalanche
  incident exercises);
* :mod:`repro.service.chaos` — seeded randomized chaos runs with safety
  invariant checking and measured-vs-exact availability, behind
  ``quorumtool chaos``.  The engine itself now lives in
  :mod:`repro.scenarios.engine`; this module re-exports it.
"""

from .cache import CacheEntry, CoordinatorCache
from .coordinator import Coordinator, OperationFailed, ReadResult, WriteResult
from .faults import (
    ActivationLog,
    ByzantineFault,
    CrashFault,
    DropFault,
    DuplicateFault,
    FaultSchedule,
    FaultyTransport,
    FlappingFault,
    LatencyFault,
    PartitionFault,
    Window,
    split_brain_schedule,
)
from .loadgen import (
    BenchmarkReport,
    WorkloadConfig,
    build_schedule,
    key_weights,
    make_replicas,
    run_capacity_benchmark,
    run_kv_benchmark,
    run_workload,
)
from .cluster import ReplicaCluster
from .metrics import ServiceMetrics, transport_summary
from .replica import NULL_TIMESTAMP, Replica, Versioned
from .simtransport import SimTransport
from .transport import (
    DEFAULT_TIMEOUT_MS,
    BinaryTcpTransport,
    InProcessTransport,
    Reply,
    ReplicaUnavailable,
    RequestTimeout,
    SerializedTcpTransport,
    TcpTransport,
    Transport,
    TransportError,
    start_tcp_replicas,
)
from .wire import WireError

# The chaos engine lives in repro.scenarios.engine (which imports the
# service submodules above); resolve its exports lazily (PEP 562) so
# `from repro.service import run_chaos` keeps working without a cycle.
_CHAOS_EXPORTS = ("ChaosConfig", "ChaosReport", "run_chaos")


def __getattr__(name: str):
    if name in _CHAOS_EXPORTS:
        from . import chaos

        return getattr(chaos, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "BenchmarkReport",
    "BinaryTcpTransport",
    "CacheEntry",
    "ChaosConfig",
    "CoordinatorCache",
    "ChaosReport",
    "Coordinator",
    "ActivationLog",
    "ByzantineFault",
    "CrashFault",
    "DEFAULT_TIMEOUT_MS",
    "DropFault",
    "DuplicateFault",
    "FaultSchedule",
    "FaultyTransport",
    "FlappingFault",
    "InProcessTransport",
    "LatencyFault",
    "NULL_TIMESTAMP",
    "OperationFailed",
    "PartitionFault",
    "ReadResult",
    "Replica",
    "ReplicaCluster",
    "ReplicaUnavailable",
    "Reply",
    "RequestTimeout",
    "SerializedTcpTransport",
    "ServiceMetrics",
    "SimTransport",
    "TcpTransport",
    "Transport",
    "TransportError",
    "Versioned",
    "Window",
    "WireError",
    "WorkloadConfig",
    "WriteResult",
    "build_schedule",
    "key_weights",
    "make_replicas",
    "run_chaos",
    "run_capacity_benchmark",
    "run_kv_benchmark",
    "run_workload",
    "split_brain_schedule",
    "start_tcp_replicas",
    "transport_summary",
]
