"""Serving layer: an asyncio quorum-replicated key-value store.

Turns any :class:`~repro.core.quorum_system.QuorumSystem` in the repo
into a running service:

* :mod:`repro.service.replica` — per-element versioned replicas
  (timestamp ordering, read-repair targets);
* :mod:`repro.service.transport` — pluggable transports: a
  deterministic seeded in-process one (virtual latency, iid crash
  epochs shared with :mod:`repro.sim.failures`) and TCP/JSON-lines for
  real sockets;
* :mod:`repro.service.coordinator` — strategy-sampling coordinator with
  concurrent fan-out, per-request timeouts, capped-exponential-backoff
  retries and fallback to quorums avoiding suspected-down replicas;
* :mod:`repro.service.metrics` — observed per-element load (comparable
  to the LP-predicted load of Definition 3.4), latency percentiles,
  success rate;
* :mod:`repro.service.loadgen` — closed-loop workload generator behind
  ``quorumtool kvbench`` / ``quorumtool serve``;
* :mod:`repro.service.faults` — declarative fault schedules (crash
  windows, asymmetric partitions, latency spikes, drop/duplication,
  flapping) applied by a :class:`FaultyTransport` over any transport;
* :mod:`repro.service.chaos` — seeded randomized chaos runs with safety
  invariant checking and measured-vs-exact availability, behind
  ``quorumtool chaos``.
"""

from .chaos import ChaosConfig, ChaosReport, run_chaos
from .coordinator import Coordinator, OperationFailed, ReadResult, WriteResult
from .faults import (
    ActivationLog,
    ByzantineFault,
    CrashFault,
    DropFault,
    DuplicateFault,
    FaultSchedule,
    FaultyTransport,
    FlappingFault,
    LatencyFault,
    PartitionFault,
    Window,
    split_brain_schedule,
)
from .loadgen import (
    BenchmarkReport,
    WorkloadConfig,
    build_schedule,
    key_weights,
    make_replicas,
    run_kv_benchmark,
    run_workload,
)
from .metrics import ServiceMetrics
from .replica import NULL_TIMESTAMP, Replica, Versioned
from .simtransport import SimTransport
from .transport import (
    DEFAULT_TIMEOUT_MS,
    InProcessTransport,
    Reply,
    ReplicaUnavailable,
    RequestTimeout,
    SerializedTcpTransport,
    TcpTransport,
    Transport,
    TransportError,
    start_tcp_replicas,
)

__all__ = [
    "BenchmarkReport",
    "ChaosConfig",
    "ChaosReport",
    "Coordinator",
    "ActivationLog",
    "ByzantineFault",
    "CrashFault",
    "DEFAULT_TIMEOUT_MS",
    "DropFault",
    "DuplicateFault",
    "FaultSchedule",
    "FaultyTransport",
    "FlappingFault",
    "InProcessTransport",
    "LatencyFault",
    "NULL_TIMESTAMP",
    "OperationFailed",
    "PartitionFault",
    "ReadResult",
    "Replica",
    "ReplicaUnavailable",
    "Reply",
    "RequestTimeout",
    "SerializedTcpTransport",
    "ServiceMetrics",
    "SimTransport",
    "TcpTransport",
    "Transport",
    "TransportError",
    "Versioned",
    "Window",
    "WorkloadConfig",
    "WriteResult",
    "build_schedule",
    "key_weights",
    "make_replicas",
    "run_chaos",
    "run_kv_benchmark",
    "run_workload",
    "split_brain_schedule",
    "start_tcp_replicas",
]
