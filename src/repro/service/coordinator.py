"""Quorum coordinator: the client-facing side of the KV service.

One :class:`Coordinator` turns ``read``/``write`` calls into quorum
phases against any :class:`~repro.core.quorum_system.QuorumSystem`:

1. pick a quorum by sampling the configured
   :class:`~repro.core.strategy.Strategy` (so the *observed* per-element
   load converges to the strategy's analytic
   :meth:`~repro.core.strategy.Strategy.element_loads`);
2. fan the request out concurrently to every member with a per-request
   timeout;
3. on any member failure, mark the culprits suspected, back off
   (capped exponential) and fall back to a quorum avoiding suspects via
   :meth:`~repro.core.strategy.Strategy.avoiding`;
4. reads apply read-repair: replicas that returned a stale version get
   the winning version written back.

Writes carry ``(counter, coordinator_id)`` timestamps from a logical
clock that also advances on every read (the clock adopts the largest
counter seen), so concurrent coordinators converge on a total order.

Graceful degradation (added for the fault-injection layer):

* **Circuit breakers** (``breaker_threshold > 0``): a replica that fails
  ``breaker_threshold`` consecutive requests is excluded from quorum
  selection for ``breaker_cooldown`` operations — longer-horizon
  avoidance than the short suspicion TTL, so a hard-down replica stops
  burning timeouts.  After the cooldown the replica is half-open: the
  next sampled quorum may probe it; success closes the breaker, failure
  reopens it.
* **Hinted handoff** (``hinted_handoff=True``): writes that could not
  reach a quorum member are queued as hints and replayed (as idempotent
  ``repair`` requests) once the member looks reachable again —
  anti-entropy that accelerates convergence after recovery.  Hints never
  make an operation succeed; they only repair afterwards.
* **Degraded reads** (``degraded_reads=True``, opt-in): when every
  quorum attempt fails, serve a best-effort read from the least-damaged
  support quorum instead of raising :class:`OperationFailed`.  The
  result carries ``stale=True`` — the caller explicitly trades
  freshness for availability.

Hedged fan-out (``hedge_spares > 0``): each quorum phase contacts the
sampled quorum *plus* up to ``hedge_spares`` spare replicas drawn from
the strategy's other ranked quorums.  The phase completes as soon as
*any* candidate quorum inside the contacted set is fully acknowledged
(first-quorum-wins), so one straggling member no longer sets the
phase's latency.  Late replies are absorbed in the background: their
latency feeds the straggler histogram, failures feed suspicion and
hinted handoff, and :meth:`Coordinator.drain` awaits them all (call it
before tearing down the transport).  With ``hedge_spares=0`` (default)
exactly the sampled quorum is contacted and the phase waits for every
member — the original semantics.

Masking-mode reads (``byzantine_b > 0``): replicas may *lie*, not just
crash, so a read accepts a ``(value, timestamp)`` only when at least
``b+1`` members of the quorum returned it byte-identically — the
Malkhi–Reiter–Wool masking-quorum read.  Startup validates the system
against :func:`repro.analysis.byzantine.masking_threshold` and points a
misconfigured deployment at :func:`repro.analysis.byzantine.boost`.
Replicas that vote against the accepted version at its own timestamp
are *caught lying*: they feed the same suspicion/circuit-breaker
machinery as crashes (see :attr:`Coordinator.lied_replicas`), and the
metrics count detected lies and vote margins.  Degraded reads vote too
— a fabricated value must never be served, not even flagged stale.

Quorum leases (``lease_ttl > 0``): each sampled quorum carries a
Timed-Quorum-style lease measured in operations.  Using a quorum whose
lease is missing or expired first runs a re-join handshake (``join`` to
every member); a handshake that cannot reach every member invalidates
the quorum for this attempt and falls back — membership is re-validated
continuously instead of assumed static.

The quorum-selection hot path is O(1) per operation after warm-up:
strategy sampling goes through a cached alias table
(:meth:`~repro.core.strategy.Strategy.sample_index`), sampled indices
resolve to pre-sorted member tuples, and the avoiding-strategy and
hedge-plan computations are memoised per blocked-set / per quorum.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Callable, Dict, List, NamedTuple, Optional, Set, Tuple

import numpy as np

from ..core.errors import AnalysisError, ServiceError
from ..core.quorum_system import Quorum, QuorumSystem
from ..core.rwstrategy import ReadWriteStrategy
from ..core.strategy import Strategy
from .metrics import ServiceMetrics
from .replica import NULL_TIMESTAMP
from .transport import (
    DEFAULT_TIMEOUT_MS,
    Reply,
    ReplicaUnavailable,
    RequestTimeout,
    Transport,
)


def _value_key(value: Any) -> str:
    """Canonical byte representation of a stored value for vote matching.

    Two replies vote together only when their values serialise
    identically — structural equality, stable across dict ordering.
    """
    return json.dumps(value, sort_keys=True, default=str)


class OperationFailed(ServiceError):
    """Every attempt (including fallbacks) failed for one operation."""

    def __init__(self, kind: str, key: str, attempts: int, latency: float) -> None:
        self.kind = kind
        self.key = key
        self.attempts = attempts
        self.latency = latency
        super().__init__(
            f"{kind}({key!r}) failed after {attempts} quorum attempts"
        )


class ReadResult(NamedTuple):
    """Outcome of a quorum read.

    ``stale`` is False for quorum reads; True only for opt-in degraded
    reads served without a full quorum (the value may miss newer writes).
    """

    value: Any
    counter: int
    writer: int
    latency: float
    attempts: int
    stale: bool = False


class WriteResult(NamedTuple):
    """Outcome of a quorum write."""

    counter: int
    writer: int
    latency: float
    attempts: int


class Coordinator:
    """Executes KV operations through quorums of a system.

    Parameters
    ----------
    system:
        The quorum system to serve through.
    transport:
        Channel to the replicas (in-process or TCP).
    strategy:
        Quorum-picking distribution; defaults to the LP-optimal strategy
        from :mod:`repro.analysis.load`, i.e. the system served at its
        analytic load ``L(S)``.  A plain :class:`Strategy` serves every
        operation from one distribution (the unified path); a
        :class:`~repro.core.rwstrategy.ReadWriteStrategy` routes reads
        through its read distribution and writes / repairs / transfers
        through its write distribution — plain strategies are
        auto-lifted to a degenerate pair, so behaviour is unchanged
        unless a split pair is passed explicitly.
    coordinator_id:
        Tie-breaker in write timestamps; give every concurrent client a
        distinct id.
    seed:
        Seed for this coordinator's sampling RNG.
    timeout:
        Per-request deadline (ms) handed to the transport.
    max_attempts:
        Quorum attempts per operation (first try + fallbacks).
    backoff_base, backoff_cap:
        Capped exponential backoff between attempts (ms):
        ``min(cap, base * 2**(attempt-1))``.
    suspicion_ttl:
        Suspected-down replicas are avoided for this many subsequent
        operations, then probed again (crashed replicas may recover).
    breaker_threshold:
        Consecutive failures that trip a replica's circuit breaker
        (0 disables breakers, the default).
    breaker_cooldown:
        Operations a tripped breaker stays open before the replica is
        probed again (half-open).
    degraded_reads:
        Opt-in: serve best-effort stale reads (``stale=True``) instead of
        raising :class:`OperationFailed` when no full quorum responds.
    hinted_handoff:
        Queue writes for unreachable quorum members and replay them after
        recovery (capped at ``hint_capacity`` queued key-hints).
    hedge_spares:
        Spare replicas contacted beyond the sampled quorum (0 disables
        hedging, the default).  Spares come from the strategy's ranked
        fallback quorums, and the phase completes when the first
        candidate quorum within the contacted set fully acknowledges.
    hedge_delay_ms:
        When positive, spares are *deferred*: the phase contacts only
        the primary quorum, and issues the spares only if the primary
        has not fully acknowledged after this many wall-clock
        milliseconds (or as soon as a primary member fails).  The fast
        path then costs zero extra requests; spares fire exactly on the
        tail.  0 (the default) issues spares upfront with the quorum —
        fully deterministic, used by the in-process tests.
    require_full_quorum:
        **Testing only.**  When False, an operation is acknowledged as
        soon as *any* member responds, which breaks quorum intersection —
        the chaos harness flips this to demonstrate split-brain detection.
    byzantine_b:
        Number of lying replicas to mask (0 disables voting, the
        default).  When positive, the system must be ``b``-masking —
        validated at startup against
        :func:`repro.analysis.byzantine.masking_threshold`, with
        :func:`repro.analysis.byzantine.boost` suggested otherwise —
        and every read accepts only a version at least ``b+1`` members
        agree on byte-for-byte.
    lease_ttl:
        Operations a quorum lease stays valid (0 disables leases, the
        default).  Every sampled quorum must hold a live lease before
        serving; expired or missing leases trigger a ``join`` handshake
        with every member, and a failed handshake abandons the quorum
        for that attempt.
    """

    _AVOIDING_CACHE_LIMIT = 128

    def __init__(
        self,
        system: QuorumSystem,
        transport: Transport,
        strategy: Optional[Strategy] = None,
        *,
        coordinator_id: int = 0,
        seed: int = 0,
        timeout: float = DEFAULT_TIMEOUT_MS,
        max_attempts: int = 5,
        backoff_base: float = 8.0,
        backoff_cap: float = 128.0,
        suspicion_ttl: int = 25,
        read_repair: bool = True,
        breaker_threshold: int = 0,
        breaker_cooldown: int = 50,
        degraded_reads: bool = False,
        hinted_handoff: bool = True,
        hint_capacity: int = 256,
        hedge_spares: int = 0,
        hedge_delay_ms: float = 0.0,
        require_full_quorum: bool = True,
        byzantine_b: int = 0,
        lease_ttl: int = 0,
        metrics: Optional[ServiceMetrics] = None,
    ) -> None:
        if max_attempts < 1:
            raise ServiceError(f"max_attempts must be >= 1, got {max_attempts}")
        if byzantine_b < 0:
            raise ServiceError(f"byzantine_b must be >= 0, got {byzantine_b}")
        if lease_ttl < 0:
            raise ServiceError(f"lease_ttl must be >= 0, got {lease_ttl}")
        if timeout <= 0:
            raise ServiceError(f"timeout must be positive, got {timeout}")
        if breaker_threshold < 0:
            raise ServiceError(
                f"breaker_threshold must be >= 0, got {breaker_threshold}"
            )
        if breaker_cooldown < 1:
            raise ServiceError(
                f"breaker_cooldown must be >= 1, got {breaker_cooldown}"
            )
        if hint_capacity < 0:
            raise ServiceError(f"hint_capacity must be >= 0, got {hint_capacity}")
        if hedge_spares < 0:
            raise ServiceError(f"hedge_spares must be >= 0, got {hedge_spares}")
        if hedge_delay_ms < 0:
            raise ServiceError(f"hedge_delay_ms must be >= 0, got {hedge_delay_ms}")
        self.system = system
        self.transport = transport
        # Synchronous task-free fan-out, when the transport offers one
        # (BinaryTcpTransport.submit); None falls back to one task per
        # member.  Wrappers like FaultyTransport deliberately don't
        # expose submit, so faults keep applying per logical call.
        self._submit = getattr(transport, "submit", None)
        if strategy is None:
            from ..analysis.load import optimal_strategy

            strategy = optimal_strategy(system)
        if strategy.system is not system:
            raise ServiceError("strategy belongs to a different system")
        # Reads and writes may draw from different quorum families
        # (2-intersecting read/write pairs); plain strategies become the
        # degenerate pair whose two paths share one distribution.
        self.rw_strategy = ReadWriteStrategy.lift(strategy)
        #: Write-path distribution; for lifted plain strategies this is
        #: the strategy originally passed in (back-compat alias).
        self.strategy = self.rw_strategy.writes
        #: Read-path distribution (same object as ``strategy`` unless a
        #: split pair was configured).
        self.read_strategy = self.rw_strategy.reads
        self.coordinator_id = coordinator_id
        self.rng = np.random.default_rng(seed)
        self.timeout = timeout
        self.max_attempts = max_attempts
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.suspicion_ttl = suspicion_ttl
        self.read_repair = read_repair
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown = breaker_cooldown
        self.degraded_reads = degraded_reads
        self.hinted_handoff = hinted_handoff
        self.hint_capacity = hint_capacity
        self.hedge_spares = hedge_spares
        self.hedge_delay_ms = hedge_delay_ms
        self.require_full_quorum = require_full_quorum
        self.byzantine_b = byzantine_b
        self.lease_ttl = lease_ttl
        if byzantine_b > 0:
            from ..analysis.byzantine import validate_masking

            try:
                validate_masking(system, byzantine_b)
            except AnalysisError as exc:
                raise ServiceError(str(exc)) from None
            if self.rw_strategy.is_split:
                # Voted reads must out-vote b liars inside the overlap
                # with the newest write quorum: every read/write support
                # pair needs at least 2b+1 common members (which also
                # forces read quorums of size >= 2b+1).
                needed = 2 * byzantine_b + 1
                depth = self.rw_strategy.min_read_write_intersection()
                if depth < needed:
                    raise ServiceError(
                        f"split read path is too shallow for b={byzantine_b}"
                        f" masking reads: min |R ∩ W| = {depth} < {needed};"
                        " use read_write_capacity(min_intersection="
                        f"{needed}) to build a maskable pair"
                    )
        self.metrics = metrics if metrics is not None else ServiceMetrics(system.n)
        self._clock = 0
        self._ops_issued = 0
        self._suspected: Dict[int, int] = {}  # replica id -> op index suspected at
        self._breaker_fails: Dict[int, int] = {}  # consecutive failures
        self._breaker_open_until: Dict[int, int] = {}  # replica id -> op index
        # replica id -> {key: (counter, writer, value)} pending handoffs
        self._hints: Dict[int, Dict[str, Tuple[int, int, Any]]] = {}
        self._replaying = False  # reentrancy guard for _replay_hints
        # Hot-path caches: quorum -> sorted member tuple, (path, blocked
        # set) -> restricted strategy (or None), (path, quorum) -> hedge
        # plan.  Caches are path-keyed because a split pair restricts
        # and hedges each distribution independently; unsplit pairs
        # canonicalise both paths to "write" so nothing is computed
        # twice.
        self._members_cache: Dict[Quorum, Tuple[int, ...]] = {}
        self._avoiding_cache: Dict[Tuple[str, frozenset], Optional[Strategy]] = {}
        self._hedge_plans: Dict[
            Tuple[str, Quorum],
            Tuple[Tuple[int, ...], Tuple[Tuple[Quorum, Tuple[int, ...]], ...]],
        ] = {}
        # In-flight absorbed stragglers (hedged phases that already won).
        self._stragglers: set = set()
        #: Replicas caught returning a divergent value for an accepted
        #: timestamp during a masking read — definite liars, not mere
        #: timeouts.  Never forgotten (unlike suspicion, which decays).
        self.lied_replicas: Set[int] = set()
        #: Every replica ever suspected, including decayed suspicions —
        #: the chaos harness checks detected liars ended up in here.
        self.suspicion_history: Set[int] = set()
        # quorum -> op index its lease expires at (lease_ttl > 0 only).
        self._quorum_leases: Dict[Quorum, int] = {}
        # key -> {replica id -> newest (counter, writer) that replica
        # acknowledged for the key} (masking mode only).  An honest
        # replica's store is monotone, so a read reply *older* than its
        # own ack floor is proof of lying — the channel that catches a
        # fake-acking liar whose fabrications hide at stale timestamps.
        self._ack_floor: Dict[str, Dict[int, Tuple[int, int]]] = {}

    @property
    def clock(self) -> int:
        """Current logical-clock counter (the next write gets ``clock+1``)."""
        return self._clock

    # ------------------------------------------------------------------
    # Public operations
    # ------------------------------------------------------------------
    async def read(self, key: str) -> ReadResult:
        """Quorum read: newest version wins; stale members get repaired.

        With ``degraded_reads`` enabled, a read that exhausts every quorum
        attempt is retried best-effort against the least-damaged support
        quorum and, if anyone answers, served with ``stale=True``.
        """
        self._ops_issued += 1
        self.metrics.record_key_access(key)
        try:
            best, payloads, latency, attempts = await self._read_phase(key)
        except OperationFailed as exc:
            if self.degraded_reads:
                degraded = await self._degraded_read(key, exc)
                if degraded is not None:
                    return degraded
            self.metrics.record_op("read", exc.latency, ok=False, attempts=exc.attempts)
            raise
        self._clock = max(self._clock, int(best["counter"]))
        self.metrics.record_op("read", latency, ok=True, attempts=attempts)
        if self.read_repair and best["counter"] > NULL_TIMESTAMP[0]:
            await self._repair_stale(key, best, payloads)
        await self._replay_hints()
        return ReadResult(
            best["value"], int(best["counter"]), int(best["writer"]), latency, attempts
        )

    async def write(self, key: str, value: Any) -> WriteResult:
        """Quorum write stamped by this coordinator's logical clock."""
        self._ops_issued += 1
        self.metrics.record_key_access(key)
        self._clock += 1
        counter, writer = self._clock, self.coordinator_id
        request = {
            "op": "write",
            "key": key,
            "value": value,
            "counter": counter,
            "writer": writer,
        }
        try:
            payloads, latency, attempts, quorum = await self._quorum_phase(
                lambda rid: request, kind="write", key=key, hint=request
            )
        except OperationFailed as exc:
            self.metrics.record_op("write", exc.latency, ok=False, attempts=exc.attempts)
            raise
        # A replica that ignored us saw a newer version; catch the clock up
        # so the next write of this coordinator is not stale too.
        newest = max(int(p["counter"]) for p in payloads.values())
        self._clock = max(self._clock, newest)
        for rid in payloads:
            self._note_ack(key, rid, counter, writer)
        self.metrics.record_op("write", latency, ok=True, attempts=attempts)
        await self._replay_hints()
        return WriteResult(counter, writer, latency, attempts)

    async def transfer(self, key: str, value: Any, counter: int, writer: int) -> WriteResult:
        """Quorum write of an *existing* version, timestamp preserved.

        The resharding handoff uses this to copy versioned state into a
        destination shard: unlike :meth:`write` it does not mint a new
        timestamp, so a transferred version never wins over a client
        write that superseded it mid-migration.  The request goes out as
        an idempotent ``repair``, making replays harmless.
        """
        self._ops_issued += 1
        request = {
            "op": "repair",
            "key": key,
            "value": value,
            "counter": counter,
            "writer": writer,
        }
        try:
            payloads, latency, attempts, _ = await self._quorum_phase(
                lambda rid: request, kind="transfer", key=key
            )
        except OperationFailed as exc:
            self.metrics.record_op(
                "transfer", exc.latency, ok=False, attempts=exc.attempts
            )
            raise
        self._clock = max(self._clock, int(counter))
        for rid in payloads:
            self._note_ack(key, rid, counter, writer)
        self.metrics.record_op("transfer", latency, ok=True, attempts=attempts)
        return WriteResult(int(counter), int(writer), latency, attempts)

    # ------------------------------------------------------------------
    # Quorum machinery
    # ------------------------------------------------------------------
    def _active_suspects(self) -> frozenset:
        horizon = self._ops_issued - self.suspicion_ttl
        self._suspected = {
            rid: at for rid, at in self._suspected.items() if at > horizon
        }
        return frozenset(self._suspected)

    def _open_breakers(self) -> frozenset:
        if self.breaker_threshold <= 0:
            return frozenset()
        return frozenset(
            rid
            for rid, until in self._breaker_open_until.items()
            if self._ops_issued < until
        )

    def _blocked_replicas(self) -> frozenset:
        """Replicas excluded from quorum selection: suspects + open breakers."""
        return self._active_suspects() | self._open_breakers()

    def _note_success(self, rid: int) -> None:
        self._suspected.pop(rid, None)
        self._breaker_fails.pop(rid, None)
        self._breaker_open_until.pop(rid, None)

    def _note_failure(self, rid: int) -> None:
        self._suspected[rid] = self._ops_issued
        self.suspicion_history.add(rid)
        if self.breaker_threshold <= 0:
            return
        fails = self._breaker_fails.get(rid, 0) + 1
        self._breaker_fails[rid] = fails
        if fails >= self.breaker_threshold:
            already_open = self._ops_issued < self._breaker_open_until.get(rid, 0)
            self._breaker_open_until[rid] = self._ops_issued + self.breaker_cooldown
            if not already_open:
                self.metrics.record_breaker_open()

    def _note_ack(self, key: str, rid: int, counter: int, writer: int) -> None:
        """Record that ``rid`` acknowledged ``key`` at this timestamp.

        Masking mode only: the floor is the lie detector's ground truth,
        so it must never be polluted by unacked sends.
        """
        if self.byzantine_b <= 0:
            return
        floors = self._ack_floor.setdefault(key, {})
        timestamp = (int(counter), int(writer))
        if timestamp > floors.get(rid, NULL_TIMESTAMP):
            floors[rid] = timestamp

    def _mark_liar(self, rid: int) -> None:
        self.metrics.record_lie()
        self.lied_replicas.add(rid)
        self._note_failure(rid)

    def _members_for(self, quorum: Quorum) -> Tuple[int, ...]:
        """Sorted member tuple of a quorum, cached (no per-op sorting)."""
        members = self._members_cache.get(quorum)
        if members is None:
            members = tuple(sorted(quorum))
            self._members_cache[quorum] = members
        return members

    def _path_for(self, path: str) -> str:
        """Canonical path key: unsplit pairs collapse reads onto "write"."""
        return path if path == "read" and self.rw_strategy.is_split else "write"

    def _strategy_for(self, path: str) -> Strategy:
        return self.read_strategy if path == "read" else self.strategy

    def _avoiding_strategy(self, path: str, blocked: frozenset) -> Optional[Strategy]:
        """Memoised ``strategy.avoiding(blocked)`` per path — renormalising
        the distribution is O(support), far too slow to redo per operation
        while the same replicas stay suspected."""
        cache_key = (path, blocked)
        if cache_key in self._avoiding_cache:
            return self._avoiding_cache[cache_key]
        if len(self._avoiding_cache) >= self._AVOIDING_CACHE_LIMIT:
            self._avoiding_cache.clear()
        restricted = self._strategy_for(path).avoiding(blocked)
        self._avoiding_cache[cache_key] = restricted
        return restricted

    def _pick_quorum(self, path: str) -> Quorum:
        path = self._path_for(path)
        strategy = self._strategy_for(path)
        blocked = self._blocked_replicas()
        if blocked:
            restricted = self._avoiding_strategy(path, blocked)
            if restricted is not None:
                return restricted.quorums[restricted.sample_index(self.rng)]
            # Every quorum touches a blocked replica: optimistically forget
            # suspicions and open breakers (replicas recover) rather than
            # refusing to serve.
            self._suspected.clear()
            self._breaker_fails.clear()
            self._breaker_open_until.clear()
        return strategy.quorums[strategy.sample_index(self.rng)]

    def _hedge_plan(
        self, path: str, primary: Quorum
    ) -> Tuple[Tuple[int, ...], Tuple[Tuple[Quorum, Tuple[int, ...]], ...]]:
        """Spares to contact and candidate quorums for a primary quorum.

        Spares are the first ``hedge_spares`` replicas outside the primary
        encountered walking the path's ranked quorums, so they belong
        to the most probable alternatives.  Candidates are the primary
        first, then every other support quorum of the same path contained
        in primary ∪ spares — the sets that can win the phase.
        """
        path = self._path_for(path)
        cache_key = (path, primary)
        plan = self._hedge_plans.get(cache_key)
        if plan is not None:
            return plan
        strategy = self._strategy_for(path)
        spares: List[int] = []
        candidates: List[Tuple[Quorum, Tuple[int, ...]]] = [
            (primary, self._members_for(primary))
        ]
        if self.hedge_spares > 0:
            order = strategy.ranked_order()
            all_members = strategy.quorum_members()
            for index in order:
                for rid in all_members[index]:
                    if rid not in primary and rid not in spares:
                        spares.append(rid)
                        if len(spares) == self.hedge_spares:
                            break
                if len(spares) == self.hedge_spares:
                    break
            contacted = primary | frozenset(spares)
            for index in order:
                quorum = strategy.quorums[index]
                if quorum != primary and quorum <= contacted:
                    candidates.append((quorum, all_members[index]))
        plan = (tuple(spares), tuple(candidates))
        self._hedge_plans[cache_key] = plan
        return plan

    def _absorb_straggler(
        self, rid: int, task: "asyncio.Task", hint: Optional[Dict[str, Any]]
    ) -> None:
        """Track an in-flight call after its phase already won.

        The reply is never discarded silently: latency goes into the
        straggler histogram, success clears suspicion, failure feeds
        suspicion and hinted handoff — exactly as if the phase had waited.
        """
        self._stragglers.add(task)

        def _finish(done: "asyncio.Task") -> None:
            self._stragglers.discard(done)
            if done.cancelled():
                return
            exc = done.exception()
            if exc is None:
                reply = done.result()
                self.metrics.record_straggler(reply.latency)
                if reply.payload.get("ok"):
                    self._note_success(rid)
            elif isinstance(exc, (ReplicaUnavailable, RequestTimeout)):
                self.metrics.record_straggler(exc.latency)
                self._note_failure(rid)
                if hint is not None:
                    self._record_hint(rid, hint)
            # Anything else was already surfaced by the winning path or is
            # unraisable from a callback; dropping it here is deliberate.

        task.add_done_callback(_finish)

    async def drain(self) -> None:
        """Await all absorbed hedge stragglers (call before teardown)."""
        while self._stragglers:
            await asyncio.gather(*list(self._stragglers), return_exceptions=True)

    async def _collect(
        self,
        tasks: Dict[int, "asyncio.Task"],
        candidates: Tuple[Tuple[Quorum, Tuple[int, ...]], ...],
        hint: Optional[Dict[str, Any]],
        deferred_spares: Tuple[int, ...] = (),
        request_for: Optional[Callable[[int], Dict[str, Any]]] = None,
    ) -> Tuple[Dict[int, Dict[str, Any]], List[int], float, Optional[Quorum]]:
        """Await a fan-out until the first candidate quorum fully acks.

        Returns ``(payloads, failed replica ids, attempt latency, winner)``.
        ``winner`` is the first candidate whose members all acknowledged
        (None if no candidate completed); once a winner emerges, still-
        pending calls are absorbed as background stragglers.  Without a
        winner the wait drains every call — identical accounting to the
        old gather-based fan-out.

        ``deferred_spares`` are hedge replicas *not yet contacted*: they
        are issued (via ``request_for``) as soon as ``hedge_delay_ms``
        elapses *from the start of the fan-out* without it completing,
        or a contacted member fails — Dean-style hedging that costs
        nothing on the fast path.  The deadline is anchored once: early
        partial replies must not keep resetting the window, or a phase
        that is slow in aggregate (members trickling in just under the
        delay apiece) never hedges at all.
        """
        rid_of = {task: rid for rid, task in tasks.items()}
        pending = set(tasks.values())
        payloads: Dict[int, Dict[str, Any]] = {}
        failed: List[int] = []
        attempt_latency = 0.0
        winner: Optional[Quorum] = None
        spares_pending = tuple(deferred_spares)
        loop = asyncio.get_running_loop()
        hedge_deadline = (
            loop.time() + self.hedge_delay_ms / 1000.0 if spares_pending else 0.0
        )

        def issue_spares() -> None:
            nonlocal spares_pending
            assert request_for is not None
            self.metrics.record_hedges_issued(len(spares_pending))
            submit = self._submit
            for rid in spares_pending:
                if submit is not None:
                    task = submit(rid, request_for(rid), self.timeout)
                else:
                    task = asyncio.ensure_future(
                        self.transport.call(rid, request_for(rid), self.timeout)
                    )
                rid_of[task] = rid
                pending.add(task)
            spares_pending = ()

        while pending:
            delay = (
                max(0.0, hedge_deadline - loop.time()) if spares_pending else None
            )
            done, pending = await asyncio.wait(
                pending, timeout=delay, return_when=asyncio.FIRST_COMPLETED
            )
            if not done:
                # Hedge delay elapsed with the fan-out still incomplete.
                issue_spares()
                continue
            # Set iteration order is id()-dependent; process replies in
            # replica order so seeded runs stay bit-identical.
            for task in sorted(done, key=lambda item: rid_of[item]):
                rid = rid_of[task]
                exc = task.exception()
                if exc is None:
                    reply = task.result()
                    attempt_latency = max(attempt_latency, reply.latency)
                    if reply.payload.get("ok"):
                        payloads[rid] = reply.payload
                    else:
                        failed.append(rid)
                elif isinstance(exc, (ReplicaUnavailable, RequestTimeout)):
                    attempt_latency = max(attempt_latency, exc.latency)
                    failed.append(rid)
                    if isinstance(exc, RequestTimeout):
                        self.metrics.record_timeout()
                    else:
                        self.metrics.record_unavailable()
                else:
                    for straggler in pending:
                        straggler.cancel()
                    raise exc
            if self.require_full_quorum and winner is None:
                for candidate, candidate_members in candidates:
                    if all(rid in payloads for rid in candidate_members):
                        winner = candidate
                        break
                if winner is not None:
                    break
            if failed and spares_pending:
                # A member failed outright: hedge immediately, an
                # alternate candidate may still complete the phase.
                issue_spares()
        for task in pending:
            self._absorb_straggler(rid_of[task], task, hint)
        return payloads, failed, attempt_latency, winner

    async def _quorum_phase(
        self,
        request_for: Callable[[int], Dict[str, Any]],
        kind: str = "op",
        key: str = "",
        hint: Optional[Dict[str, Any]] = None,
        path: str = "write",
    ) -> Tuple[Dict[int, Dict[str, Any]], float, int, Quorum]:
        """Run one request against a full quorum, retrying with fallbacks.

        Returns ``(payloads by replica id, total latency, attempts, quorum)``
        where ``quorum`` is the candidate that completed the phase (the
        sampled primary unless a hedge won).  Attempt latency is the
        winning candidate's slowest member (fan-out is concurrent);
        operation latency accumulates attempts plus backoffs.  ``hint`` is
        the write request to queue for members that could not be reached
        (hinted handoff).  ``path`` picks the distribution: reads sample
        the read side of a split pair, everything else (writes, repairs,
        transfers) the write side.
        """
        total_latency = 0.0
        for attempt in range(1, self.max_attempts + 1):
            quorum = self._pick_quorum(path)
            if self.lease_ttl > 0:
                joined, join_latency = await self._ensure_lease(quorum)
                total_latency += join_latency
                if not joined:
                    # Could not re-validate membership: abandon this
                    # quorum exactly like a failed fan-out attempt.
                    self.metrics.record_fallback()
                    if attempt < self.max_attempts:
                        backoff = min(
                            self.backoff_cap, self.backoff_base * 2 ** (attempt - 1)
                        )
                        total_latency += backoff
                        await self.transport.pause(backoff)
                    continue
            spares, candidates = self._hedge_plan(path, quorum)
            members = candidates[0][1]
            if spares:
                blocked = self._blocked_replicas()
                live_spares = tuple(rid for rid in spares if rid not in blocked)
            else:
                live_spares = ()
            deferred = self.hedge_delay_ms > 0
            upfront_spares = () if deferred else live_spares
            if upfront_spares:
                self.metrics.record_hedges_issued(len(upfront_spares))
            # Transports with a synchronous submission fast path (the
            # binary transport) fan the quorum out with zero per-member
            # task creation; everything downstream treats the returned
            # futures exactly like tasks.
            submit = self._submit
            if submit is not None:
                tasks: Dict[int, "asyncio.Task"] = {
                    rid: submit(rid, request_for(rid), self.timeout)
                    for rid in members + upfront_spares
                }
            else:
                tasks = {
                    rid: asyncio.ensure_future(
                        self.transport.call(rid, request_for(rid), self.timeout)
                    )
                    for rid in members + upfront_spares
                }
            payloads, failed, attempt_latency, winner = await self._collect(
                tasks,
                candidates,
                hint,
                deferred_spares=live_spares if deferred else (),
                request_for=request_for,
            )
            total_latency += attempt_latency
            if winner is None and not self.require_full_quorum and payloads:
                winner = quorum
            if winner is not None:
                for rid in payloads:
                    self._note_success(rid)
                for rid in failed:
                    self._note_failure(rid)
                    if hint is not None:
                        self._record_hint(rid, hint)
                if winner != quorum:
                    self.metrics.record_hedge_won()
                self.metrics.record_quorum_access(winner, path)
                return payloads, total_latency, attempt, winner
            for rid in failed:
                self._note_failure(rid)
                if hint is not None:
                    self._record_hint(rid, hint)
            # Every failed attempt is a fallback: the coordinator abandons
            # the picked quorum (the final attempt too, so failed ops do
            # not undercount by one).
            self.metrics.record_fallback()
            if attempt < self.max_attempts:
                backoff = min(self.backoff_cap, self.backoff_base * 2 ** (attempt - 1))
                total_latency += backoff
                await self.transport.pause(backoff)
        raise OperationFailed(kind, key, self.max_attempts, total_latency)

    @staticmethod
    def _best_payload(payloads: Dict[int, Dict[str, Any]]) -> Dict[str, Any]:
        best_rid = max(
            payloads, key=lambda rid: (payloads[rid]["counter"], payloads[rid]["writer"])
        )
        return payloads[best_rid]

    async def _read_phase(
        self, key: str
    ) -> Tuple[Dict[str, Any], Dict[int, Dict[str, Any]], float, int]:
        """One read through the quorum machinery, voted when masking.

        Crash mode (``byzantine_b == 0``): one quorum phase, newest
        version wins — the original semantics.  Masking mode: replies
        must *vote*; a quorum whose replies contain no ``b+1``-supported
        version (partial writes, or more liars than the budget) is
        abandoned and the read retries on a fresh quorum, up to
        ``max_attempts`` vote rounds.  Returns ``(accepted payload, all
        payloads, latency, attempts)`` — read-repair then repairs toward
        the *accepted* version, never toward an unquorate one.
        """
        request_for: Callable[[int], Dict[str, Any]] = lambda rid: {
            "op": "read",
            "key": key,
        }
        if self.byzantine_b <= 0:
            payloads, latency, attempts, _ = await self._quorum_phase(
                request_for, kind="read", key=key, path="read"
            )
            return self._best_payload(payloads), payloads, latency, attempts
        total_latency = 0.0
        total_attempts = 0
        for _ in range(self.max_attempts):
            try:
                payloads, latency, attempts, _ = await self._quorum_phase(
                    request_for, kind="read", key=key, path="read"
                )
            except OperationFailed as exc:
                raise OperationFailed(
                    "read",
                    key,
                    total_attempts + exc.attempts,
                    total_latency + exc.latency,
                ) from None
            total_latency += latency
            total_attempts += attempts
            accepted = self._voted_payload(payloads, key)
            if accepted is not None:
                return accepted, payloads, total_latency, total_attempts
        raise OperationFailed("read", key, total_attempts, total_latency)

    def _voted_payload(
        self, payloads: Dict[int, Dict[str, Any]], key: str
    ) -> Optional[Dict[str, Any]]:
        """Masking-quorum vote over one quorum's read replies.

        Accepts the candidate with the newest timestamp among those at
        least ``b+1`` members returned byte-identically; with at most
        ``b`` liars in the quorum, any quorate candidate is vouched for
        by a correct member.  Ties at one timestamp break by vote count
        and then by serialised value — *descending*, which is the
        adversarial direction for the fabricated-value chaos invariant:
        the deterministic tie-break never charitably prefers the honest
        value, so ``b+1`` colluding liars are caught by the harness, not
        masked by luck.  Returns ``None`` when no candidate is quorate
        (the caller retries on a fresh quorum).

        Two lie detectors feed :attr:`lied_replicas` and the
        suspicion/breaker machinery:

        * a reply that contradicts *any* quorate candidate at that
          candidate's own timestamp (the b+1 matching copies include a
          correct one, so the divergent bytes are fabricated);
        * a reply older than the replica's own ack floor — an honest
          store is monotone, so a replica that acknowledged version T of
          this key and now serves < T has rolled back or fake-acked.
        """
        threshold = self.byzantine_b + 1
        votes: Dict[Tuple[int, int, str], List[int]] = {}
        for rid in sorted(payloads):
            payload = payloads[rid]
            candidate = (
                int(payload["counter"]),
                int(payload["writer"]),
                _value_key(payload.get("value")),
            )
            votes.setdefault(candidate, []).append(rid)
        floors = self._ack_floor.get(key)
        if floors:
            for candidate, rids in votes.items():
                for rid in rids:
                    floor = floors.get(rid)
                    if floor is not None and candidate[:2] < floor:
                        self._mark_liar(rid)
        quorate = {
            candidate: rids
            for candidate, rids in votes.items()
            if len(rids) >= threshold
        }
        if not quorate:
            self.metrics.record_vote_failure()
            return None
        for accepted_candidate, accepted_rids in quorate.items():
            for candidate, rids in votes.items():
                if (
                    candidate[:2] == accepted_candidate[:2]
                    and candidate[2] != accepted_candidate[2]
                ):
                    # Same timestamp, different bytes: someone fabricated.
                    for rid in rids:
                        self._mark_liar(rid)
        accepted = max(
            quorate, key=lambda cand: (cand[0], cand[1], len(quorate[cand]), cand[2])
        )
        self.metrics.record_vote(len(quorate[accepted]) - threshold)
        return payloads[quorate[accepted][0]]

    # ------------------------------------------------------------------
    # Quorum leases (Timed-Quorum membership)
    # ------------------------------------------------------------------
    def _lease_live(self, quorum: Quorum) -> bool:
        expiry = self._quorum_leases.get(quorum)
        return expiry is not None and self._ops_issued < expiry

    async def _ensure_lease(self, quorum: Quorum) -> Tuple[bool, float]:
        """Hold a live lease on ``quorum``, re-joining if needed.

        Returns ``(lease held, handshake latency)``.  A fresh grant and
        a renewal look the same on the wire: a concurrent ``join`` to
        every member, all of which must acknowledge.  Reachability is
        the membership test — a member that cannot answer its join has
        effectively left, and the quorum is invalid until it rejoins.
        Spares contacted by hedging are deliberately *not* leased: they
        only ever complete a candidate quorum whose own members all
        answered this very phase.
        """
        if self._lease_live(quorum):
            return True, 0.0
        if quorum in self._quorum_leases:
            self.metrics.record_lease_expired()
        members = self._members_for(quorum)
        request = {
            "op": "join",
            "coordinator": self.coordinator_id,
            "ttl": self.lease_ttl,
        }
        outcomes = await asyncio.gather(
            *(self.transport.call(rid, request, self.timeout) for rid in members),
            return_exceptions=True,
        )
        latency = 0.0
        joined = True
        for rid, outcome in zip(members, outcomes):
            if isinstance(outcome, Reply):
                latency = max(latency, outcome.latency)
                if outcome.payload.get("ok") and outcome.payload.get("granted"):
                    continue
                joined = False
                self._note_failure(rid)
            elif isinstance(outcome, (ReplicaUnavailable, RequestTimeout)):
                latency = max(latency, outcome.latency)
                if isinstance(outcome, RequestTimeout):
                    self.metrics.record_timeout()
                else:
                    self.metrics.record_unavailable()
                joined = False
                self._note_failure(rid)
            elif isinstance(outcome, BaseException):
                raise outcome
        if joined:
            self._quorum_leases[quorum] = self._ops_issued + self.lease_ttl
            self.metrics.record_lease_renewed()
        else:
            self._quorum_leases.pop(quorum, None)
            self.metrics.record_rejoin_failed()
        return joined, latency

    # ------------------------------------------------------------------
    # Graceful degradation
    # ------------------------------------------------------------------
    async def _degraded_read(
        self, key: str, failure: OperationFailed
    ) -> Optional[ReadResult]:
        """Best-effort read against the least-damaged support quorum.

        Returns ``None`` when nobody answered (the caller then raises the
        original :class:`OperationFailed`); otherwise the newest version
        any respondent held, flagged ``stale=True``.
        """
        probe = self.read_strategy.least_damaged(self._blocked_replicas())
        members = sorted(probe)
        request = {"op": "read", "key": key}
        outcomes = await asyncio.gather(
            *(self.transport.call(rid, request, self.timeout) for rid in members),
            return_exceptions=True,
        )
        attempt_latency = 0.0
        payloads: Dict[int, Dict[str, Any]] = {}
        for rid, outcome in zip(members, outcomes):
            if isinstance(outcome, Reply):
                attempt_latency = max(attempt_latency, outcome.latency)
                if outcome.payload.get("ok"):
                    payloads[rid] = outcome.payload
            elif isinstance(outcome, (ReplicaUnavailable, RequestTimeout)):
                attempt_latency = max(attempt_latency, outcome.latency)
                if isinstance(outcome, RequestTimeout):
                    self.metrics.record_timeout()
                else:
                    self.metrics.record_unavailable()
            elif isinstance(outcome, BaseException):
                raise outcome
        if not payloads:
            return None
        if self.byzantine_b > 0:
            # Even a stale-flagged answer must never be fabricated: the
            # degraded probe votes with the same b+1 bar as quorum reads
            # and gives up (raising the original failure) when the
            # respondents cannot outvote the lie budget.
            best = self._voted_payload(payloads, key)
            if best is None:
                return None
        else:
            best = self._best_payload(payloads)
        self._clock = max(self._clock, int(best["counter"]))
        latency = failure.latency + attempt_latency
        attempts = failure.attempts + 1
        self.metrics.record_op("read", latency, ok=True, attempts=attempts)
        self.metrics.record_degraded_read()
        return ReadResult(
            best["value"],
            int(best["counter"]),
            int(best["writer"]),
            latency,
            attempts,
            stale=True,
        )

    def _record_hint(self, rid: int, request: Dict[str, Any]) -> None:
        """Queue a write for an unreachable member, newest version per key."""
        if not self.hinted_handoff:
            return
        key = str(request["key"])
        timestamp = (int(request["counter"]), int(request["writer"]))
        pending = self._hints.setdefault(rid, {})
        existing = pending.get(key)
        if existing is not None and (existing[0], existing[1]) >= timestamp:
            return
        if existing is None:
            queued = sum(len(per) for per in self._hints.values())
            if queued >= self.hint_capacity:
                return  # full: read-repair still converges, just slower
        pending[key] = (timestamp[0], timestamp[1], request.get("value"))
        self.metrics.record_hint()

    async def _replay_hints(self) -> None:
        """Anti-entropy: deliver queued hints to replicas that look alive.

        Runs after successful operations, best-effort.  A replica that
        fails its replay is re-suspected and keeps its remaining hints
        for the next round.  Reentrancy-safe: a sharded service funnels
        concurrent clients through one coordinator, so two replays can
        overlap — only one proceeds, and deletions go through ``pop``.
        """
        if not self._hints or self._replaying:
            return
        self._replaying = True
        try:
            blocked = self._blocked_replicas()
            for rid in sorted(self._hints):
                if rid in blocked:
                    continue
                pending = self._hints.get(rid)
                if pending is None:
                    continue
                for key, (counter, writer, value) in sorted(pending.items()):
                    request = {
                        "op": "repair",
                        "key": key,
                        "value": value,
                        "counter": counter,
                        "writer": writer,
                    }
                    try:
                        reply = await self.transport.call(rid, request, self.timeout)
                    except (ReplicaUnavailable, RequestTimeout):
                        self._note_failure(rid)
                        break
                    if reply.payload.get("ok") and pending.pop(key, None) is not None:
                        self.metrics.record_hint_replayed()
                        self._note_ack(key, rid, counter, writer)
                if not pending:
                    self._hints.pop(rid, None)
        finally:
            self._replaying = False

    async def _repair_stale(
        self,
        key: str,
        best: Dict[str, Any],
        payloads: Dict[int, Dict[str, Any]],
    ) -> None:
        """Write the winning version back to members that returned older
        data.  Best-effort: repair failures never fail the read, and
        repair traffic is tracked separately from quorum-access load."""
        best_ts = (int(best["counter"]), int(best["writer"]))
        stale = [
            rid
            for rid, payload in payloads.items()
            if (int(payload["counter"]), int(payload["writer"])) < best_ts
        ]
        if not stale:
            return
        request = {
            "op": "repair",
            "key": key,
            "value": best["value"],
            "counter": best_ts[0],
            "writer": best_ts[1],
        }
        targets = sorted(stale)
        submit = self._submit
        if submit is not None:
            calls = [submit(rid, request, self.timeout) for rid in targets]
        else:
            calls = [
                asyncio.ensure_future(self.transport.call(rid, request, self.timeout))
                for rid in targets
            ]
        outcomes = await asyncio.gather(*calls, return_exceptions=True)
        for rid, outcome in zip(targets, outcomes):
            if isinstance(outcome, Reply) and outcome.payload.get("ok"):
                self.metrics.record_read_repair()
                self._note_ack(key, rid, best_ts[0], best_ts[1])
            elif isinstance(outcome, BaseException) and not isinstance(
                outcome, (ReplicaUnavailable, RequestTimeout)
            ):
                raise outcome

    def __repr__(self) -> str:
        return (
            f"<Coordinator id={self.coordinator_id}"
            f" system={self.system.system_name!r}"
            f" clock={self._clock} ops={self._ops_issued}>"
        )
