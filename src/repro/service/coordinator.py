"""Quorum coordinator: the client-facing side of the KV service.

One :class:`Coordinator` turns ``read``/``write`` calls into quorum
phases against any :class:`~repro.core.quorum_system.QuorumSystem`:

1. pick a quorum by sampling the configured
   :class:`~repro.core.strategy.Strategy` (so the *observed* per-element
   load converges to the strategy's analytic
   :meth:`~repro.core.strategy.Strategy.element_loads`);
2. fan the request out concurrently to every member with a per-request
   timeout;
3. on any member failure, mark the culprits suspected, back off
   (capped exponential) and fall back to a quorum avoiding suspects via
   :meth:`~repro.core.strategy.Strategy.avoiding`;
4. reads apply read-repair: replicas that returned a stale version get
   the winning version written back.

Writes carry ``(counter, coordinator_id)`` timestamps from a logical
clock that also advances on every read (the clock adopts the largest
counter seen), so concurrent coordinators converge on a total order.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Dict, List, NamedTuple, Optional, Tuple

import numpy as np

from ..core.errors import ServiceError
from ..core.quorum_system import Quorum, QuorumSystem
from ..core.strategy import Strategy
from .metrics import ServiceMetrics
from .replica import NULL_TIMESTAMP
from .transport import (
    DEFAULT_TIMEOUT_MS,
    Reply,
    ReplicaUnavailable,
    RequestTimeout,
    Transport,
)


class OperationFailed(ServiceError):
    """Every attempt (including fallbacks) failed for one operation."""

    def __init__(self, kind: str, key: str, attempts: int, latency: float) -> None:
        self.kind = kind
        self.key = key
        self.attempts = attempts
        self.latency = latency
        super().__init__(
            f"{kind}({key!r}) failed after {attempts} quorum attempts"
        )


class ReadResult(NamedTuple):
    """Outcome of a quorum read."""

    value: Any
    counter: int
    writer: int
    latency: float
    attempts: int


class WriteResult(NamedTuple):
    """Outcome of a quorum write."""

    counter: int
    writer: int
    latency: float
    attempts: int


class Coordinator:
    """Executes KV operations through quorums of a system.

    Parameters
    ----------
    system:
        The quorum system to serve through.
    transport:
        Channel to the replicas (in-process or TCP).
    strategy:
        Quorum-picking distribution; defaults to the LP-optimal strategy
        from :mod:`repro.analysis.load`, i.e. the system served at its
        analytic load ``L(S)``.
    coordinator_id:
        Tie-breaker in write timestamps; give every concurrent client a
        distinct id.
    seed:
        Seed for this coordinator's sampling RNG.
    timeout:
        Per-request deadline (ms) handed to the transport.
    max_attempts:
        Quorum attempts per operation (first try + fallbacks).
    backoff_base, backoff_cap:
        Capped exponential backoff between attempts (ms):
        ``min(cap, base * 2**(attempt-1))``.
    suspicion_ttl:
        Suspected-down replicas are avoided for this many subsequent
        operations, then probed again (crashed replicas may recover).
    """

    def __init__(
        self,
        system: QuorumSystem,
        transport: Transport,
        strategy: Optional[Strategy] = None,
        *,
        coordinator_id: int = 0,
        seed: int = 0,
        timeout: float = DEFAULT_TIMEOUT_MS,
        max_attempts: int = 5,
        backoff_base: float = 8.0,
        backoff_cap: float = 128.0,
        suspicion_ttl: int = 25,
        read_repair: bool = True,
        metrics: Optional[ServiceMetrics] = None,
    ) -> None:
        if max_attempts < 1:
            raise ServiceError(f"max_attempts must be >= 1, got {max_attempts}")
        if timeout <= 0:
            raise ServiceError(f"timeout must be positive, got {timeout}")
        self.system = system
        self.transport = transport
        if strategy is None:
            from ..analysis.load import optimal_strategy

            strategy = optimal_strategy(system)
        if strategy.system is not system:
            raise ServiceError("strategy belongs to a different system")
        self.strategy = strategy
        self.coordinator_id = coordinator_id
        self.rng = np.random.default_rng(seed)
        self.timeout = timeout
        self.max_attempts = max_attempts
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.suspicion_ttl = suspicion_ttl
        self.read_repair = read_repair
        self.metrics = metrics if metrics is not None else ServiceMetrics(system.n)
        self._clock = 0
        self._ops_issued = 0
        self._suspected: Dict[int, int] = {}  # replica id -> op index suspected at

    # ------------------------------------------------------------------
    # Public operations
    # ------------------------------------------------------------------
    async def read(self, key: str) -> ReadResult:
        """Quorum read: newest version wins; stale members get repaired."""
        self._ops_issued += 1
        try:
            payloads, latency, attempts, quorum = await self._quorum_phase(
                lambda rid: {"op": "read", "key": key}, kind="read", key=key
            )
        except OperationFailed as exc:
            self.metrics.record_op("read", exc.latency, ok=False, attempts=exc.attempts)
            raise
        best_rid = max(
            payloads, key=lambda rid: (payloads[rid]["counter"], payloads[rid]["writer"])
        )
        best = payloads[best_rid]
        self._clock = max(self._clock, int(best["counter"]))
        self.metrics.record_op("read", latency, ok=True, attempts=attempts)
        if self.read_repair and best["counter"] > NULL_TIMESTAMP[0]:
            await self._repair_stale(key, best, payloads)
        return ReadResult(
            best["value"], int(best["counter"]), int(best["writer"]), latency, attempts
        )

    async def write(self, key: str, value: Any) -> WriteResult:
        """Quorum write stamped by this coordinator's logical clock."""
        self._ops_issued += 1
        self._clock += 1
        counter, writer = self._clock, self.coordinator_id
        request = {
            "op": "write",
            "key": key,
            "value": value,
            "counter": counter,
            "writer": writer,
        }
        try:
            payloads, latency, attempts, quorum = await self._quorum_phase(
                lambda rid: request, kind="write", key=key
            )
        except OperationFailed as exc:
            self.metrics.record_op("write", exc.latency, ok=False, attempts=exc.attempts)
            raise
        # A replica that ignored us saw a newer version; catch the clock up
        # so the next write of this coordinator is not stale too.
        newest = max(int(p["counter"]) for p in payloads.values())
        self._clock = max(self._clock, newest)
        self.metrics.record_op("write", latency, ok=True, attempts=attempts)
        return WriteResult(counter, writer, latency, attempts)

    # ------------------------------------------------------------------
    # Quorum machinery
    # ------------------------------------------------------------------
    def _active_suspects(self) -> frozenset:
        horizon = self._ops_issued - self.suspicion_ttl
        self._suspected = {
            rid: at for rid, at in self._suspected.items() if at > horizon
        }
        return frozenset(self._suspected)

    def _pick_quorum(self) -> Quorum:
        suspects = self._active_suspects()
        if suspects:
            restricted = self.strategy.avoiding(suspects)
            if restricted is not None:
                return restricted.sample(self.rng)
            # Every quorum touches a suspect: optimistically forget
            # suspicions (replicas recover) rather than refusing to serve.
            self._suspected.clear()
        return self.strategy.sample(self.rng)

    async def _quorum_phase(
        self,
        request_for: Callable[[int], Dict[str, Any]],
        kind: str = "op",
        key: str = "",
    ) -> Tuple[Dict[int, Dict[str, Any]], float, int, Quorum]:
        """Run one request against a full quorum, retrying with fallbacks.

        Returns ``(payloads by replica id, total latency, attempts, quorum)``.
        Attempt latency is the slowest member (fan-out is concurrent);
        operation latency accumulates attempts plus backoffs.
        """
        total_latency = 0.0
        for attempt in range(1, self.max_attempts + 1):
            quorum = self._pick_quorum()
            members = sorted(quorum)
            outcomes = await asyncio.gather(
                *(
                    self.transport.call(rid, request_for(rid), self.timeout)
                    for rid in members
                ),
                return_exceptions=True,
            )
            attempt_latency = 0.0
            payloads: Dict[int, Dict[str, Any]] = {}
            failed: List[int] = []
            for rid, outcome in zip(members, outcomes):
                if isinstance(outcome, Reply):
                    attempt_latency = max(attempt_latency, outcome.latency)
                    if outcome.payload.get("ok"):
                        payloads[rid] = outcome.payload
                    else:
                        failed.append(rid)
                elif isinstance(outcome, (ReplicaUnavailable, RequestTimeout)):
                    attempt_latency = max(attempt_latency, outcome.latency)
                    failed.append(rid)
                    if isinstance(outcome, RequestTimeout):
                        self.metrics.record_timeout()
                    else:
                        self.metrics.record_unavailable()
                elif isinstance(outcome, BaseException):
                    raise outcome
            total_latency += attempt_latency
            if not failed:
                for rid in members:
                    self._suspected.pop(rid, None)
                self.metrics.record_quorum_access(quorum)
                return payloads, total_latency, attempt, quorum
            for rid in failed:
                self._suspected[rid] = self._ops_issued
            if attempt < self.max_attempts:
                backoff = min(self.backoff_cap, self.backoff_base * 2 ** (attempt - 1))
                total_latency += backoff
                self.metrics.record_fallback()
                await self.transport.pause(backoff)
        raise OperationFailed(kind, key, self.max_attempts, total_latency)

    async def _repair_stale(
        self,
        key: str,
        best: Dict[str, Any],
        payloads: Dict[int, Dict[str, Any]],
    ) -> None:
        """Write the winning version back to members that returned older
        data.  Best-effort: repair failures never fail the read, and
        repair traffic is tracked separately from quorum-access load."""
        best_ts = (int(best["counter"]), int(best["writer"]))
        stale = [
            rid
            for rid, payload in payloads.items()
            if (int(payload["counter"]), int(payload["writer"])) < best_ts
        ]
        if not stale:
            return
        request = {
            "op": "repair",
            "key": key,
            "value": best["value"],
            "counter": best_ts[0],
            "writer": best_ts[1],
        }
        outcomes = await asyncio.gather(
            *(self.transport.call(rid, request, self.timeout) for rid in sorted(stale)),
            return_exceptions=True,
        )
        for outcome in outcomes:
            if isinstance(outcome, Reply) and outcome.payload.get("ok"):
                self.metrics.record_read_repair()
            elif isinstance(outcome, BaseException) and not isinstance(
                outcome, (ReplicaUnavailable, RequestTimeout)
            ):
                raise outcome

    def __repr__(self) -> str:
        return (
            f"<Coordinator id={self.coordinator_id}"
            f" system={self.system.system_name!r}"
            f" clock={self._clock} ops={self._ops_issued}>"
        )
