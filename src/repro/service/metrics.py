"""Metrics for the serving layer: observed load, latency, reliability.

The point of the subsystem is to close the loop between the paper's
analytic quantities and a running service, so the central object here is
*observed element load*: the fraction of quorum accesses that touched
each element, directly comparable to
:meth:`repro.core.strategy.Strategy.element_loads` (Definition 3.4) and
to the LP-optimal load from :mod:`repro.analysis.load`.

Everything is exportable as a plain dict (:meth:`ServiceMetrics.to_dict`)
so benchmarks can be diffed run-to-run — the determinism tests assert
bit-identical dicts for identical seeds.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..core.errors import ServiceError
from ..runtime.metrics import KeyCounter, LatencyHistogram

#: Counter attributes a transport may expose, in reporting order.  The
#: wire-level ones (frames, coalesced ops, the derived ops-per-frame and
#: bytes-per-op ratios) come from :class:`~repro.service.transport.
#: BinaryTcpTransport`; the JSON transports expose the byte/flush subset.
#: Kept here, next to the op metrics, so every report that quotes an
#: ops/s figure can also say what the wire did to earn it.
TRANSPORT_COUNTERS = (
    "calls",
    "flushes",
    "bytes_sent",
    "bytes_received",
    "reconnects",
    "frames_sent",
    "frames_received",
    "coalesced_ops",
    "ops_per_frame",
    "bytes_per_op",
)


def transport_summary(transport: Any) -> Dict[str, Any]:
    """Snapshot whichever :data:`TRANSPORT_COUNTERS` a transport exposes.

    Works across the whole transport zoo — counters a transport lacks
    are simply absent, so callers can diff summaries without caring
    which wire (JSON lines, binary frames, in-process) produced them.
    Ratios stay floats; counts are coerced to plain ints so the result
    is always JSON-serialisable.
    """
    summary: Dict[str, Any] = {}
    for name in TRANSPORT_COUNTERS:
        value = getattr(transport, name, None)
        if value is None:
            continue
        if isinstance(value, float):
            summary[name] = value
        else:
            summary[name] = int(value)
    return summary


class ServiceMetrics:
    """Counters and histograms for one coordinator/benchmark run.

    Parameters
    ----------
    n:
        Universe size (number of replicas) — sizes the per-element
        access counters.
    """

    def __init__(self, n: int) -> None:
        if n <= 0:
            raise ServiceError(f"metrics need a positive universe size, got {n}")
        self.n = n
        self.element_accesses = np.zeros(n, dtype=np.int64)
        self.quorum_accesses = 0
        # Per-path accounting for split read/write strategies: the same
        # counters, kept separately for quorums sampled by the read path
        # and the write path (repair/transfer included), so observed
        # loads can be compared against each distribution's prediction.
        self.path_element_accesses: Dict[str, np.ndarray] = {
            "read": np.zeros(n, dtype=np.int64),
            "write": np.zeros(n, dtype=np.int64),
        }
        self.path_quorum_accesses: Dict[str, int] = {"read": 0, "write": 0}
        self.ops_attempted = 0
        self.ops_succeeded = 0
        self.ops_failed = 0
        self.ops_by_kind: Dict[str, int] = {}
        self.retries = 0
        self.fallbacks = 0
        self.timeouts = 0
        self.unavailable = 0
        self.read_repairs = 0
        self.degraded_reads = 0
        self.hints_recorded = 0
        self.hints_replayed = 0
        self.breaker_opens = 0
        self.hedges_issued = 0
        self.hedges_won = 0
        # Masking-read (Byzantine) accounting.
        self.lies_detected = 0
        self.vote_rounds = 0
        self.vote_failures = 0
        self.vote_margin_sum = 0
        self.vote_margin_min: Optional[int] = None
        # Quorum-lease accounting.
        self.lease_renewals = 0
        self.lease_expiries = 0
        self.rejoins_failed = 0
        # Shared runtime histograms (sim metrics use the identical class,
        # so latency numerics agree across substrates).
        self.straggler_latency = LatencyHistogram()
        self.op_latency = LatencyHistogram()
        # Per-key access counts: the hot-key signal behind kvbench's
        # key-skew report and the sharding layer's hot-shard detection.
        self.keys = KeyCounter()
        # Wall-clock of the measured workload section, stamped by the
        # load generator.  Deliberately NOT in to_dict(): the snapshot
        # must stay bit-identical for identical seeds.
        self.elapsed_seconds = 0.0
        # Virtual-time span of the measured section (ms), stamped when
        # the transport runs on a virtual clock; 0.0 under wall clocks.
        # Kept out of to_dict() alongside elapsed_seconds.
        self.virtual_elapsed_ms = 0.0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_quorum_access(
        self, quorum: Iterable[int], path: Optional[str] = None
    ) -> None:
        """Count one successful access of a full quorum.

        ``path`` ("read" or "write") additionally attributes the access
        to one side of a split read/write strategy; omitting it keeps
        only the combined counters (legacy callers).
        """
        self.quorum_accesses += 1
        if path is None:
            for element in quorum:
                self.element_accesses[element] += 1
            return
        per_path = self.path_element_accesses[path]
        self.path_quorum_accesses[path] += 1
        for element in quorum:
            self.element_accesses[element] += 1
            per_path[element] += 1

    def record_op(self, kind: str, latency: float, ok: bool, attempts: int) -> None:
        """Count one client operation (read or write) end to end."""
        self.ops_attempted += 1
        self.ops_by_kind[kind] = self.ops_by_kind.get(kind, 0) + 1
        if ok:
            self.ops_succeeded += 1
        else:
            self.ops_failed += 1
        if attempts > 1:
            self.retries += attempts - 1
        self.op_latency.record(latency)

    def record_key_access(self, key: str) -> None:
        """Count one client operation against ``key`` (read or write)."""
        self.keys.record(key)

    def record_fallback(self) -> None:
        """A retry that switched to a different (next-best) quorum."""
        self.fallbacks += 1

    def record_timeout(self) -> None:
        """One per-request deadline miss."""
        self.timeouts += 1

    def record_unavailable(self) -> None:
        """One request that hit a crashed/unreachable replica."""
        self.unavailable += 1

    def record_read_repair(self) -> None:
        """One stale replica rewritten during a read."""
        self.read_repairs += 1

    def record_degraded_read(self) -> None:
        """One best-effort stale read served without a full quorum."""
        self.degraded_reads += 1

    def record_hint(self) -> None:
        """One write queued as a hinted handoff for a failed replica."""
        self.hints_recorded += 1

    def record_hint_replayed(self) -> None:
        """One hinted write delivered to its replica after recovery."""
        self.hints_replayed += 1

    def record_breaker_open(self) -> None:
        """One per-replica circuit breaker tripped open."""
        self.breaker_opens += 1

    def record_hedges_issued(self, count: int = 1) -> None:
        """``count`` spare (hedge) requests issued beyond the quorum."""
        self.hedges_issued += count

    def record_hedge_won(self) -> None:
        """One quorum phase completed by a non-primary candidate quorum."""
        self.hedges_won += 1

    def record_straggler(self, latency: float) -> None:
        """One absorbed straggler reply, with its observed latency (ms)."""
        self.straggler_latency.record(latency)

    def record_lie(self) -> None:
        """One replica caught returning a divergent value for the
        accepted timestamp during a masking read."""
        self.lies_detected += 1

    def record_vote(self, margin: int) -> None:
        """One masking read accepted; ``margin`` is votes beyond the
        required ``b+1`` (0 = bare quorum, the adversary's best case)."""
        self.vote_rounds += 1
        self.vote_margin_sum += int(margin)
        if self.vote_margin_min is None or margin < self.vote_margin_min:
            self.vote_margin_min = int(margin)

    def record_vote_failure(self) -> None:
        """One quorum of replies with no ``b+1``-supported candidate."""
        self.vote_rounds += 1
        self.vote_failures += 1

    def record_lease_renewed(self) -> None:
        """One quorum lease granted or renewed via a join handshake."""
        self.lease_renewals += 1

    def record_lease_expired(self) -> None:
        """One sampled quorum found with its lease expired."""
        self.lease_expiries += 1

    def record_rejoin_failed(self) -> None:
        """One re-join handshake that could not reach every member."""
        self.rejoins_failed += 1

    # Historical list-typed access, preserved for callers and tests that
    # index or len() the raw samples.
    @property
    def op_latencies(self) -> List[float]:
        return self.op_latency.samples

    @property
    def straggler_latencies(self) -> List[float]:
        return self.straggler_latency.samples

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def success_rate(self) -> float:
        """Fraction of operations that completed (1.0 when idle)."""
        if self.ops_attempted == 0:
            return 1.0
        return self.ops_succeeded / self.ops_attempted

    def observed_loads(self) -> np.ndarray:
        """Per-element access frequency over quorum accesses (Def. 3.4).

        Comparable to ``Strategy.element_loads()``: both are "probability
        the element takes part in a picked quorum".
        """
        if self.quorum_accesses == 0:
            return np.zeros(self.n)
        return self.element_accesses / self.quorum_accesses

    def observed_path_loads(self, path: str) -> np.ndarray:
        """Per-element access frequency over one path's quorum accesses.

        Comparable to the corresponding side of a
        :class:`~repro.core.rwstrategy.ReadWriteStrategy`:
        ``strategy.reads.element_loads()`` for the read path,
        ``strategy.writes.element_loads()`` for the write path.
        """
        accesses = self.path_quorum_accesses[path]
        if accesses == 0:
            return np.zeros(self.n)
        return self.path_element_accesses[path] / accesses

    def latency_percentile(self, q: float) -> float:
        """Operation latency percentile ``q`` in [0, 100] (ms)."""
        return self.op_latency.percentile(q)

    def load_deviation(self, predicted: Sequence[float]) -> Dict[str, float]:
        """Observed-vs-predicted load summary against a strategy's loads.

        ``max_abs_error`` is the worst per-element gap;
        ``max_relative_error`` normalises by the predicted value (elements
        predicted below 1% of the maximum are compared absolutely, so an
        element the strategy never touches cannot blow up the ratio).
        """
        predicted_arr = np.asarray(predicted, dtype=float)
        if predicted_arr.shape != (self.n,):
            raise ServiceError(
                f"expected {self.n} predicted loads, got {predicted_arr.shape}"
            )
        observed = self.observed_loads()
        errors = np.abs(observed - predicted_arr)
        floor = max(predicted_arr.max(), 1e-12) * 0.01
        relative = errors / np.maximum(predicted_arr, floor)
        return {
            "max_abs_error": float(errors.max()),
            "max_relative_error": float(relative.max()),
            "mean_abs_error": float(errors.mean()),
            "observed_max_load": float(observed.max()),
            "predicted_max_load": float(predicted_arr.max()),
        }

    # ------------------------------------------------------------------
    def to_dict(self, predicted: Optional[Sequence[float]] = None) -> Dict[str, Any]:
        """JSON-serialisable snapshot; pass the strategy's element loads
        to include the observed-vs-predicted comparison."""
        snapshot: Dict[str, Any] = {
            "n": self.n,
            "ops": {
                "attempted": self.ops_attempted,
                "succeeded": self.ops_succeeded,
                "failed": self.ops_failed,
                "by_kind": dict(sorted(self.ops_by_kind.items())),
                "success_rate": self.success_rate,
            },
            "quorum_accesses": self.quorum_accesses,
            "retries": self.retries,
            "fallbacks": self.fallbacks,
            "timeouts": self.timeouts,
            "unavailable": self.unavailable,
            "read_repairs": self.read_repairs,
            "degraded_reads": self.degraded_reads,
            "hints_recorded": self.hints_recorded,
            "hints_replayed": self.hints_replayed,
            "breaker_opens": self.breaker_opens,
            "hedging": {
                "issued": self.hedges_issued,
                "won": self.hedges_won,
                "stragglers": self.straggler_latency.count,
                "straggler_ms": {
                    "mean": self.straggler_latency.mean,
                    "p95": self.straggler_latency.percentile(95),
                },
            },
            "byzantine": {
                "lies_detected": self.lies_detected,
                "vote_rounds": self.vote_rounds,
                "vote_failures": self.vote_failures,
                "vote_margin_min": self.vote_margin_min,
                "vote_margin_mean": (
                    self.vote_margin_sum / (self.vote_rounds - self.vote_failures)
                    if self.vote_rounds > self.vote_failures
                    else None
                ),
            },
            "leases": {
                "renewals": self.lease_renewals,
                "expiries": self.lease_expiries,
                "rejoins_failed": self.rejoins_failed,
            },
            "latency_ms": self.op_latency.summary(),
            "hot_keys": self.keys.skew_summary(10),
            "observed_loads": [float(x) for x in self.observed_loads()],
            "path_loads": {
                path: {
                    "quorum_accesses": self.path_quorum_accesses[path],
                    "observed_loads": [
                        float(x) for x in self.observed_path_loads(path)
                    ],
                }
                for path in ("read", "write")
            },
        }
        if predicted is not None:
            snapshot["predicted_loads"] = [float(x) for x in predicted]
            snapshot["load_deviation"] = self.load_deviation(predicted)
        return snapshot

    def __repr__(self) -> str:
        return (
            f"<ServiceMetrics ops={self.ops_attempted}"
            f" success={self.success_rate:.3f}"
            f" accesses={self.quorum_accesses}>"
        )
