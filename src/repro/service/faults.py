"""Fault injection for the KV service.

The declarative fault model — :class:`Window`, the fault rule types and
:class:`FaultSchedule` — lives in :mod:`repro.runtime.faults` so that a
single schedule can drive the asyncio service, the discrete-event
simulator and the analytic availability comparison alike.  This module
re-exports all of it (the historical import location) and contributes
the service-side executor: :class:`FaultyTransport`, which applies a
schedule on top of any inner :class:`~repro.service.transport.Transport`
(in-process, TCP, or the virtual-time :class:`~repro.service.simtransport.SimTransport`).

Determinism: the drop/duplicate coin flips come from the wrapper's own
seeded RNG, drawn once per call *unconditionally* (active or not), so a
fixed seed gives one fixed randomness stream no matter how the schedule
is edited.  Every injected fault is appended to :attr:`FaultyTransport.
activation_log` as ``(tick, kind, replica_id)`` — the cross-substrate
determinism tests assert this log is identical whichever inner transport
the wrapper runs over.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, Iterator, Optional, Set, Tuple

import numpy as np

from ..runtime.faults import (
    BYZANTINE_MODES,
    ByzantineFault,
    CrashFault,
    DropFault,
    DuplicateFault,
    FaultSchedule,
    FlappingFault,
    LatencyFault,
    PartitionFault,
    Window,
    _as_window,
    iid_crash_schedule,
    sample_iid_crash_set,
    split_brain_schedule,
)
from .replica import NULL_TIMESTAMP
from .transport import (
    DEFAULT_TIMEOUT_MS,
    Reply,
    ReplicaUnavailable,
    RequestTimeout,
    Transport,
)

__all__ = [
    "Window",
    "CrashFault",
    "FlappingFault",
    "PartitionFault",
    "LatencyFault",
    "DropFault",
    "DuplicateFault",
    "ByzantineFault",
    "BYZANTINE_MODES",
    "FaultSchedule",
    "split_brain_schedule",
    "iid_crash_schedule",
    "sample_iid_crash_set",
    "ActivationLog",
    "DEFAULT_ACTIVATION_LOG_CAP",
    "FaultyTransport",
]

#: Default bound on :attr:`FaultyTransport.activation_log`.  Large enough
#: that every single-run test sees the complete history, small enough
#: that a multi-seed sweep cannot grow memory without bound.
DEFAULT_ACTIVATION_LOG_CAP = 65536


class ActivationLog:
    """Bounded injection history: a ring buffer of ``(tick, kind, id)``.

    Behaves like the list it replaced — iteration, indexing, ``len`` and
    equality against plain lists/tuples all work — but keeps only the
    most recent ``cap`` entries and counts the rest in :attr:`dropped`,
    so week-long sweeps cannot grow memory without bound.
    """

    def __init__(self, cap: int = DEFAULT_ACTIVATION_LOG_CAP) -> None:
        if cap <= 0:
            raise ValueError(f"activation log cap must be positive, got {cap}")
        self.cap = int(cap)
        self.dropped = 0
        self._entries: deque = deque(maxlen=self.cap)

    def append(self, entry: Tuple[float, str, int]) -> None:
        if len(self._entries) == self.cap:
            self.dropped += 1
        self._entries.append(entry)

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Tuple[float, str, int]]:
        return iter(self._entries)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return list(self._entries)[index]
        return self._entries[index]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ActivationLog):
            return list(self._entries) == list(other._entries)
        if isinstance(other, (list, tuple)):
            return list(self._entries) == list(other)
        return NotImplemented

    def __repr__(self) -> str:
        return (
            f"<ActivationLog {len(self._entries)}/{self.cap}"
            f" dropped={self.dropped}>"
        )


class FaultyTransport(Transport):
    """Applies a :class:`FaultSchedule` on top of an inner transport.

    Parameters
    ----------
    inner:
        The real channel (in-process, TCP, or virtual-time sim).  All
        faults are injected in this wrapper; the inner transport is never
        touched, so a post-run verifier can read the replicas fault-free
        through it.
    schedule:
        The fault rules.
    seed:
        Seed for the drop/duplicate coin flips.
    site:
        Which client site this transport represents for partition faults
        and equivocation (coordinators on different sides of a partition
        hold different ``FaultyTransport`` instances over one shared
        inner transport; an equivocating replica tells each site a
        different lie).
    log_cap:
        Ring-buffer bound for :attr:`activation_log`; older entries are
        evicted and counted in :attr:`activations_dropped`.
    fabricated_registry:
        Optional shared set collecting every fabricated value this
        wrapper hands out.  The chaos harness passes one set to every
        client's wrapper so its safety invariant can recognise a
        Byzantine fabrication no matter which liar produced it.
    """

    def __init__(
        self,
        inner: Transport,
        schedule: FaultSchedule,
        *,
        seed: int = 0,
        site: int = 0,
        log_cap: int = DEFAULT_ACTIVATION_LOG_CAP,
        fabricated_registry: Optional[Set[str]] = None,
    ) -> None:
        self.inner = inner
        self.schedule = schedule
        self.site = site
        self.rng = np.random.default_rng(seed)
        self.clock = 0.0
        self.calls = 0
        self.injected: Dict[str, int] = {
            "crash": 0,
            "partition": 0,
            "latency_timeout": 0,
            "drop_request": 0,
            "drop_response": 0,
            "duplicate": 0,
            "byz_wrong_value": 0,
            "byz_stale_timestamp": 0,
            "byz_equivocate": 0,
            "byz_write_fakeack": 0,
        }
        #: Every injected fault as ``(tick, kind, replica_id)``, in
        #: injection order.  Pure function of (schedule, seed, call
        #: sequence) — independent of the inner transport, which the
        #: cross-substrate determinism tests rely on.  Bounded: only the
        #: most recent ``log_cap`` entries are kept.
        self.activation_log = ActivationLog(log_cap)
        #: Every fabricated value handed to a caller (shared when a
        #: ``fabricated_registry`` was passed in).
        self.fabricated_values: Set[str] = (
            fabricated_registry if fabricated_registry is not None else set()
        )

    @property
    def activations_dropped(self) -> int:
        """Entries evicted from the bounded :attr:`activation_log`."""
        return self.activation_log.dropped

    def advance(self, ticks: float = 1.0) -> None:
        """Move the fault clock forward (the harness calls this per op)."""
        self.clock += ticks

    def _inject(self, kind: str, replica_id: int) -> None:
        self.injected[kind] += 1
        self.activation_log.append((self.clock, kind, replica_id))

    async def call(
        self,
        replica_id: int,
        request: Dict[str, Any],
        timeout: float = DEFAULT_TIMEOUT_MS,
    ) -> Reply:
        now = self.clock
        self.calls += 1
        # Unconditional draws keep the randomness stream independent of
        # which rules are active (edit the schedule, keep the coins).
        u_request, u_response, u_duplicate = (
            float(self.rng.random()),
            float(self.rng.random()),
            float(self.rng.random()),
        )
        crashed = self.schedule.crash_down_at(now)
        if replica_id in crashed:
            self._inject("crash", replica_id)
            raise ReplicaUnavailable(replica_id, latency=timeout, reason="fault: crash")
        if replica_id in self.schedule.unreachable_at(now, self.site):
            self._inject("partition", replica_id)
            raise ReplicaUnavailable(
                replica_id, latency=timeout, reason="fault: partition"
            )
        if u_request < self.schedule.drop_probability(now, replica_id, "request"):
            # The request never reaches the replica: no side effect, the
            # caller burns the deadline waiting for a reply.
            self._inject("drop_request", replica_id)
            raise RequestTimeout(replica_id, latency=timeout)
        byz_mode = self.schedule.byzantine_mode_at(now, replica_id)
        op = request.get("op")
        fake_ack = byz_mode == "wrong_value" and op in ("write", "repair")
        # A fake-acked write must not touch the replica's store, but the
        # liar still answers on time: send a side-effect-free ping down
        # the inner transport so the latency/service-time draws (and the
        # FIFO queue occupancy) are identical to an honest write.
        wire_request = {"op": "ping"} if fake_ack else request
        reply = await self.inner.call(replica_id, wire_request, timeout)
        if u_duplicate < self.schedule.duplicate_probability(now, replica_id):
            self._inject("duplicate", replica_id)
            try:
                await self.inner.call(replica_id, wire_request, timeout)
            except (ReplicaUnavailable, RequestTimeout):
                pass  # the duplicate is fire-and-forget
        if u_response < self.schedule.drop_probability(now, replica_id, "response"):
            # Side effect applied, reply lost: an acknowledged-by-nobody
            # write the safety checker must tolerate as "pending".
            self._inject("drop_response", replica_id)
            raise RequestTimeout(replica_id, latency=timeout)
        latency = self.schedule.latency_at(now, replica_id, reply.latency)
        if latency > timeout:
            self._inject("latency_timeout", replica_id)
            raise RequestTimeout(replica_id, latency=timeout)
        payload = reply.payload
        if fake_ack:
            self._inject("byz_write_fakeack", replica_id)
            payload = {
                "ok": True,
                "replica": replica_id,
                "applied": True,
                "counter": int(request.get("counter", 0)),
                "writer": int(request.get("writer", -1)),
            }
        elif byz_mode is not None and op == "read" and payload.get("ok"):
            payload = self._fabricate(byz_mode, replica_id, request, payload)
        return Reply(payload, latency)

    def _fabricate(
        self,
        mode: str,
        replica_id: int,
        request: Dict[str, Any],
        payload: Dict[str, Any],
    ) -> Dict[str, Any]:
        """Build the lying read reply for an active Byzantine rule.

        Deterministic by construction (no RNG): ``wrong_value`` liars
        collude — every liar fabricates the same bytes for a given
        (key, version) — because identical lies maximise vote counts,
        the adversary's best play against a b+1-vote reader.  The
        ``zzz-byz:`` prefix sorts above every honest value so the voted
        read's deterministic tie-break is adversarial, not charitable.
        """
        key = request.get("key")
        if mode == "stale_timestamp":
            # Rollback attack: deny the key was ever written.
            self._inject("byz_stale_timestamp", replica_id)
            return {
                "ok": True,
                "replica": replica_id,
                "value": None,
                "counter": NULL_TIMESTAMP[0],
                "writer": NULL_TIMESTAMP[1],
            }
        counter = int(payload.get("counter", 0))
        writer = int(payload.get("writer", -1))
        value = f"zzz-byz:{key}:{counter}:{writer}"
        if mode == "equivocate":
            value = f"{value}:s{self.site}"
            self._inject("byz_equivocate", replica_id)
        else:
            self._inject("byz_wrong_value", replica_id)
        self.fabricated_values.add(value)
        return {
            "ok": True,
            "replica": replica_id,
            "value": value,
            "counter": counter,
            "writer": writer,
        }

    async def pause(self, delay_ms: float) -> None:
        await self.inner.pause(delay_ms)

    async def close(self) -> None:
        await self.inner.close()

    def __repr__(self) -> str:
        return (
            f"<FaultyTransport site={self.site} clock={self.clock:g}"
            f" calls={self.calls} over {self.inner!r}>"
        )
