"""Fault injection for the KV service.

The declarative fault model — :class:`Window`, the fault rule types and
:class:`FaultSchedule` — lives in :mod:`repro.runtime.faults` so that a
single schedule can drive the asyncio service, the discrete-event
simulator and the analytic availability comparison alike.  This module
re-exports all of it (the historical import location) and contributes
the service-side executor: :class:`FaultyTransport`, which applies a
schedule on top of any inner :class:`~repro.service.transport.Transport`
(in-process, TCP, or the virtual-time :class:`~repro.service.simtransport.SimTransport`).

Determinism: the drop/duplicate coin flips come from the wrapper's own
seeded RNG, drawn once per call *unconditionally* (active or not), so a
fixed seed gives one fixed randomness stream no matter how the schedule
is edited.  Every injected fault is appended to :attr:`FaultyTransport.
activation_log` as ``(tick, kind, replica_id)`` — the cross-substrate
determinism tests assert this log is identical whichever inner transport
the wrapper runs over.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

import numpy as np

from ..runtime.faults import (
    CrashFault,
    DropFault,
    DuplicateFault,
    FaultSchedule,
    FlappingFault,
    LatencyFault,
    PartitionFault,
    Window,
    _as_window,
    iid_crash_schedule,
    sample_iid_crash_set,
    split_brain_schedule,
)
from .transport import (
    DEFAULT_TIMEOUT_MS,
    Reply,
    ReplicaUnavailable,
    RequestTimeout,
    Transport,
)

__all__ = [
    "Window",
    "CrashFault",
    "FlappingFault",
    "PartitionFault",
    "LatencyFault",
    "DropFault",
    "DuplicateFault",
    "FaultSchedule",
    "split_brain_schedule",
    "iid_crash_schedule",
    "sample_iid_crash_set",
    "FaultyTransport",
]


class FaultyTransport(Transport):
    """Applies a :class:`FaultSchedule` on top of an inner transport.

    Parameters
    ----------
    inner:
        The real channel (in-process, TCP, or virtual-time sim).  All
        faults are injected in this wrapper; the inner transport is never
        touched, so a post-run verifier can read the replicas fault-free
        through it.
    schedule:
        The fault rules.
    seed:
        Seed for the drop/duplicate coin flips.
    site:
        Which client site this transport represents for partition faults
        (coordinators on different sides of a partition hold different
        ``FaultyTransport`` instances over one shared inner transport).
    """

    def __init__(
        self,
        inner: Transport,
        schedule: FaultSchedule,
        *,
        seed: int = 0,
        site: int = 0,
    ) -> None:
        self.inner = inner
        self.schedule = schedule
        self.site = site
        self.rng = np.random.default_rng(seed)
        self.clock = 0.0
        self.calls = 0
        self.injected: Dict[str, int] = {
            "crash": 0,
            "partition": 0,
            "latency_timeout": 0,
            "drop_request": 0,
            "drop_response": 0,
            "duplicate": 0,
        }
        #: Every injected fault as ``(tick, kind, replica_id)``, in
        #: injection order.  Pure function of (schedule, seed, call
        #: sequence) — independent of the inner transport, which the
        #: cross-substrate determinism tests rely on.
        self.activation_log: List[Tuple[float, str, int]] = []

    def advance(self, ticks: float = 1.0) -> None:
        """Move the fault clock forward (the harness calls this per op)."""
        self.clock += ticks

    def _inject(self, kind: str, replica_id: int) -> None:
        self.injected[kind] += 1
        self.activation_log.append((self.clock, kind, replica_id))

    async def call(
        self,
        replica_id: int,
        request: Dict[str, Any],
        timeout: float = DEFAULT_TIMEOUT_MS,
    ) -> Reply:
        now = self.clock
        self.calls += 1
        # Unconditional draws keep the randomness stream independent of
        # which rules are active (edit the schedule, keep the coins).
        u_request, u_response, u_duplicate = (
            float(self.rng.random()),
            float(self.rng.random()),
            float(self.rng.random()),
        )
        crashed = self.schedule.crash_down_at(now)
        if replica_id in crashed:
            self._inject("crash", replica_id)
            raise ReplicaUnavailable(replica_id, latency=timeout, reason="fault: crash")
        if replica_id in self.schedule.unreachable_at(now, self.site):
            self._inject("partition", replica_id)
            raise ReplicaUnavailable(
                replica_id, latency=timeout, reason="fault: partition"
            )
        if u_request < self.schedule.drop_probability(now, replica_id, "request"):
            # The request never reaches the replica: no side effect, the
            # caller burns the deadline waiting for a reply.
            self._inject("drop_request", replica_id)
            raise RequestTimeout(replica_id, latency=timeout)
        reply = await self.inner.call(replica_id, request, timeout)
        if u_duplicate < self.schedule.duplicate_probability(now, replica_id):
            self._inject("duplicate", replica_id)
            try:
                await self.inner.call(replica_id, request, timeout)
            except (ReplicaUnavailable, RequestTimeout):
                pass  # the duplicate is fire-and-forget
        if u_response < self.schedule.drop_probability(now, replica_id, "response"):
            # Side effect applied, reply lost: an acknowledged-by-nobody
            # write the safety checker must tolerate as "pending".
            self._inject("drop_response", replica_id)
            raise RequestTimeout(replica_id, latency=timeout)
        latency = self.schedule.latency_at(now, replica_id, reply.latency)
        if latency > timeout:
            self._inject("latency_timeout", replica_id)
            raise RequestTimeout(replica_id, latency=timeout)
        return Reply(reply.payload, latency)

    async def pause(self, delay_ms: float) -> None:
        await self.inner.pause(delay_ms)

    async def close(self) -> None:
        await self.inner.close()

    def __repr__(self) -> str:
        return (
            f"<FaultyTransport site={self.site} clock={self.clock:g}"
            f" calls={self.calls} over {self.inner!r}>"
        )
