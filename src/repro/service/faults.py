"""Declarative fault injection for the KV service.

A :class:`FaultSchedule` is a list of fault rules, each active inside a
half-open window ``[start, end)`` of *ticks* — the virtual time axis of a
chaos run (the harness advances one tick per scheduled operation).  A
:class:`FaultyTransport` applies the schedule on top of any inner
:class:`~repro.service.transport.Transport` (in-process or TCP), so the
same fault description drives both deterministic chaos runs and real
sockets.

Fault types
-----------
:class:`CrashFault`
    Replicas are hard-down: requests burn the full deadline and fail.
:class:`FlappingFault`
    Replicas alternate down/up with a fixed period — repeated
    crash/recover cycles that stress suspicion TTLs and circuit breakers.
:class:`PartitionFault`
    Asymmetric network partition: *clients at the given sites* cannot
    reach the listed replicas (other sites still can).  Split-brain
    scenarios use one fault per side.
:class:`LatencyFault`
    Per-replica latency spikes and tail amplification: message latency
    becomes ``latency * factor + extra`` and times out if it exceeds the
    deadline (the request side effect still happens — a slow reply is
    not a lost request).
:class:`DropFault`
    Messages are dropped with a probability; ``direction="request"``
    drops before the replica sees it, ``direction="response"`` drops the
    reply *after* the side effect applied (the nastier fault: an applied
    write the client believes failed).
:class:`DuplicateFault`
    Requests are delivered twice with a probability — exercises the
    idempotence of timestamped writes.

Determinism: the drop/duplicate coin flips come from the wrapper's own
seeded RNG, drawn once per call *unconditionally* (active or not), so a
fixed seed gives one fixed randomness stream no matter how the schedule
is edited.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.errors import ServiceError
from ..sim.failures import sample_iid_crash_set
from .transport import (
    DEFAULT_TIMEOUT_MS,
    Reply,
    ReplicaUnavailable,
    RequestTimeout,
    Transport,
)


class Window(Tuple[float, float]):
    """Half-open activity window ``[start, end)`` in ticks."""

    def __new__(cls, start: float, end: float = math.inf) -> "Window":
        if end < start:
            raise ServiceError(f"window end {end} before start {start}")
        return super().__new__(cls, (float(start), float(end)))

    @property
    def start(self) -> float:
        return self[0]

    @property
    def end(self) -> float:
        return self[1]

    def contains(self, now: float) -> bool:
        return self[0] <= now < self[1]


def _as_window(window: Any) -> Window:
    if isinstance(window, Window):
        return window
    start, end = window
    return Window(start, end)


@dataclass(frozen=True)
class CrashFault:
    """Replicas completely down for the window."""

    replicas: frozenset
    window: Window

    kind = "crash"


@dataclass(frozen=True)
class FlappingFault:
    """Replicas cycle down/up: down for the first ``down_fraction`` of
    every ``period`` ticks inside the window."""

    replicas: frozenset
    window: Window
    period: float = 8.0
    down_fraction: float = 0.5

    kind = "flap"

    def down(self, now: float) -> bool:
        if not self.window.contains(now):
            return False
        phase = (now - self.window.start) % self.period
        return phase < self.period * self.down_fraction


@dataclass(frozen=True)
class PartitionFault:
    """Clients at ``sites`` cannot reach ``unreachable`` replicas.

    ``sites=None`` applies to every client site.  Asymmetric partitions
    (A sees B, B does not see A) and split-brain (two one-sided faults)
    are both expressible.
    """

    unreachable: frozenset
    window: Window
    sites: Optional[frozenset] = None

    kind = "partition"

    def applies_to(self, site: int) -> bool:
        return self.sites is None or site in self.sites


@dataclass(frozen=True)
class LatencyFault:
    """Latency spike: message latency becomes ``latency*factor + extra``."""

    replicas: frozenset
    window: Window
    extra: float = 0.0
    factor: float = 1.0

    kind = "latency"


@dataclass(frozen=True)
class DropFault:
    """Messages to/from the replicas vanish with ``probability``."""

    replicas: frozenset
    window: Window
    probability: float = 0.5
    direction: str = "request"  # or "response"

    kind = "drop"


@dataclass(frozen=True)
class DuplicateFault:
    """Requests are delivered twice with ``probability``."""

    replicas: frozenset
    window: Window
    probability: float = 0.5

    kind = "duplicate"


_FAULT_TYPES = (
    CrashFault,
    FlappingFault,
    PartitionFault,
    LatencyFault,
    DropFault,
    DuplicateFault,
)


class FaultSchedule:
    """An immutable collection of fault rules queried by tick."""

    def __init__(self, faults: Sequence[Any] = ()) -> None:
        for fault in faults:
            if not isinstance(fault, _FAULT_TYPES):
                raise ServiceError(f"not a fault rule: {fault!r}")
        self.faults: Tuple[Any, ...] = tuple(faults)

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    # ------------------------------------------------------------------
    # Queries (all pure functions of the tick)
    # ------------------------------------------------------------------
    def crash_down_at(self, now: float) -> frozenset:
        """Replicas hard-down at ``now`` from crash and flapping faults.

        This is the *node-failure* down-set the availability probe
        compares against the paper's iid model — partitions and drops are
        link faults, not node faults.
        """
        down: set = set()
        for fault in self.faults:
            if isinstance(fault, CrashFault) and fault.window.contains(now):
                down |= fault.replicas
            elif isinstance(fault, FlappingFault) and fault.down(now):
                down |= fault.replicas
        return frozenset(down)

    def unreachable_at(self, now: float, site: int = 0) -> frozenset:
        """Replicas a client at ``site`` cannot reach: crashes, flaps and
        partitions that apply to the site."""
        down = set(self.crash_down_at(now))
        for fault in self.faults:
            if (
                isinstance(fault, PartitionFault)
                and fault.window.contains(now)
                and fault.applies_to(site)
            ):
                down |= fault.unreachable
        return frozenset(down)

    def latency_at(self, now: float, replica_id: int, latency: float) -> float:
        """Apply every active latency fault to a sampled message latency."""
        adjusted = latency
        for fault in self.faults:
            if (
                isinstance(fault, LatencyFault)
                and fault.window.contains(now)
                and replica_id in fault.replicas
            ):
                adjusted = adjusted * fault.factor + fault.extra
        return adjusted

    def drop_probability(self, now: float, replica_id: int, direction: str) -> float:
        """Worst active drop probability for the replica and direction."""
        worst = 0.0
        for fault in self.faults:
            if (
                isinstance(fault, DropFault)
                and fault.direction == direction
                and fault.window.contains(now)
                and replica_id in fault.replicas
            ):
                worst = max(worst, fault.probability)
        return worst

    def duplicate_probability(self, now: float, replica_id: int) -> float:
        worst = 0.0
        for fault in self.faults:
            if (
                isinstance(fault, DuplicateFault)
                and fault.window.contains(now)
                and replica_id in fault.replicas
            ):
                worst = max(worst, fault.probability)
        return worst

    # ------------------------------------------------------------------
    def extended(self, faults: Iterable[Any]) -> "FaultSchedule":
        """A new schedule with extra rules appended."""
        return FaultSchedule(self.faults + tuple(faults))

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable summary, deterministic ordering."""
        counts: Dict[str, int] = {}
        for fault in self.faults:
            counts[fault.kind] = counts.get(fault.kind, 0) + 1
        return {
            "rules": len(self.faults),
            "by_kind": dict(sorted(counts.items())),
        }

    def __repr__(self) -> str:
        kinds = self.to_dict()["by_kind"]
        return f"<FaultSchedule rules={len(self.faults)} {kinds}>"

    # ------------------------------------------------------------------
    @classmethod
    def random(
        cls,
        rng: np.random.Generator,
        ids: Sequence[int],
        horizon: float,
        *,
        crash_rate: float = 0.15,
        epoch: float = 25.0,
        latency_spikes: int = 2,
        spike_extra: float = 30.0,
        spike_factor: float = 2.0,
        drops: int = 2,
        drop_probability: float = 0.4,
        duplicates: int = 1,
        duplicate_probability: float = 0.3,
        flappers: int = 1,
        flap_period: float = 8.0,
        partitions: int = 0,
        sites: int = 2,
    ) -> "FaultSchedule":
        """Seeded randomized schedule over ``[0, horizon)`` ticks.

        The crash component is the paper's iid model resampled every
        ``epoch`` ticks with probability ``crash_rate`` — exactly the
        model behind the exact failure probability, so measured
        availability is comparable to ``1 - F_p``.  The remaining fault
        families (spikes, drops, duplications, flapping, partitions) are
        placed in uniformly random windows.
        """
        if horizon <= 0:
            raise ServiceError(f"schedule horizon must be positive, got {horizon}")
        ids = sorted(ids)
        faults: List[Any] = []
        epochs = int(math.ceil(horizon / epoch))
        for index in range(epochs):
            down = sample_iid_crash_set(rng, ids, crash_rate)
            if down:
                faults.append(
                    CrashFault(down, Window(index * epoch, (index + 1) * epoch))
                )

        def random_window(min_len: float, max_len: float) -> Window:
            length = float(rng.uniform(min_len, max_len))
            start = float(rng.uniform(0.0, max(horizon - length, 1.0)))
            return Window(start, start + length)

        def random_replicas(count: int) -> frozenset:
            count = min(count, len(ids))
            picked = rng.choice(len(ids), size=count, replace=False)
            return frozenset(ids[int(i)] for i in picked)

        for _ in range(latency_spikes):
            faults.append(
                LatencyFault(
                    random_replicas(2),
                    random_window(horizon / 10.0, horizon / 4.0),
                    extra=float(rng.uniform(0.5, 1.5)) * spike_extra,
                    factor=spike_factor,
                )
            )
        for index in range(drops):
            faults.append(
                DropFault(
                    random_replicas(2),
                    random_window(horizon / 10.0, horizon / 4.0),
                    probability=drop_probability,
                    direction="request" if index % 2 == 0 else "response",
                )
            )
        for _ in range(duplicates):
            faults.append(
                DuplicateFault(
                    random_replicas(2),
                    random_window(horizon / 10.0, horizon / 4.0),
                    probability=duplicate_probability,
                )
            )
        for _ in range(flappers):
            faults.append(
                FlappingFault(
                    random_replicas(1),
                    random_window(horizon / 5.0, horizon / 2.0),
                    period=flap_period,
                )
            )
        for _ in range(partitions):
            order = [ids[int(i)] for i in rng.permutation(len(ids))]
            cut = len(order) // 2
            group_a, group_b = frozenset(order[:cut]), frozenset(order[cut:])
            window = random_window(horizon / 8.0, horizon / 3.0)
            for site in range(sites):
                unreachable = group_b if site % 2 == 0 else group_a
                faults.append(
                    PartitionFault(unreachable, window, sites=frozenset({site}))
                )
        return cls(faults)


def split_brain_schedule(
    ids: Sequence[int], window: Window, *, sites: int = 2
) -> List[PartitionFault]:
    """Two one-sided partition faults splitting the universe in half:
    even sites see only the first half, odd sites only the second.

    With a correct coordinator this only costs availability; with
    ``require_full_quorum=False`` it manufactures split-brain — the chaos
    harness's intentionally intersection-breaking scenario.
    """
    ordered = sorted(ids)
    cut = (len(ordered) + 1) // 2
    group_a, group_b = frozenset(ordered[:cut]), frozenset(ordered[cut:])
    even = frozenset(site for site in range(sites) if site % 2 == 0)
    odd = frozenset(site for site in range(sites) if site % 2 == 1)
    faults = [PartitionFault(group_b, window, sites=even)]
    if odd:
        faults.append(PartitionFault(group_a, window, sites=odd))
    return faults


class FaultyTransport(Transport):
    """Applies a :class:`FaultSchedule` on top of an inner transport.

    Parameters
    ----------
    inner:
        The real channel (in-process or TCP).  All faults are injected in
        this wrapper; the inner transport is never touched, so a post-run
        verifier can read the replicas fault-free through it.
    schedule:
        The fault rules.
    seed:
        Seed for the drop/duplicate coin flips.
    site:
        Which client site this transport represents for partition faults
        (coordinators on different sides of a partition hold different
        ``FaultyTransport`` instances over one shared inner transport).
    """

    def __init__(
        self,
        inner: Transport,
        schedule: FaultSchedule,
        *,
        seed: int = 0,
        site: int = 0,
    ) -> None:
        self.inner = inner
        self.schedule = schedule
        self.site = site
        self.rng = np.random.default_rng(seed)
        self.clock = 0.0
        self.calls = 0
        self.injected: Dict[str, int] = {
            "crash": 0,
            "partition": 0,
            "latency_timeout": 0,
            "drop_request": 0,
            "drop_response": 0,
            "duplicate": 0,
        }

    def advance(self, ticks: float = 1.0) -> None:
        """Move the fault clock forward (the harness calls this per op)."""
        self.clock += ticks

    async def call(
        self,
        replica_id: int,
        request: Dict[str, Any],
        timeout: float = DEFAULT_TIMEOUT_MS,
    ) -> Reply:
        now = self.clock
        self.calls += 1
        # Unconditional draws keep the randomness stream independent of
        # which rules are active (edit the schedule, keep the coins).
        u_request, u_response, u_duplicate = (
            float(self.rng.random()),
            float(self.rng.random()),
            float(self.rng.random()),
        )
        crashed = self.schedule.crash_down_at(now)
        if replica_id in crashed:
            self.injected["crash"] += 1
            raise ReplicaUnavailable(replica_id, latency=timeout, reason="fault: crash")
        if replica_id in self.schedule.unreachable_at(now, self.site):
            self.injected["partition"] += 1
            raise ReplicaUnavailable(
                replica_id, latency=timeout, reason="fault: partition"
            )
        if u_request < self.schedule.drop_probability(now, replica_id, "request"):
            # The request never reaches the replica: no side effect, the
            # caller burns the deadline waiting for a reply.
            self.injected["drop_request"] += 1
            raise RequestTimeout(replica_id, latency=timeout)
        reply = await self.inner.call(replica_id, request, timeout)
        if u_duplicate < self.schedule.duplicate_probability(now, replica_id):
            self.injected["duplicate"] += 1
            try:
                await self.inner.call(replica_id, request, timeout)
            except (ReplicaUnavailable, RequestTimeout):
                pass  # the duplicate is fire-and-forget
        if u_response < self.schedule.drop_probability(now, replica_id, "response"):
            # Side effect applied, reply lost: an acknowledged-by-nobody
            # write the safety checker must tolerate as "pending".
            self.injected["drop_response"] += 1
            raise RequestTimeout(replica_id, latency=timeout)
        latency = self.schedule.latency_at(now, replica_id, reply.latency)
        if latency > timeout:
            self.injected["latency_timeout"] += 1
            raise RequestTimeout(replica_id, latency=timeout)
        return Reply(reply.payload, latency)

    async def pause(self, delay_ms: float) -> None:
        await self.inner.pause(delay_ms)

    async def close(self) -> None:
        await self.inner.close()

    def __repr__(self) -> str:
        return (
            f"<FaultyTransport site={self.site} clock={self.clock:g}"
            f" calls={self.calls} over {self.inner!r}>"
        )
