"""Workload generator for the KV service: closed-loop and open-loop.

Drives a fleet of concurrent coordinator clients through a configurable
read/write mix with power-law key skew, injecting iid crash epochs, and
reports observed metrics next to the strategy's analytic predictions —
the end-to-end demonstration of the paper's load results: run
``quorumtool kvbench majority:15`` and ``quorumtool kvbench h-triang:15``
and watch the busiest element serve half the traffic under majority but
only a third under the hierarchical triangle.

The whole benchmark is deterministic on the in-process transport: the
operation schedule is precomputed from the seed, message latencies and
crash epochs come from seeded RNGs, and the asyncio event loop
interleaves the clients reproducibly because nothing blocks on real I/O.

Two arrival models (``WorkloadConfig.arrival``): the classic **closed
loop** (``clients`` concurrent clients, each issuing its next operation
when the previous one finishes — throughput self-throttles to service
capacity) and an **open loop** (``"poisson"``: operations fire at
seeded Poisson arrival instants on the transport's clock regardless of
in-flight work, so overload shows up as queueing and timeout burn
instead of hiding in a slowed generator).  The open loop needs a
clocked transport — under :class:`~repro.runtime.clock.VirtualClock`
it sustains the configured rate exactly.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.errors import ServiceError
from ..core.quorum_system import QuorumSystem
from ..core.rwstrategy import PathStrategy, ReadWriteStrategy
from ..core.strategy import Strategy
from ..runtime.rng import RngStreams
from .coordinator import Coordinator, OperationFailed
from .metrics import ServiceMetrics, transport_summary
from .replica import Replica
from .simtransport import SimTransport
from .transport import (
    DEFAULT_TIMEOUT_MS,
    BinaryTcpTransport,
    InProcessTransport,
    SerializedTcpTransport,
    TcpTransport,
    Transport,
    start_tcp_replicas,
)


@dataclass
class WorkloadConfig:
    """Shape of the generated workload."""

    ops: int = 1000
    read_fraction: float = 0.9
    keys: int = 64
    skew: float = 0.8  # key popularity ~ 1/rank^skew (0 = uniform)
    clients: int = 4
    crash_rate: float = 0.0
    ops_per_epoch: int = 50  # crash-set resample cadence
    timeout: float = DEFAULT_TIMEOUT_MS
    preload: bool = True  # write every key once before the timed run
    hedge_spares: int = 0  # spare replicas contacted beyond each quorum
    hedge_delay_ms: float = 0.0  # defer spares until this delay elapses (0=upfront)
    read_repair: bool = True  # rewrite stale members during reads
    arrival: str = "closed"  # "closed" | "poisson" (open loop, clocked only)
    arrival_rate: float = 0.0  # poisson: mean ops per (virtual) second

    def validate(self) -> None:
        if self.ops < 0:
            raise ServiceError(f"ops must be >= 0, got {self.ops}")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ServiceError("read fraction must be in [0,1]")
        if self.keys <= 0:
            raise ServiceError("need at least one key")
        if self.skew < 0:
            raise ServiceError("skew must be >= 0")
        if self.clients <= 0:
            raise ServiceError("need at least one client")
        if self.ops_per_epoch <= 0:
            raise ServiceError("ops_per_epoch must be positive")
        if self.hedge_spares < 0:
            raise ServiceError("hedge_spares must be >= 0")
        if self.hedge_delay_ms < 0:
            raise ServiceError("hedge_delay_ms must be >= 0")
        if self.arrival not in ("closed", "poisson"):
            raise ServiceError(
                f"unknown arrival mode {self.arrival!r};"
                " pick 'closed' or 'poisson'"
            )
        if self.arrival == "poisson" and self.arrival_rate <= 0:
            raise ServiceError(
                "poisson arrival needs arrival_rate > 0 (ops per second)"
            )
        if self.arrival_rate < 0:
            raise ServiceError("arrival_rate must be >= 0")


@dataclass
class BenchmarkReport:
    """Everything a benchmark run produced, JSON-exportable."""

    system_name: str
    n: int
    seed: int
    config: WorkloadConfig
    metrics: ServiceMetrics
    predicted_loads: np.ndarray
    lp_load: float
    element_names: List[Any] = field(default_factory=list)
    read_write: bool = False  # strategy was a split read/write pair
    predicted_capacity: Optional[float] = None  # LP ops/s prediction (capacity runs)
    # Wall-clock timing and transport counters live outside to_dict():
    # the determinism tests require to_dict() to be bit-identical for
    # identical seeds, and elapsed time never is.
    elapsed_seconds: float = 0.0
    transport_stats: Dict[str, Any] = field(default_factory=dict)

    @property
    def observed_loads(self) -> np.ndarray:
        return self.metrics.observed_loads()

    def load_deviation(self) -> Dict[str, float]:
        """Observed vs strategy-predicted per-element load summary."""
        return self.metrics.load_deviation(self.predicted_loads)

    def to_dict(self) -> Dict[str, Any]:
        snapshot = self.metrics.to_dict(predicted=self.predicted_loads)
        snapshot.update(
            {
                "system": self.system_name,
                "seed": self.seed,
                "lp_load": self.lp_load,
                "read_write": self.read_write,
                "predicted_capacity": self.predicted_capacity,
                "config": {
                    "ops": self.config.ops,
                    "read_fraction": self.config.read_fraction,
                    "keys": self.config.keys,
                    "skew": self.config.skew,
                    "clients": self.config.clients,
                    "crash_rate": self.config.crash_rate,
                    "ops_per_epoch": self.config.ops_per_epoch,
                    "hedge_spares": self.config.hedge_spares,
                    "hedge_delay_ms": self.config.hedge_delay_ms,
                    "read_repair": self.config.read_repair,
                    "arrival": self.config.arrival,
                    "arrival_rate": self.config.arrival_rate,
                },
            }
        )
        # Scorecard consistency: every quorumtool JSON scorecard carries
        # the same invariants block shape.  The benchmark audits nothing,
        # so the checked list is empty and ok is trivially True.
        # (Imported lazily: repro.scenarios.engine imports this module.)
        from ..scenarios.scorecard import invariants_block

        snapshot["invariants"] = invariants_block((), [])
        return snapshot

    @property
    def ops_per_second(self) -> float:
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return self.metrics.ops_attempted / self.elapsed_seconds

    def perf_dict(self) -> Dict[str, Any]:
        """:meth:`to_dict` plus the non-deterministic perf numbers
        (wall-clock, throughput, transport counters) for ``--json-out``
        and the perf-regression harness."""
        snapshot = self.to_dict()
        snapshot["perf"] = {
            "elapsed_seconds": self.elapsed_seconds,
            "ops_per_second": self.ops_per_second,
            "transport": dict(self.transport_stats),
        }
        return snapshot


def key_weights(count: int, skew: float) -> np.ndarray:
    """Power-law key popularity: weight of rank ``r`` is ``1/(r+1)^skew``."""
    weights = 1.0 / np.power(np.arange(1, count + 1, dtype=float), skew)
    return weights / weights.sum()


def build_schedule(
    rng: np.random.Generator, config: WorkloadConfig
) -> List[Tuple[str, str]]:
    """Precompute the (kind, key) sequence so runs are seed-reproducible
    regardless of client interleaving."""
    weights = key_weights(config.keys, config.skew)
    kinds = rng.random(config.ops) < config.read_fraction
    key_indices = rng.choice(config.keys, size=config.ops, p=weights)
    return [
        ("read" if is_read else "write", f"k{int(index):04d}")
        for is_read, index in zip(kinds, key_indices)
    ]


def make_replicas(system: QuorumSystem) -> List[Replica]:
    """One replica per universe element, carrying the element's name."""
    return [
        Replica(element, name=system.universe.name_of(element))
        for element in system.universe.ids
    ]


async def run_workload(
    system: QuorumSystem,
    transport: Transport,
    strategy: PathStrategy,
    config: WorkloadConfig,
    *,
    seed: int = 0,
    metrics: Optional[ServiceMetrics] = None,
) -> ServiceMetrics:
    """Run the closed-loop workload against an existing transport.

    ``clients`` coordinators share one metrics sink and pull operations
    from a single precomputed schedule; crash epochs are resampled every
    ``ops_per_epoch`` operations when the transport supports injection.
    ``strategy`` may be a plain :class:`Strategy` or a split
    :class:`~repro.core.rwstrategy.ReadWriteStrategy` — the coordinators
    route reads and writes through the matching distribution either way.
    """
    config.validate()
    metrics = metrics if metrics is not None else ServiceMetrics(system.n)
    # Named runtime streams: the schedule, every client and the warmup
    # coordinator each own an independent stream derived from the root
    # seed — adding a client can never shift another component's draws.
    streams = RngStreams(seed)
    schedule = build_schedule(streams.stream("loadgen.schedule"), config)
    coordinators = [
        Coordinator(
            system,
            transport,
            strategy,
            coordinator_id=client,
            seed=streams.seed_for(f"loadgen.client.{client}"),
            timeout=config.timeout,
            hedge_spares=config.hedge_spares,
            hedge_delay_ms=config.hedge_delay_ms,
            read_repair=config.read_repair,
            metrics=metrics,
        )
        for client in range(config.clients)
    ]

    if config.preload:
        warmup = Coordinator(
            system,
            transport,
            strategy,
            coordinator_id=config.clients,
            seed=streams.seed_for("loadgen.warmup"),
            timeout=config.timeout,
            metrics=ServiceMetrics(system.n),  # warmup not counted
        )
        for index in range(config.keys):
            await warmup.write(f"k{index:04d}", None)
        await warmup.drain()

    can_inject = config.crash_rate > 0 and hasattr(transport, "resample_crashes")
    next_op = itertools.count()

    async def run_op(coordinator: Coordinator, index: int) -> None:
        if can_inject and index % config.ops_per_epoch == 0:
            transport.resample_crashes()
        kind, key = schedule[index]
        try:
            if kind == "read":
                await coordinator.read(key)
            else:
                await coordinator.write(key, f"v{index}")
        except OperationFailed:
            pass  # already counted in metrics

    async def client_loop(coordinator: Coordinator) -> None:
        while True:
            index = next(next_op)
            if index >= config.ops:
                return
            await run_op(coordinator, index)

    # When the transport runs on a virtual clock (SimTransport under
    # run_virtual) also record simulated elapsed time, so throughput can
    # be compared against the LP capacity prediction deterministically.
    # FaultyTransport exposes a float ``clock`` attribute; only a Clock
    # object with a callable ``now`` counts as virtual time here.
    sim_clock = getattr(transport, "clock", None)
    if not callable(getattr(sim_clock, "now", None)):
        sim_clock = None

    async def open_loop() -> None:
        # Open-loop Poisson arrival: operations fire at their scheduled
        # arrival instants whether or not earlier ones finished — the
        # generator never throttles to service capacity.  Arrival times
        # come from their own named stream, so closed-loop runs burn no
        # extra draws.  Requires a clocked transport (virtual or wall):
        # without a clock there is no time axis to schedule arrivals on.
        if sim_clock is None:
            raise ServiceError(
                "poisson arrival needs a clocked transport (SimTransport"
                " under sim/wall time); use arrival='closed' instead"
            )
        inter = streams.stream("loadgen.arrivals").exponential(
            1000.0 / config.arrival_rate, size=config.ops
        )
        arrivals = np.cumsum(inter)
        origin = sim_clock.now()
        max_lag = 0.0
        pending: List["asyncio.Task"] = []
        for index in range(config.ops):
            target = origin + float(arrivals[index])
            delay = target - sim_clock.now()
            if delay > 0:
                await sim_clock.sleep(delay)
            lag = sim_clock.now() - target
            if lag > max_lag:
                max_lag = lag
            pending.append(
                asyncio.ensure_future(
                    run_op(coordinators[index % config.clients], index)
                )
            )
        await asyncio.gather(*pending)
        elapsed_ms = sim_clock.now() - origin
        # Plain attributes (like elapsed_seconds): the arrival accounting
        # is reported next to the metrics, not inside to_dict().
        metrics.arrival = {
            "mode": "poisson",
            "rate_ops_per_s": config.arrival_rate,
            "elapsed_ms": elapsed_ms,
            "achieved_ops_per_s": (
                config.ops / (elapsed_ms / 1000.0) if elapsed_ms > 0 else 0.0
            ),
            "max_spawn_lag_ms": max_lag,
        }

    started = time.perf_counter()
    vstarted = sim_clock.now() if sim_clock is not None else 0.0
    if config.arrival == "poisson":
        await open_loop()
    else:
        await asyncio.gather(*(client_loop(c) for c in coordinators))
    # Hedged phases may leave absorbed stragglers in flight; wait for
    # them so the transport can be torn down cleanly and the straggler
    # histogram is complete.
    await asyncio.gather(*(c.drain() for c in coordinators))
    # Wall-clock for the measured ops only (dialing and preload excluded);
    # stored as a plain attribute so to_dict() stays seed-deterministic.
    metrics.elapsed_seconds = time.perf_counter() - started
    if sim_clock is not None:
        metrics.virtual_elapsed_ms = sim_clock.now() - vstarted
    return metrics


def run_kv_benchmark(
    system: QuorumSystem,
    *,
    seed: int = 0,
    strategy: Optional[PathStrategy] = None,
    read_write: bool = False,
    transport: Optional[Transport] = None,
    config: Optional[WorkloadConfig] = None,
    tcp_local: bool = False,
    serialized: bool = False,
    binary: bool = False,
    coalesce: bool = True,
    workers: int = 0,
    use_uvloop: bool = False,
    **overrides: Any,
) -> BenchmarkReport:
    """One-call benchmark: build the service, drive it, report loads.

    Keyword overrides map onto :class:`WorkloadConfig` fields, so
    ``run_kv_benchmark(sys, ops=5000, crash_rate=0.1)`` works.  When no
    transport is given an in-process one is created with the requested
    crash rate; a caller-supplied transport (e.g. TCP against live
    ``quorumtool serve`` replicas) is used as-is.

    ``read_write=True`` solves the read/write capacity LP
    (:func:`repro.analysis.capacity.read_write_capacity`) at the
    workload's ``read_fraction`` and serves reads from the LP-optimal
    read distribution — the quoracle-style split serving path.  An
    explicit ``strategy`` (plain or :class:`ReadWriteStrategy`) always
    wins over the flag.

    ``tcp_local=True`` instead starts one localhost TCP server per
    replica inside the event loop and benchmarks over real sockets —
    the perf harness's end-to-end mode.  ``serialized=True`` (with
    ``tcp_local``) swaps the pipelined client for the lock-per-replica
    :class:`SerializedTcpTransport` to measure the pre-pipelining
    baseline; ``binary=True`` swaps in the struct-packed
    :class:`BinaryTcpTransport` instead (``coalesce=False`` keeps the
    binary codec but frames each op individually).  ``workers=N``
    hosts the replicas in a :class:`~repro.service.cluster
    .ReplicaCluster` of N OS processes — built *before* the event loop
    starts, since forking under a running loop duplicates loop state —
    and ``use_uvloop=True`` installs uvloop (when importable) for both
    the client loop and the cluster workers.
    """
    if config is None:
        config = WorkloadConfig()
    for name, value in overrides.items():
        if not hasattr(config, name):
            raise ServiceError(f"unknown workload option {name!r}")
        setattr(config, name, value)
    config.validate()
    if tcp_local and transport is not None:
        raise ServiceError("tcp_local builds its own transport; do not pass one")
    if serialized and not tcp_local:
        raise ServiceError("serialized baseline only applies to tcp_local mode")
    if binary and not tcp_local:
        raise ServiceError("binary transport only applies to tcp_local mode")
    if binary and serialized:
        raise ServiceError("pick one of binary or serialized, not both")
    if workers and not tcp_local:
        raise ServiceError("workers only apply to tcp_local mode")

    if strategy is None:
        if read_write:
            from ..analysis.capacity import read_write_capacity

            strategy = read_write_capacity(
                system, read_fraction=config.read_fraction
            ).strategy
        else:
            from ..analysis.load import optimal_strategy

            strategy = optimal_strategy(system)

    owns_transport = transport is None

    cluster = None
    if tcp_local and workers > 0:
        from .cluster import ReplicaCluster

        cluster = ReplicaCluster(
            [replica.replica_id for replica in make_replicas(system)],
            workers=workers,
            use_uvloop=use_uvloop,
        )
        cluster.start()

    if use_uvloop:
        from ..runtime.clock import install_uvloop

        install_uvloop()  # no-op (returns False) without the perf extra

    async def _run() -> Tuple[ServiceMetrics, Dict[str, Any]]:
        local = transport
        servers: List[asyncio.AbstractServer] = []
        if local is None:
            if tcp_local:
                if cluster is not None:
                    addresses = cluster.addresses
                else:
                    servers, addresses = await start_tcp_replicas(
                        make_replicas(system), base_port=0
                    )
                if binary:
                    local = BinaryTcpTransport(addresses, coalesce=coalesce)
                elif serialized:
                    local = SerializedTcpTransport(addresses)
                else:
                    local = TcpTransport(addresses)
            else:
                local = InProcessTransport(
                    make_replicas(system),
                    # Named stream: independent of the schedule/client RNGs.
                    seed=RngStreams(seed).seed_for("loadgen.transport"),
                    crash_rate=config.crash_rate,
                )
        try:
            run_metrics = await run_workload(
                system, local, strategy, config, seed=seed
            )
        finally:
            if owns_transport:
                await local.close()
            for server in servers:
                server.close()
                await server.wait_closed()
        return run_metrics, transport_summary(local)

    started = time.perf_counter()
    try:
        metrics, transport_stats = asyncio.run(_run())
    finally:
        if cluster is not None:
            cluster.close()
    # Prefer the in-loop measurement (excludes dialing and preload);
    # fall back to the coarse wrapper time if a custom runner skipped it.
    elapsed = getattr(metrics, "elapsed_seconds", 0.0) or (
        time.perf_counter() - started
    )
    # For a split pair the predicted loads blend the read and write
    # distributions at the workload's read fraction (Section 2 of the
    # read/write LP docs); a plain strategy ignores the fraction.
    if isinstance(strategy, ReadWriteStrategy):
        predicted = strategy.element_loads(config.read_fraction)
        lp_load = strategy.induced_load(config.read_fraction)
        split = strategy.is_split
    else:
        predicted = strategy.element_loads()
        lp_load = strategy.induced_load()
        split = False
    return BenchmarkReport(
        system_name=system.system_name,
        n=system.n,
        seed=seed,
        config=config,
        metrics=metrics,
        predicted_loads=predicted,
        lp_load=lp_load,
        element_names=list(system.universe.names),
        read_write=split,
        # Relative LP capacity (1/load): the throughput multiple this
        # strategy admits over a single element's service rate.
        predicted_capacity=(1.0 / lp_load) if lp_load > 0 else None,
        elapsed_seconds=elapsed,
        transport_stats=transport_stats,
    )


def run_capacity_benchmark(
    system: QuorumSystem,
    *,
    strategy: Optional[PathStrategy] = None,
    read_write: bool = True,
    seed: int = 0,
    read_fraction: float = 0.9,
    ops: int = 600,
    keys: int = 128,
    skew: float = 0.6,
    clients: int = 24,
    service_time_ms: float = 2.0,
    base_latency: float = 0.1,
    mean_latency: float = 0.3,
    timeout: float = DEFAULT_TIMEOUT_MS,
) -> Dict[str, Any]:
    """Measure saturated throughput in virtual time vs the LP prediction.

    The service runs under a :class:`~repro.runtime.clock.VirtualClock`
    over a :class:`~repro.service.simtransport.SimTransport` whose
    replicas are FIFO servers with ``service_time_ms`` per request —
    each replica has a hard capacity of ``1000/service_time_ms`` ops/s.
    A closed loop of ``clients`` concurrent clients saturates the
    system, so observed throughput approaches the capacity the strategy
    admits; the LP prediction is ``node_rate / induced_load``.

    ``read_write=True`` (the default) solves the read/write capacity LP
    at ``read_fraction`` and serves reads from the optimal read-quorum
    distribution; ``read_write=False`` benchmarks the unified
    write-legal optimum — the baseline the split is gated against.
    ``read_repair`` is off in this mode: repair writes are outside the
    LP's traffic model, and safety is unaffected because every read
    quorum still intersects every write quorum.

    Returns a JSON-ready dict with observed and predicted ops per
    virtual second, their ratio, the LP load, and per-path loads.
    """
    from ..runtime.clock import VirtualClock, run_virtual

    if strategy is None:
        if read_write:
            from ..analysis.capacity import read_write_capacity

            strategy = read_write_capacity(
                system, read_fraction=read_fraction
            ).strategy
        else:
            from ..analysis.load import optimal_strategy

            strategy = optimal_strategy(system)

    if isinstance(strategy, ReadWriteStrategy):
        lp_load = strategy.induced_load(read_fraction)
        split = strategy.is_split
    else:
        lp_load = strategy.induced_load()
        split = False

    config = WorkloadConfig(
        ops=ops,
        read_fraction=read_fraction,
        keys=keys,
        skew=skew,
        clients=clients,
        timeout=timeout,
        read_repair=False,
    )

    clock = VirtualClock()
    transport = SimTransport(
        make_replicas(system),
        clock=clock,
        seed=RngStreams(seed).seed_for("loadgen.transport"),
        base_latency=base_latency,
        mean_latency=mean_latency,
        service_time_ms=service_time_ms,
    )

    async def _run() -> ServiceMetrics:
        try:
            return await run_workload(
                system, transport, strategy, config, seed=seed
            )
        finally:
            await transport.close()

    metrics = run_virtual(_run(), clock=clock)

    node_rate = 1000.0 / service_time_ms  # per-replica ops per second
    predicted = node_rate / lp_load if lp_load > 0 else 0.0
    elapsed_s = metrics.virtual_elapsed_ms / 1000.0
    observed = metrics.ops_succeeded / elapsed_s if elapsed_s > 0 else 0.0
    return {
        "system": system.system_name,
        "n": system.n,
        "seed": seed,
        "read_write": split,
        "read_fraction": read_fraction,
        "service_time_ms": service_time_ms,
        "clients": clients,
        "ops": ops,
        "lp_load": lp_load,
        "predicted_ops_per_sec": predicted,
        "observed_ops_per_sec": observed,
        "observed_over_predicted": (observed / predicted) if predicted else 0.0,
        "virtual_elapsed_ms": metrics.virtual_elapsed_ms,
        "ops_succeeded": metrics.ops_succeeded,
        "ops_failed": metrics.ops_failed,
        "path_loads": {
            path: metrics.observed_path_loads(path).tolist()
            for path in ("read", "write")
        },
    }
