"""Multi-process replica workers: one Python process per core.

Every in-process transport — and even the TCP servers started by
:func:`~repro.service.transport.start_tcp_replicas` — runs all replicas
on one event loop in one Python process, so measured throughput is
capped by one core and one GIL no matter how well the quorum system
spreads load.  :class:`ReplicaCluster` removes that cap: it partitions
the replica set round-robin across ``workers`` OS processes, each
hosting its own event loop and serving its replicas over the usual
dual-protocol (binary v2 + JSON lines) TCP servers.

Mechanics:

* Children are started with the ``fork`` start method when the platform
  has it (fast, no re-import of numpy/scipy) and ``spawn`` otherwise.
  Each child binds its replicas to ephemeral ports and reports the
  ``{replica_id: (host, port)}`` map back over a pipe; the parent
  merges the maps into the address book any TCP transport consumes.
* Shutdown is cooperative: the parent sends a sentinel down the pipe,
  the child's event loop wakes via ``add_reader``, closes its servers
  and exits.  ``close()`` escalates to ``terminate()`` only if a child
  ignores the sentinel.
* Crash detection: :meth:`poll_crashed` reports replicas whose worker
  died.  A dead worker's sockets drop, so in-flight and subsequent
  calls surface :class:`~repro.core.errors.ReplicaUnavailable` — which
  is exactly the signal the coordinator's suspicion set and per-replica
  circuit breakers already consume; no new failure path is needed.

The cluster is driven from *outside* the event loop (create it before
``asyncio.run``) because forking below a running loop duplicates loop
state into the child.  The child scrubs that state defensively either
way (fresh loop, ``_set_running_loop(None)``), so in-loop use — what
``start_tcp_replicas(workers=N)`` does via an executor — also works.
"""

from __future__ import annotations

import multiprocessing
from typing import Dict, Iterable, List, Optional, Tuple

from ..core.errors import ServiceError

__all__ = ["ReplicaCluster", "DEFAULT_START_TIMEOUT"]

#: Seconds the parent waits for every worker to report its port map.
DEFAULT_START_TIMEOUT = 30.0

#: Seconds a worker gets to exit after the shutdown sentinel.
_JOIN_TIMEOUT = 5.0


def _worker_main(
    conn, replica_ids: List[int], host: str, base_port: int, use_uvloop: bool
) -> None:
    """Child entry point: serve ``replica_ids`` until the pipe says stop."""
    import asyncio

    # Under the fork start method the child inherits the parent's
    # "currently running loop" thread-state; scrub it so a fresh loop
    # can run in this process.
    try:
        asyncio.events._set_running_loop(None)  # type: ignore[attr-defined]
    except AttributeError:  # pragma: no cover - private API moved
        pass
    if use_uvloop:
        from ..runtime.clock import install_uvloop

        install_uvloop()

    from .replica import Replica
    from .transport import start_tcp_replicas

    async def serve() -> None:
        replicas = [Replica(replica_id) for replica_id in replica_ids]
        servers, addresses = await start_tcp_replicas(
            replicas, host=host, base_port=base_port
        )
        conn.send(addresses)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        # Any inbound byte — or EOF from a dying parent — is the signal.
        loop.add_reader(conn.fileno(), stop.set)
        try:
            await stop.wait()
        finally:
            loop.remove_reader(conn.fileno())
            for server in servers:
                server.close()
            for server in servers:
                await server.wait_closed()

    loop = asyncio.new_event_loop()
    try:
        asyncio.set_event_loop(loop)
        loop.run_until_complete(serve())
    finally:
        loop.close()
        conn.close()


class ReplicaCluster:
    """A set of replica servers spread over ``workers`` OS processes.

    Parameters
    ----------
    replica_ids:
        Universe element ids to host; replica ``i`` goes to worker
        ``i % workers`` (round-robin keeps quorum members spread across
        cores for every system family).
    workers:
        Process count; each worker serves its replicas on one event
        loop over the dual-protocol TCP servers.
    host:
        Interface to bind (loopback by default).
    base_port:
        With ``base_port > 0`` replica ``i`` listens on ``base_port + i``
        (the fixed layout external ``kvbench --tcp`` clients expect);
        ``0`` lets the OS assign ephemeral ports.
    use_uvloop:
        Install uvloop in each worker when available (no-op otherwise).
    """

    def __init__(
        self,
        replica_ids: Iterable[int],
        *,
        workers: int = 1,
        host: str = "127.0.0.1",
        base_port: int = 0,
        use_uvloop: bool = False,
    ) -> None:
        self.replica_ids = sorted(replica_ids)
        if not self.replica_ids:
            raise ServiceError("cluster needs at least one replica")
        if workers < 1:
            raise ServiceError(f"cluster needs workers >= 1, got {workers}")
        self.workers = min(workers, len(self.replica_ids))
        self.host = host
        self.base_port = base_port
        self.use_uvloop = use_uvloop
        self.addresses: Dict[int, Tuple[str, int]] = {}
        self._processes: List[multiprocessing.process.BaseProcess] = []
        self._pipes: List = []
        self._assignments: List[List[int]] = [
            self.replica_ids[shard :: self.workers] for shard in range(self.workers)
        ]
        self._started = False

    # ------------------------------------------------------------------
    def start(self, timeout: float = DEFAULT_START_TIMEOUT) -> Dict[int, Tuple[str, int]]:
        """Spawn the workers; block until every port map arrives.

        Returns the merged ``{replica_id: (host, port)}`` address map.
        """
        if self._started:
            return self.addresses
        method = "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
        context = multiprocessing.get_context(method)
        try:
            for assignment in self._assignments:
                parent_conn, child_conn = context.Pipe()
                process = context.Process(
                    target=_worker_main,
                    args=(
                        child_conn,
                        assignment,
                        self.host,
                        self.base_port,
                        self.use_uvloop,
                    ),
                    daemon=True,
                )
                process.start()
                child_conn.close()
                self._processes.append(process)
                self._pipes.append(parent_conn)
            for process, pipe, assignment in zip(
                self._processes, self._pipes, self._assignments
            ):
                if not pipe.poll(timeout):
                    raise ServiceError(
                        f"cluster worker for replicas {assignment} did not "
                        f"report its ports within {timeout:g}s"
                    )
                self.addresses.update(pipe.recv())
        except BaseException:
            self.close()
            raise
        missing = set(self.replica_ids) - set(self.addresses)
        if missing:
            self.close()
            raise ServiceError(f"cluster workers never bound replicas {sorted(missing)}")
        self._started = True
        return self.addresses

    # ------------------------------------------------------------------
    def poll_crashed(self) -> List[int]:
        """Replica ids whose worker process has died.

        Their sockets are gone, so transports raise ``ReplicaUnavailable``
        for them — feeding the coordinator's suspicion set and circuit
        breakers exactly like any other unreachable replica.
        """
        crashed: List[int] = []
        for process, assignment in zip(self._processes, self._assignments):
            if process.pid is not None and not process.is_alive():
                crashed.extend(assignment)
        return sorted(crashed)

    def worker_for(self, replica_id: int) -> Optional[multiprocessing.process.BaseProcess]:
        """The process hosting ``replica_id`` (for targeted crash tests)."""
        for process, assignment in zip(self._processes, self._assignments):
            if replica_id in assignment:
                return process
        return None

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop every worker: sentinel first, ``terminate()`` as a last
        resort; idempotent."""
        for pipe in self._pipes:
            try:
                pipe.send(b"stop")
            except (OSError, ValueError):
                pass
        for process in self._processes:
            process.join(timeout=_JOIN_TIMEOUT)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join(timeout=_JOIN_TIMEOUT)
        for pipe in self._pipes:
            try:
                pipe.close()
            except OSError:  # pragma: no cover - already closed
                pass
        self._processes.clear()
        self._pipes.clear()
        self._started = False

    # ------------------------------------------------------------------
    def __enter__(self) -> "ReplicaCluster":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "started" if self._started else "stopped"
        return (
            f"<ReplicaCluster {state} replicas={len(self.replica_ids)}"
            f" workers={self.workers}>"
        )
