"""Binary wire protocol v2 for the KV service: codec and op model.

The JSON-lines transport spends a large share of every request on
``dumps``/``loads`` and one event-loop wakeup per line.  Protocol v2
removes both costs: messages are packed with :mod:`struct` into
length-prefixed **frames**, and one frame carries *many* logical RPCs
(op coalescing) — the client packs every request queued during a flush
window into a single frame, the server decodes, applies and answers the
whole batch with one write, and each side wakes once per batch instead
of once per message.

Frame layout (all integers big-endian)::

    offset  size  field
    0       2     magic      0x5132 ("Q2")
    2       1     version    protocol version (2)
    3       1     flags      bit 0: HELLO (negotiation frame)
    4       4     body_len   bytes after this 10-byte header
    8       2     count      logical messages coalesced in the body

The body is ``count`` back-to-back messages.  A request message is::

    u32 rpc_id, u8 op_kind, <op-specific fields>

and a response message is::

    u32 rpc_id, u8 op_kind, u8 status, i32 replica, <op-specific fields>

Op-specific fields are fixed ``struct`` fields plus length-delimited
byte strings (u16-length keys, u32-length JSON value blobs).  The **op
model** — which operations exist and which fields they carry — is the
single dict vocabulary the whole serving stack speaks
(:meth:`repro.service.replica.Replica.handle` requests/responses):
``read``, ``write``, ``repair``, ``keys``, ``ping``, ``join``.  The
codec round-trips those dicts byte-exactly, and any request or response
*outside* the hot vocabulary travels as an ``OP_JSON`` message (one JSON
blob), so arbitrary dicts — error replies included — always survive the
wire.  :class:`~repro.service.simtransport.SimTransport` can assert the
same contract at runtime (``wire_check=True``): every op it carries is
round-tripped through this codec and compared, which is what keeps
sim-mode determinism and the binary transport on one op model.

Version negotiation: the first frame on a channel is a HELLO carrying
``(min_version, max_version)``; the server answers with its own HELLO
whose ``version`` header byte is the negotiated version (0 = no overlap,
channel closed).  JSON-lines clients never send the magic — the replica
server sniffs the first byte of each connection (``0x51`` = binary,
anything else = JSON lines) so both protocols share one port and the
pre-existing transports keep working unchanged.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Dict, Iterable, List, Tuple

from ..core.errors import ServiceError

__all__ = [
    "MAGIC",
    "VERSION",
    "MIN_VERSION",
    "FLAG_HELLO",
    "HEADER",
    "HEADER_BYTES",
    "MAX_FRAME_BYTES",
    "OP_KINDS",
    "OP_NAMES",
    "OP_JSON",
    "WireError",
    "encode_request",
    "decode_request",
    "encode_response",
    "decode_response",
    "pack_frame",
    "pack_frames",
    "hello_frame",
    "negotiate",
    "FrameDecoder",
    "roundtrip_request",
    "roundtrip_response",
]

#: First two bytes of every binary frame — "Q2" (Quorum wire v2).
MAGIC = 0x5132
#: Highest protocol version this codec speaks.
VERSION = 2
#: Lowest protocol version this codec still accepts.
MIN_VERSION = 2
#: Header flag bit: this frame is a HELLO negotiation frame.
FLAG_HELLO = 0x01

#: Frame header: magic, version, flags, body length, message count.
HEADER = struct.Struct("!HBBIH")
HEADER_BYTES = HEADER.size

#: Hard cap on one frame body (matches the JSON transport's line cap).
MAX_FRAME_BYTES = 1 << 20

# ----------------------------------------------------------------------
# Op model
# ----------------------------------------------------------------------
#: The service's op vocabulary, shared with Replica.handle and (by
#: round-trip assertion) with SimTransport.  Kind 0 is the JSON escape
#: hatch for dicts outside the vocabulary.
OP_JSON = 0
OP_KINDS: Dict[str, int] = {
    "read": 1,
    "write": 2,
    "repair": 3,
    "keys": 4,
    "ping": 5,
    "join": 6,
}
OP_NAMES: Dict[int, str] = {kind: name for name, kind in OP_KINDS.items()}

_STATUS_OK = 0
_STATUS_ERR = 1

# One compiled Struct per message shape: the hot decode path does a
# single combined unpack per message (plus one for a trailing
# variable-length field) instead of one call per field — pure-Python
# codecs live and die by call count.
_MSG_REQ = struct.Struct("!IB")  # rpc_id, op_kind
_MSG_RESP = struct.Struct("!IBBi")  # rpc_id, op_kind, status, replica
_U16 = struct.Struct("!H")
_U32 = struct.Struct("!I")
_REQ_READ_HEAD = struct.Struct("!IBH")  # rpc_id, kind, key_len
_REQ_WRITE_TAIL = struct.Struct("!qqI")  # counter, writer, value_len
_REQ_JOIN = struct.Struct("!IBqq")  # rpc_id, kind, coordinator, ttl
_RESP_READ_HEAD = struct.Struct("!IBBiqqI")  # ..., counter, writer, value_len
_RESP_WRITE = struct.Struct("!IBBiBqq")  # ..., applied, counter, writer
_RESP_JOIN = struct.Struct("!IBBiBq")  # ..., granted, ttl

try:  # pragma: no cover - depends on environment
    import orjson as _orjson

    _dumps = _orjson.dumps
    _loads = _orjson.loads
    _loads_view = _orjson.loads  # accepts memoryview directly
except ImportError:  # pragma: no cover - depends on environment
    _orjson = None

    def _dumps(obj: Any) -> bytes:
        return json.dumps(obj, separators=(",", ":")).encode()

    _loads = json.loads

    def _loads_view(view: memoryview) -> Any:
        return json.loads(bytes(view))


class WireError(ServiceError):
    """Malformed or oversized binary frame; the channel must be torn down."""


# ----------------------------------------------------------------------
# Message codec
# ----------------------------------------------------------------------
def encode_request(rpc_id: int, request: Dict[str, Any]) -> bytes:
    """Pack one request dict into a v2 message (no frame header).

    Hot ops (``read``/``write``/``repair``/``ping``/``keys``/``join``
    with their canonical fields) take the struct-packed fast path; any
    other dict is carried verbatim as an ``OP_JSON`` blob, so the binary
    channel never narrows what the dict protocol can express.
    """
    op = request.get("op")
    kind = OP_KINDS.get(op, OP_JSON) if isinstance(op, str) else OP_JSON
    if kind == 1:  # read
        key = request.get("key")
        if isinstance(key, str) and len(request) == 2:
            kb = key.encode()
            if len(kb) < 0xFFFF:
                return _REQ_READ_HEAD.pack(rpc_id, kind, len(kb)) + kb
    elif kind == 2 or kind == 3:  # write / repair
        key = request.get("key")
        counter = request.get("counter")
        writer = request.get("writer")
        if (
            isinstance(key, str)
            and isinstance(counter, int)
            and isinstance(writer, int)
            and len(request) == 5
        ):
            kb = key.encode()
            vb = _dumps(request.get("value"))
            if len(kb) < 0xFFFF:
                return (
                    _REQ_READ_HEAD.pack(rpc_id, kind, len(kb))
                    + kb
                    + _REQ_WRITE_TAIL.pack(counter, writer, len(vb))
                    + vb
                )
    elif kind == 5 or kind == 4:  # ping / keys
        if len(request) == 1:
            return _MSG_REQ.pack(rpc_id, kind)
    elif kind == 6:  # join
        coordinator = request.get("coordinator")
        ttl = request.get("ttl")
        if isinstance(coordinator, int) and isinstance(ttl, int) and len(request) == 3:
            return _REQ_JOIN.pack(rpc_id, kind, coordinator, ttl)
    blob = _dumps(request)
    return _MSG_REQ.pack(rpc_id, OP_JSON) + _U32.pack(len(blob)) + blob


def decode_request(view: memoryview, offset: int) -> Tuple[int, Dict[str, Any], int]:
    """Unpack one request message at ``offset``; returns
    ``(rpc_id, request dict, next offset)``."""
    try:
        kind = view[offset + 4]
        if kind == 1:  # read
            rpc_id, _, klen = _REQ_READ_HEAD.unpack_from(view, offset)
            offset += 7
            end = offset + klen
            if end > len(view):
                raise WireError("truncated key field")
            return rpc_id, {"op": "read", "key": str(view[offset:end], "utf-8")}, end
        if kind == 2 or kind == 3:  # write / repair
            rpc_id, _, klen = _REQ_READ_HEAD.unpack_from(view, offset)
            offset += 7
            end = offset + klen
            key = str(view[offset:end], "utf-8")
            counter, writer, vlen = _REQ_WRITE_TAIL.unpack_from(view, end)
            offset = end + 20
            end = offset + vlen
            if end > len(view):
                raise WireError("truncated value field")
            return (
                rpc_id,
                {
                    "op": "write" if kind == 2 else "repair",
                    "key": key,
                    "value": _loads_view(view[offset:end]),
                    "counter": counter,
                    "writer": writer,
                },
                end,
            )
        if kind == 5 or kind == 4:  # ping / keys
            rpc_id, _ = _MSG_REQ.unpack_from(view, offset)
            return rpc_id, {"op": "ping" if kind == 5 else "keys"}, offset + 5
        if kind == 6:  # join
            rpc_id, _, coordinator, ttl = _REQ_JOIN.unpack_from(view, offset)
            return (
                rpc_id,
                {"op": "join", "coordinator": coordinator, "ttl": ttl},
                offset + _REQ_JOIN.size,
            )
        if kind == OP_JSON:
            rpc_id, _ = _MSG_REQ.unpack_from(view, offset)
            blob, offset = _take_blob_raw(view, offset + 5)
            return rpc_id, _loads_view(blob), offset
    except (struct.error, ValueError, IndexError, UnicodeDecodeError) as exc:
        raise WireError(f"malformed request message: {exc}") from None
    raise WireError(f"unknown request op kind {kind}")


def encode_response(rpc_id: int, payload: Dict[str, Any]) -> bytes:
    """Pack one response dict into a v2 message (no frame header)."""
    replica = payload.get("replica")
    rep = replica if isinstance(replica, int) else -1
    if payload.get("ok") is not True:
        error = payload.get("error")
        if isinstance(error, str) and set(payload) <= {"ok", "replica", "error"}:
            eb = error.encode()
            return b"".join(
                (
                    _MSG_RESP.pack(rpc_id, OP_JSON, _STATUS_ERR, rep),
                    _U32.pack(len(eb)),
                    eb,
                )
            )
        blob = _dumps(payload)
        return b"".join(
            (
                _MSG_RESP.pack(rpc_id, OP_JSON, _STATUS_OK, rep),
                _U32.pack(len(blob)),
                blob,
            )
        )
    fields = set(payload)
    if fields == _READ_FIELDS:
        vb = _dumps(payload["value"])
        return (
            _RESP_READ_HEAD.pack(
                rpc_id,
                1,
                _STATUS_OK,
                rep,
                payload["counter"],
                payload["writer"],
                len(vb),
            )
            + vb
        )
    if fields == _WRITE_FIELDS:
        return _RESP_WRITE.pack(
            rpc_id,
            2,
            _STATUS_OK,
            rep,
            1 if payload["applied"] else 0,
            payload["counter"],
            payload["writer"],
        )
    if fields == _PING_FIELDS:
        return _MSG_RESP.pack(rpc_id, 5, _STATUS_OK, rep)
    if fields == _JOIN_FIELDS:
        return _RESP_JOIN.pack(
            rpc_id, 6, _STATUS_OK, rep, 1 if payload["granted"] else 0, payload["ttl"]
        )
    if fields == _KEYS_FIELDS and isinstance(payload["keys"], list):
        keys: List[str] = payload["keys"]
        parts = [
            _MSG_RESP.pack(rpc_id, OP_KINDS["keys"], _STATUS_OK, rep),
            _U32.pack(len(keys)),
        ]
        for key in keys:
            kb = key.encode()
            parts.append(_U16.pack(len(kb)))
            parts.append(kb)
        return b"".join(parts)
    blob = _dumps(payload)
    return b"".join(
        (
            _MSG_RESP.pack(rpc_id, OP_JSON, _STATUS_OK, rep),
            _U32.pack(len(blob)),
            blob,
        )
    )


_READ_FIELDS = {"ok", "replica", "value", "counter", "writer"}
_WRITE_FIELDS = {"ok", "replica", "applied", "counter", "writer"}
_PING_FIELDS = {"ok", "replica"}
_JOIN_FIELDS = {"ok", "replica", "granted", "ttl"}
_KEYS_FIELDS = {"ok", "replica", "keys"}


def decode_response(view: memoryview, offset: int) -> Tuple[int, Dict[str, Any], int]:
    """Unpack one response message at ``offset``; returns
    ``(rpc_id, payload dict, next offset)``."""
    try:
        kind = view[offset + 4]
        status = view[offset + 5]
        if status == _STATUS_ERR:
            rpc_id, kind, status, replica = _MSG_RESP.unpack_from(view, offset)
            blob, offset = _take_blob_raw(view, offset + _MSG_RESP.size)
            payload: Dict[str, Any] = {"ok": False, "error": str(blob, "utf-8")}
            if replica >= 0:
                payload["replica"] = replica
            return rpc_id, payload, offset
        if kind == 1:  # read
            rpc_id, _, _, replica, counter, writer, vlen = _RESP_READ_HEAD.unpack_from(
                view, offset
            )
            offset += _RESP_READ_HEAD.size
            end = offset + vlen
            if end > len(view):
                raise WireError("truncated value field")
            return (
                rpc_id,
                {
                    "ok": True,
                    "replica": replica,
                    "value": _loads_view(view[offset:end]),
                    "counter": counter,
                    "writer": writer,
                },
                end,
            )
        if kind == 2:  # write / repair ack
            rpc_id, _, _, replica, applied, counter, writer = _RESP_WRITE.unpack_from(
                view, offset
            )
            return (
                rpc_id,
                {
                    "ok": True,
                    "replica": replica,
                    "applied": bool(applied),
                    "counter": counter,
                    "writer": writer,
                },
                offset + _RESP_WRITE.size,
            )
        if kind == 5:  # ping
            rpc_id, _, _, replica = _MSG_RESP.unpack_from(view, offset)
            return rpc_id, {"ok": True, "replica": replica}, offset + _MSG_RESP.size
        if kind == 6:  # join
            rpc_id, _, _, replica, granted, ttl = _RESP_JOIN.unpack_from(view, offset)
            return (
                rpc_id,
                {"ok": True, "replica": replica, "granted": bool(granted), "ttl": ttl},
                offset + _RESP_JOIN.size,
            )
        if kind == 4:  # keys
            rpc_id, _, _, replica = _MSG_RESP.unpack_from(view, offset)
            offset += _MSG_RESP.size
            (count,) = _U32.unpack_from(view, offset)
            offset += _U32.size
            keys = []
            for _ in range(count):
                key, offset = _take_key(view, offset)
                keys.append(key)
            return rpc_id, {"ok": True, "replica": replica, "keys": keys}, offset
        if kind == OP_JSON:
            rpc_id, _, _, replica = _MSG_RESP.unpack_from(view, offset)
            blob, offset = _take_blob_raw(view, offset + _MSG_RESP.size)
            return rpc_id, _loads_view(blob), offset
    except (struct.error, ValueError, IndexError, UnicodeDecodeError) as exc:
        raise WireError(f"malformed response message: {exc}") from None
    raise WireError(f"unknown response op kind {kind}")


def _take_key(view: memoryview, offset: int) -> Tuple[str, int]:
    (length,) = _U16.unpack_from(view, offset)
    offset += _U16.size
    end = offset + length
    if end > len(view):
        raise WireError("truncated key field")
    return str(view[offset:end], "utf-8"), end


def _take_blob_raw(view: memoryview, offset: int) -> Tuple[memoryview, int]:
    (length,) = _U32.unpack_from(view, offset)
    offset += _U32.size
    end = offset + length
    if end > len(view):
        raise WireError("truncated blob field")
    return view[offset:end], end


# ----------------------------------------------------------------------
# Frames
# ----------------------------------------------------------------------
def pack_frame(
    messages: Iterable[bytes], *, version: int = VERSION, flags: int = 0
) -> bytes:
    """One coalesced frame around already-encoded messages."""
    parts = list(messages)
    body_len = sum(len(part) for part in parts)
    if body_len > MAX_FRAME_BYTES:
        raise WireError(
            f"frame body {body_len} exceeds cap {MAX_FRAME_BYTES}"
        )
    header = HEADER.pack(MAGIC, version, flags, body_len, len(parts))
    return header + b"".join(parts)


def pack_frames(
    messages: Iterable[bytes], *, version: int = VERSION, flags: int = 0
) -> List[bytes]:
    """Pack messages into as few frames as the body cap allows.

    Messages split across frames freely — the receiver matches replies
    by rpc id, not by frame — but one message larger than the cap can
    never be sent and raises :class:`WireError`.
    """
    frames: List[bytes] = []
    batch: List[bytes] = []
    size = 0
    for message in messages:
        mlen = len(message)
        if mlen > MAX_FRAME_BYTES:
            raise WireError(f"message {mlen} exceeds frame cap {MAX_FRAME_BYTES}")
        if batch and size + mlen > MAX_FRAME_BYTES:
            frames.append(
                HEADER.pack(MAGIC, version, flags, size, len(batch)) + b"".join(batch)
            )
            batch = []
            size = 0
        batch.append(message)
        size += mlen
    if batch:
        frames.append(
            HEADER.pack(MAGIC, version, flags, size, len(batch)) + b"".join(batch)
        )
    return frames


def hello_frame(
    *, min_version: int = MIN_VERSION, max_version: int = VERSION, version: int = VERSION
) -> bytes:
    """The negotiation frame each side sends first on a binary channel.

    The client's HELLO advertises its ``(min, max)`` supported range;
    the server answers with a HELLO whose header ``version`` byte is the
    negotiated version (and the same range bytes, for symmetry).  A
    negotiated version of 0 means no overlap — the channel is dead.
    """
    body = struct.pack("!BB", min_version, max_version)
    return HEADER.pack(MAGIC, version, FLAG_HELLO, len(body), 0) + body


def negotiate(client_min: int, client_max: int) -> int:
    """Server-side version choice: the highest version both sides speak,
    or 0 when the ranges do not overlap."""
    low = max(client_min, MIN_VERSION)
    high = min(client_max, VERSION)
    return high if high >= low else 0


class FrameDecoder:
    """Incremental frame parser: feed raw socket bytes, take whole frames.

    Handles partial frames across reads (header split anywhere, body
    split anywhere), rejects oversized bodies and bad magic with
    :class:`WireError` — the caller must tear the channel down; there is
    no resynchronisation inside a byte stream.
    """

    __slots__ = ("_buffer", "frames_decoded", "bytes_fed")

    def __init__(self) -> None:
        self._buffer = bytearray()
        self.frames_decoded = 0
        self.bytes_fed = 0

    def feed(self, data: bytes) -> List[Tuple[int, int, int, memoryview]]:
        """Append ``data``; return every now-complete frame as
        ``(version, flags, count, body memoryview)``."""
        self.bytes_fed += len(data)
        self._buffer.extend(data)
        frames: List[Tuple[int, int, int, memoryview]] = []
        offset = 0
        buflen = len(self._buffer)
        view = memoryview(self._buffer)
        while buflen - offset >= HEADER_BYTES:
            magic, version, flags, body_len, count = HEADER.unpack_from(view, offset)
            if magic != MAGIC:
                raise WireError(f"bad magic 0x{magic:04x}")
            if body_len > MAX_FRAME_BYTES:
                raise WireError(
                    f"oversized frame: {body_len} > {MAX_FRAME_BYTES}"
                )
            end = offset + HEADER_BYTES + body_len
            if end > buflen:
                break
            # Copy the body out so the rolling buffer can be compacted;
            # bodies are decoded immediately by every caller.
            body = memoryview(bytes(view[offset + HEADER_BYTES : end]))
            frames.append((version, flags, count, body))
            self.frames_decoded += 1
            offset = end
        if offset:
            view.release()
            del self._buffer[:offset]
        return frames

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered towards an incomplete frame."""
        return len(self._buffer)


# ----------------------------------------------------------------------
# Op-model parity helpers
# ----------------------------------------------------------------------
def roundtrip_request(request: Dict[str, Any]) -> Dict[str, Any]:
    """Encode + decode one request — the op-model identity check used by
    ``SimTransport(wire_check=True)`` and the codec tests."""
    encoded = encode_request(0, request)
    _, decoded, offset = decode_request(memoryview(encoded), 0)
    if offset != len(encoded):
        raise WireError(f"request round-trip left {len(encoded) - offset} bytes")
    return decoded


def roundtrip_response(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Encode + decode one response payload (see :func:`roundtrip_request`)."""
    encoded = encode_response(0, payload)
    _, decoded, offset = decode_response(memoryview(encoded), 0)
    if offset != len(encoded):
        raise WireError(f"response round-trip left {len(encoded) - offset} bytes")
    return decoded


def assert_op_roundtrip(
    request: Dict[str, Any], payload: Dict[str, Any]
) -> None:
    """Raise :class:`ServiceError` unless both dicts survive the codec
    byte-exactly — the contract that keeps the binary wire and the
    simulated transports on one op model."""
    decoded_request = roundtrip_request(request)
    if decoded_request != request:
        raise ServiceError(
            f"op model drift: request {request!r} decoded as {decoded_request!r}"
        )
    decoded_payload = roundtrip_response(payload)
    if decoded_payload != payload:
        raise ServiceError(
            f"op model drift: response {payload!r} decoded as {decoded_payload!r}"
        )
