"""Per-element replica servers for the quorum-replicated key-value store.

Each element of the quorum system's universe is backed by one
:class:`Replica` holding a versioned copy of every key it has seen.
Versions are ordered by ``(counter, writer)`` timestamps — the classic
lexicographic logical-clock order — so concurrent coordinators converge:
a replica applies a write only when its timestamp is strictly newer than
the stored one, which makes writes idempotent and reorderable.

Replicas are transport-agnostic: :meth:`Replica.handle` maps a request
dict to a response dict, and both the in-process and the TCP/JSON-lines
transports (:mod:`repro.service.transport`) speak exactly that dict
protocol.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, NamedTuple, Optional, Tuple

from ..core.errors import ServiceError

#: Timestamp of a key that was never written: older than every real write.
NULL_TIMESTAMP: Tuple[int, int] = (0, -1)


class Versioned(NamedTuple):
    """A stored value together with its logical timestamp."""

    value: Any
    counter: int
    writer: int

    @property
    def timestamp(self) -> Tuple[int, int]:
        """The ``(counter, writer)`` pair; compared lexicographically."""
        return (self.counter, self.writer)


class Replica:
    """In-memory versioned store for one element of the universe.

    Parameters
    ----------
    replica_id:
        Dense element id this replica backs.
    name:
        Optional user-facing element name (e.g. a grid coordinate).
    on_apply:
        Optional journal hook invoked as ``on_apply(key, counter, writer)``
        after every stored write (regular, repair or hinted-handoff
        replay).  The chaos harness uses it to verify that stored
        timestamps only ever move forward.
    """

    def __init__(
        self,
        replica_id: int,
        name: Optional[object] = None,
        on_apply: Optional[Callable[[str, int, int], None]] = None,
    ) -> None:
        self.replica_id = replica_id
        self.name = replica_id if name is None else name
        self.on_apply = on_apply
        self.store: Dict[str, Versioned] = {}
        self.reads_served = 0
        self.writes_applied = 0
        self.writes_ignored = 0
        self.repairs_applied = 0
        self.joins_served = 0
        # coordinator id -> last granted lease TTL (ops); the replica's
        # view of who currently holds a quorum lease through it.
        self.lessees: Dict[int, int] = {}

    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[Versioned]:
        """Current version of ``key``, or ``None`` if never written."""
        return self.store.get(key)

    def apply_write(self, key: str, value: Any, counter: int, writer: int) -> bool:
        """Apply a (possibly stale) write; returns True when stored.

        Timestamp ordering: the write lands only when ``(counter, writer)``
        is strictly newer than the stored version, so replayed and
        out-of-order writes are harmless.
        """
        incoming = (counter, writer)
        current = self.store.get(key)
        if current is not None and incoming <= current.timestamp:
            self.writes_ignored += 1
            return False
        self.store[key] = Versioned(value, counter, writer)
        self.writes_applied += 1
        if self.on_apply is not None:
            self.on_apply(key, counter, writer)
        return True

    # ------------------------------------------------------------------
    def handle(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Serve one request dict; always returns a response dict.

        Operations: ``read``, ``write``, ``repair`` (a write issued by
        read-repair, tracked separately), ``keys`` (the key census the
        resharding handoff enumerates migrating state with) and
        ``ping``.  Malformed requests yield ``{"ok": False, "error":
        ...}`` rather than an exception so a broken client cannot kill a
        TCP replica server.
        """
        try:
            op = request.get("op")
            if op == "read":
                return self._handle_read(request)
            if op in ("write", "repair"):
                return self._handle_write(request, repair=op == "repair")
            if op == "keys":
                return {
                    "ok": True,
                    "replica": self.replica_id,
                    "keys": sorted(self.store),
                }
            if op == "ping":
                return {"ok": True, "replica": self.replica_id}
            if op == "join":
                return self._handle_join(request)
            raise ServiceError(f"unknown operation {op!r}")
        except ServiceError as exc:
            return {"ok": False, "replica": self.replica_id, "error": str(exc)}

    def handle_batch(self, requests: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        """Serve a coalesced batch of requests, one response per request.

        The binary transport's replica servers decode a whole frame and
        apply it through this single call — one pass over the batch, one
        reply frame, one writer wakeup — instead of interleaving the
        event loop between ops.  Semantically identical to calling
        :meth:`handle` per request in order.
        """
        handle = self.handle
        return [handle(request) for request in requests]

    def _handle_read(self, request: Dict[str, Any]) -> Dict[str, Any]:
        key = _require_key(request)
        self.reads_served += 1
        version = self.store.get(key)
        if version is None:
            counter, writer = NULL_TIMESTAMP
            return {
                "ok": True,
                "replica": self.replica_id,
                "value": None,
                "counter": counter,
                "writer": writer,
            }
        return {
            "ok": True,
            "replica": self.replica_id,
            "value": version.value,
            "counter": version.counter,
            "writer": version.writer,
        }

    def _handle_join(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Grant a quorum lease to a coordinator (Timed-Quorum re-join).

        The replica side of the handshake is deliberately thin: record
        the lessee and acknowledge.  Reachability *is* the validation —
        a coordinator whose join cannot reach every member must fall
        back to a different quorum, which is what turns static
        membership into a dynamic one.
        """
        try:
            coordinator = int(request["coordinator"])
            ttl = int(request.get("ttl", 0))
        except (KeyError, TypeError, ValueError):
            raise ServiceError("join needs an integer 'coordinator'")
        if ttl < 0:
            raise ServiceError(f"join ttl must be >= 0, got {ttl}")
        self.joins_served += 1
        self.lessees[coordinator] = ttl
        return {
            "ok": True,
            "replica": self.replica_id,
            "granted": True,
            "ttl": ttl,
        }

    def _handle_write(self, request: Dict[str, Any], repair: bool) -> Dict[str, Any]:
        key = _require_key(request)
        try:
            counter = int(request["counter"])
            writer = int(request["writer"])
        except (KeyError, TypeError, ValueError):
            raise ServiceError("write needs integer 'counter' and 'writer'")
        applied = self.apply_write(key, request.get("value"), counter, writer)
        if repair and applied:
            self.repairs_applied += 1
        stored = self.store[key]
        return {
            "ok": True,
            "replica": self.replica_id,
            "applied": applied,
            "counter": stored.counter,
            "writer": stored.writer,
        }

    def __repr__(self) -> str:
        return (
            f"<Replica {self.name!r} keys={len(self.store)}"
            f" reads={self.reads_served} writes={self.writes_applied}>"
        )


def _require_key(request: Dict[str, Any]) -> str:
    key = request.get("key")
    if not isinstance(key, str) or not key:
        raise ServiceError("request needs a non-empty string 'key'")
    return key
