"""Transports for the quorum-replicated key-value service.

Two implementations of one abstraction:

* :class:`InProcessTransport` — replicas live in the same process; message
  latencies are *virtual* milliseconds drawn from a seeded RNG and crash
  injection reuses the paper's iid model via
  :func:`repro.sim.failures.sample_iid_crash_set`.  Nothing ever sleeps
  real time (awaits are ``sleep(0)`` yields), so a fixed seed produces a
  bit-identical run — timeouts included, because a request "times out"
  exactly when its sampled latency exceeds the deadline.
* :class:`TcpTransport` — real sockets speaking JSON lines (one request
  dict per line, one response dict per line) against replica servers
  started with :func:`start_tcp_replicas`; latencies are wall-clock.
  Requests are *pipelined*: frames carry a correlation ``id`` the server
  echoes back, a per-connection reader task resolves replies to futures
  in arrival order, and writes are flushed in batches — N concurrent
  calls to one replica take one round trip each instead of N serialised
  round trips.  :class:`SerializedTcpTransport` preserves the old
  lock-per-replica client as the benchmark baseline.

Both report per-message latency in the reply so the coordinator can
aggregate operation latency the same way regardless of transport.
"""

from __future__ import annotations

import asyncio
import json
import time
from abc import ABC, abstractmethod
from typing import Any, Dict, Iterable, List, Mapping, NamedTuple, Optional, Tuple

import numpy as np

from ..core.errors import (
    ReplicaUnavailable,
    RequestTimeout,
    ServiceError,
    TransportError,
)
from ..runtime.faults import sample_iid_crash_set
from .replica import Replica

# The transport error taxonomy lives in :mod:`repro.core.errors`
# (shared with the rest of the library); re-exported here because this
# module is where callers have always imported it from.
__all__ = [
    "DEFAULT_TIMEOUT_MS",
    "TransportError",
    "ReplicaUnavailable",
    "RequestTimeout",
    "Reply",
    "Transport",
    "InProcessTransport",
    "TcpTransport",
    "SerializedTcpTransport",
    "start_tcp_replicas",
]

#: Default per-request deadline (milliseconds, virtual or wall-clock).
DEFAULT_TIMEOUT_MS = 50.0


class Reply(NamedTuple):
    """A replica response plus the observed message latency (ms)."""

    payload: Dict[str, Any]
    latency: float


class Transport(ABC):
    """Request/response channel from a coordinator to replicas."""

    @abstractmethod
    async def call(
        self,
        replica_id: int,
        request: Dict[str, Any],
        timeout: float = DEFAULT_TIMEOUT_MS,
    ) -> Reply:
        """Send one request; raise :class:`ReplicaUnavailable` /
        :class:`RequestTimeout` on failure."""

    async def pause(self, delay_ms: float) -> None:
        """Backoff hook: sleep ``delay_ms`` of transport time.

        Real transports sleep wall-clock; the in-process transport only
        *accounts* the delay (the coordinator adds it to operation
        latency), keeping benchmark runs instantaneous and deterministic.
        """
        await asyncio.sleep(delay_ms / 1000.0)

    async def close(self) -> None:
        """Release sockets/resources; idempotent."""


class InProcessTransport(Transport):
    """Deterministic in-process transport with latency and crash injection.

    Parameters
    ----------
    replicas:
        The replicas, one per universe element (list or {id: replica}).
    seed:
        Seed for the transport RNG (latencies and crash epochs).
    base_latency, mean_latency:
        Message latency (virtual ms) is ``base + Exp(mean)`` per call.
    crash_rate:
        The paper's iid crash probability ``p`` used by
        :meth:`resample_crashes`; each epoch resample draws every
        replica down independently with probability ``p``.
    """

    def __init__(
        self,
        replicas: Iterable[Replica],
        *,
        seed: int = 0,
        base_latency: float = 1.0,
        mean_latency: float = 4.0,
        crash_rate: float = 0.0,
    ) -> None:
        if isinstance(replicas, Mapping):
            self.replicas: Dict[int, Replica] = dict(replicas)
        else:
            self.replicas = {r.replica_id: r for r in replicas}
        if not self.replicas:
            raise ServiceError("transport needs at least one replica")
        if not 0.0 <= crash_rate <= 1.0:
            raise ServiceError(f"crash rate must be in [0,1], got {crash_rate}")
        if base_latency < 0 or mean_latency < 0:
            raise ServiceError("latencies must be non-negative")
        self.rng = np.random.default_rng(seed)
        self.base_latency = base_latency
        self.mean_latency = mean_latency
        self.crash_rate = crash_rate
        self.down: frozenset = frozenset()
        self.epochs = 0
        self.calls = 0

    # ------------------------------------------------------------------
    # Crash injection
    # ------------------------------------------------------------------
    def crash(self, *replica_ids: int) -> None:
        """Mark replicas as crashed (targeted injection, e.g. in tests)."""
        self.down = self.down | frozenset(replica_ids)

    def recover(self, *replica_ids: int) -> None:
        """Bring replicas back; with no arguments, recover everyone."""
        if not replica_ids:
            self.down = frozenset()
        else:
            self.down = self.down - frozenset(replica_ids)

    def resample_crashes(self) -> frozenset:
        """Start a new crash epoch: replica ``i`` down iid w.p. ``crash_rate``.

        The same model (and helper) as the runtime fault schedule's
        :func:`~repro.runtime.faults.iid_crash_schedule`, so measured
        service availability converges to the analytic ``F_p``.
        """
        self.down = sample_iid_crash_set(
            self.rng, sorted(self.replicas), self.crash_rate
        )
        self.epochs += 1
        return self.down

    # ------------------------------------------------------------------
    async def call(
        self,
        replica_id: int,
        request: Dict[str, Any],
        timeout: float = DEFAULT_TIMEOUT_MS,
    ) -> Reply:
        replica = self.replicas.get(replica_id)
        if replica is None:
            raise ServiceError(f"unknown replica id {replica_id}")
        self.calls += 1
        # Draw the round-trip latency unconditionally so the RNG stream
        # does not depend on the current crash set.
        latency = self.base_latency + float(self.rng.exponential(self.mean_latency))
        if replica_id in self.down:
            # A crashed replica never answers: the caller burns the full
            # deadline discovering it.
            raise ReplicaUnavailable(replica_id, latency=timeout)
        if latency > timeout:
            raise RequestTimeout(replica_id, latency=timeout)
        await asyncio.sleep(0)  # cooperative yield; keeps fan-out interleaved
        return Reply(replica.handle(request), latency)

    async def pause(self, delay_ms: float) -> None:
        # Virtual time only: the coordinator accounts the delay itself.
        await asyncio.sleep(0)


# ----------------------------------------------------------------------
# TCP / JSON-lines
# ----------------------------------------------------------------------

#: Hard cap on one JSON line on the wire (values are small in this demo).
MAX_LINE_BYTES = 1 << 20

#: Correlation-id key a pipelined client tags requests with; the server
#: echoes it back verbatim so replies can arrive in any order.
RPC_ID_KEY = "id"

#: Socket read size for the batched reader loops.  One ``read()`` pulls
#: every frame the peer has sent so far, so a pipelined burst of N
#: requests costs one wakeup instead of N ``readline()`` wakeups.
RECV_CHUNK_BYTES = 1 << 16

#: Compact JSON encoding for the wire (no spaces after separators).
_WIRE_SEPARATORS = (",", ":")

# The hot path (replica servers + pipelined client) encodes with orjson
# when the environment has it; stdlib json is the drop-in fallback.  The
# wire format is identical either way.  SerializedTcpTransport keeps
# stdlib json on purpose: it is the preserved pre-overhaul baseline.
try:
    import orjson as _orjson
except ImportError:  # pragma: no cover - depends on environment
    _orjson = None

if _orjson is not None:
    _wire_encode = _orjson.dumps
    _wire_decode = _orjson.loads
else:  # pragma: no cover - depends on environment

    def _wire_encode(obj: Any) -> bytes:
        return json.dumps(obj, separators=_WIRE_SEPARATORS).encode()

    _wire_decode = json.loads


async def _serve_connection(
    replica: Replica, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
) -> None:
    buffer = b""
    try:
        while True:
            chunk = await reader.read(RECV_CHUNK_BYTES)
            if not chunk:
                break
            buffer += chunk
            if b"\n" not in chunk:
                if len(buffer) > MAX_LINE_BYTES:
                    break  # oversized frame with no delimiter: hang up
                continue
            # Handle every complete line in the burst, answer with one
            # batched write: a pipelined client's fan-in costs one
            # syscall here instead of one per request.
            *lines, buffer = buffer.split(b"\n")
            out: List[bytes] = []
            for line in lines:
                if not line:
                    continue
                rpc_id = None
                try:
                    request = _wire_decode(line)
                except ValueError as exc:
                    response = {"ok": False, "error": f"bad json: {exc}"}
                else:
                    if isinstance(request, dict):
                        rpc_id = request.pop(RPC_ID_KEY, None)
                    response = replica.handle(request)
                if rpc_id is not None:
                    response = dict(response)
                    response[RPC_ID_KEY] = rpc_id
                out.append(_wire_encode(response))
            if out:
                writer.write(b"\n".join(out) + b"\n")
                await writer.drain()
    except (ConnectionError, asyncio.IncompleteReadError):
        pass
    except asyncio.CancelledError:
        # Loop shutdown while blocked on read: finish quietly so the
        # streams machinery does not log the cancellation as an error.
        pass
    finally:
        writer.close()


async def start_tcp_replicas(
    replicas: Iterable[Replica],
    host: str = "127.0.0.1",
    base_port: int = 0,
) -> Tuple[List[asyncio.base_events.Server], Dict[int, Tuple[str, int]]]:
    """Start one JSON-lines server per replica.

    With ``base_port > 0`` replica ``i`` listens on ``base_port + i``;
    with ``base_port == 0`` the OS assigns ephemeral ports.  Returns the
    server objects (close them to "crash" a replica) and the
    ``{replica_id: (host, port)}`` address map a :class:`TcpTransport`
    consumes.
    """
    servers: List[asyncio.base_events.Server] = []
    addresses: Dict[int, Tuple[str, int]] = {}
    for replica in replicas:
        port = 0 if base_port == 0 else base_port + replica.replica_id
        server = await asyncio.start_server(
            lambda r, w, rep=replica: _serve_connection(rep, r, w),
            host=host,
            port=port,
            limit=MAX_LINE_BYTES,
        )
        bound_port = server.sockets[0].getsockname()[1]
        servers.append(server)
        addresses[replica.replica_id] = (host, bound_port)
    return servers, addresses


class _ChannelClosed(Exception):
    """Internal: the multiplexed connection died under pending requests."""

    def __init__(self, reason: str) -> None:
        self.reason = reason
        super().__init__(reason)


class _Channel:
    """One multiplexed connection: reply futures keyed by correlation id,
    an outbox of frames awaiting the next batched flush, and the reader
    task that dispatches incoming replies."""

    __slots__ = (
        "reader",
        "writer",
        "pending",
        "next_id",
        "outbox",
        "flush_task",
        "reader_task",
        "closed",
    )

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.reader = reader
        self.writer = writer
        self.pending: Dict[int, asyncio.Future] = {}
        self.next_id = 0
        self.outbox: List[bytes] = []
        self.flush_task: Optional[asyncio.Task] = None
        self.reader_task: Optional[asyncio.Task] = None
        self.closed = False


class TcpTransport(Transport):
    """Pipelined JSON-lines client: one persistent connection per replica,
    multiplexed by correlation id.

    Every request frame carries an ``id``; the replica server echoes it
    back, so N concurrent calls to one replica are all in flight at once
    and each costs one round trip instead of N serialised round trips
    (:class:`SerializedTcpTransport` keeps the old lock-per-replica
    behaviour for comparison).  A per-channel reader task dispatches
    replies to per-request futures in whatever order they arrive; writes
    are buffered in an outbox and flushed in batches (one ``write`` +
    ``drain`` per event-loop burst rather than per request).

    Failure semantics mirror the serialized transport: a request that
    fails because the *cached* channel died (peer restarted or closed the
    socket between calls) is retried once on a fresh connection — the
    ``reconnects`` counter tracks exactly those — while a fresh
    connection that fails surfaces :class:`ReplicaUnavailable`
    immediately.  A channel death fails only the calls pending on that
    channel; calls to other replicas are untouched.  A per-request
    timeout no longer tears the connection down: the late reply, if it
    ever arrives, is dropped by correlation id, and the channel keeps
    serving the other in-flight requests.
    """

    def __init__(self, addresses: Mapping[int, Tuple[str, int]]) -> None:
        if not addresses:
            raise ServiceError("TCP transport needs at least one address")
        self.addresses = dict(addresses)
        self._channels: Dict[int, _Channel] = {}
        self._dial_locks: Dict[int, asyncio.Lock] = {}
        self._ever_dialed: set = set()
        self.reconnects = 0
        self.calls = 0
        self.flushes = 0
        self.bytes_sent = 0
        self.bytes_received = 0

    # ------------------------------------------------------------------
    # Channel lifecycle
    # ------------------------------------------------------------------
    async def _channel_for(self, replica_id: int) -> Tuple[_Channel, bool]:
        """Return ``(channel, reused)``; dial a fresh connection if needed."""
        channel = self._channels.get(replica_id)
        if channel is not None and not channel.closed:
            return channel, True
        lock = self._dial_locks.setdefault(replica_id, asyncio.Lock())
        async with lock:
            channel = self._channels.get(replica_id)
            if channel is not None and not channel.closed:
                return channel, True  # a concurrent caller dialed first
            # One-shot reconnect accounting: dialing a replica whose
            # previous channel died is a reconnect.  The replica leaves
            # the set until the dial succeeds, so a truly unreachable
            # replica is only counted once, like the serialized client.
            if replica_id in self._ever_dialed:
                self._ever_dialed.discard(replica_id)
                self.reconnects += 1
            host, port = self.addresses[replica_id]
            reader, writer = await asyncio.open_connection(
                host, port, limit=MAX_LINE_BYTES
            )
            self._ever_dialed.add(replica_id)
            channel = _Channel(reader, writer)
            channel.reader_task = asyncio.ensure_future(
                self._read_loop(replica_id, channel)
            )
            self._channels[replica_id] = channel
            return channel, False

    async def _read_loop(self, replica_id: int, channel: _Channel) -> None:
        """Dispatch incoming reply frames to their futures until EOF/error.

        Reads in chunks and splits lines itself: a burst of pipelined
        replies is dispatched in one wakeup instead of one ``readline``
        await per frame.
        """
        reason = "closed"
        buffer = b""
        try:
            while True:
                chunk = await channel.reader.read(RECV_CHUNK_BYTES)
                if not chunk:
                    break
                self.bytes_received += len(chunk)
                buffer += chunk
                if b"\n" not in chunk:
                    if len(buffer) > MAX_LINE_BYTES:
                        reason = "oversized response"
                        break
                    continue
                *lines, buffer = buffer.split(b"\n")
                bad = None
                for line in lines:
                    if not line:
                        continue
                    try:
                        payload = _wire_decode(line)
                    except ValueError as exc:
                        bad = f"bad json from replica: {exc}"
                        break
                    rpc_id = None
                    if isinstance(payload, dict):
                        rpc_id = payload.pop(RPC_ID_KEY, None)
                    future = channel.pending.pop(rpc_id, None)
                    if future is not None and not future.done():
                        future.set_result(payload)
                    # Unmatched ids are replies that already timed out: drop.
                if bad is not None:
                    reason = bad
                    break
        except (ConnectionError, OSError, asyncio.IncompleteReadError, ValueError) as exc:
            reason = str(exc) or type(exc).__name__
        except asyncio.CancelledError:
            reason = "transport closed"
        finally:
            self._teardown(replica_id, channel, reason)

    def _teardown(self, replica_id: int, channel: _Channel, reason: str) -> None:
        """Fail every call pending on the channel and drop it."""
        channel.closed = True
        if self._channels.get(replica_id) is channel:
            del self._channels[replica_id]
        failure = _ChannelClosed(reason)
        pending = list(channel.pending.values())
        channel.pending.clear()
        channel.outbox.clear()
        for future in pending:
            if not future.done():
                future.set_exception(failure)
        try:
            channel.writer.close()
        except RuntimeError:  # pragma: no cover - loop already gone
            pass

    # ------------------------------------------------------------------
    # Write batching
    # ------------------------------------------------------------------
    def _enqueue(self, channel: _Channel, frame: bytes) -> None:
        channel.outbox.append(frame)
        if channel.flush_task is None or channel.flush_task.done():
            channel.flush_task = asyncio.ensure_future(self._flush(channel))

    def _expire(self, channel: _Channel, rpc_id: int) -> None:
        """Deadline timer: fail the request's future, keep the channel.

        The reply, if it ever lands, is dropped by correlation id in the
        reader loop — one slow request does not cost a reconnect.
        """
        future = channel.pending.pop(rpc_id, None)
        if future is not None and not future.done():
            future.set_exception(asyncio.TimeoutError())

    async def _flush(self, channel: _Channel) -> None:
        """Drain the outbox: every frame queued while a previous batch was
        draining goes out in one ``write`` call."""
        try:
            while channel.outbox and not channel.closed:
                batch = b"".join(channel.outbox)
                channel.outbox.clear()
                channel.writer.write(batch)
                self.flushes += 1
                await channel.writer.drain()
        except (ConnectionError, OSError):
            pass  # the reader task observes the dead peer and tears down

    # ------------------------------------------------------------------
    async def call(
        self,
        replica_id: int,
        request: Dict[str, Any],
        timeout: float = DEFAULT_TIMEOUT_MS,
    ) -> Reply:
        if replica_id not in self.addresses:
            raise ServiceError(f"unknown replica id {replica_id}")
        start = time.monotonic()
        self.calls += 1
        for retry in (False, True):
            try:
                channel, reused = await self._channel_for(replica_id)
            except (ConnectionError, OSError) as exc:
                elapsed = (time.monotonic() - start) * 1000.0
                raise ReplicaUnavailable(replica_id, latency=elapsed, reason=str(exc))
            rpc_id = channel.next_id
            channel.next_id += 1
            loop = asyncio.get_running_loop()
            future: asyncio.Future = loop.create_future()
            channel.pending[rpc_id] = future
            frame = _wire_encode({**request, RPC_ID_KEY: rpc_id}) + b"\n"
            self.bytes_sent += len(frame)
            self._enqueue(channel, frame)
            # A plain timer beats asyncio.wait_for here: no wrapper task or
            # timeout context per request on the hot path.
            timer = loop.call_later(timeout / 1000.0, self._expire, channel, rpc_id)
            try:
                payload = await future
            except asyncio.TimeoutError:
                raise RequestTimeout(replica_id, latency=timeout)
            except _ChannelClosed as exc:
                # The retry dials a fresh channel; the reconnect itself is
                # counted there (``_ever_dialed``), not here.
                if reused and not retry:
                    continue
                elapsed = (time.monotonic() - start) * 1000.0
                raise ReplicaUnavailable(
                    replica_id, latency=elapsed, reason=exc.reason
                )
            finally:
                timer.cancel()
                channel.pending.pop(rpc_id, None)
            elapsed = (time.monotonic() - start) * 1000.0
            return Reply(payload, elapsed)
        raise ReplicaUnavailable(  # pragma: no cover - loop always returns/raises
            replica_id, latency=(time.monotonic() - start) * 1000.0, reason="closed"
        )

    async def close(self) -> None:
        channels = list(self._channels.items())
        self._channels.clear()
        tasks: List[asyncio.Task] = []
        for _, channel in channels:
            for task in (channel.flush_task, channel.reader_task):
                if task is not None and not task.done():
                    task.cancel()
                    tasks.append(task)
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        for replica_id, channel in channels:
            self._teardown(replica_id, channel, "transport closed")


class SerializedTcpTransport(Transport):
    """The pre-pipelining JSON-lines client: one persistent connection per
    replica, serialised per replica with a lock (concurrency only across
    replicas).

    Kept as the baseline for the serving-throughput benchmark — N
    concurrent client operations against one replica cost N serialised
    round trips here versus one round trip each on the pipelined
    :class:`TcpTransport`.  Reconnect semantics are identical: a request
    that fails because the *cached* connection died is retried once on a
    fresh connection (``reconnects`` counts those); a fresh connection
    that fails surfaces :class:`ReplicaUnavailable` immediately.
    """

    def __init__(self, addresses: Mapping[int, Tuple[str, int]]) -> None:
        if not addresses:
            raise ServiceError("TCP transport needs at least one address")
        self.addresses = dict(addresses)
        self._connections: Dict[int, Tuple[asyncio.StreamReader, asyncio.StreamWriter]] = {}
        self._locks: Dict[int, asyncio.Lock] = {}
        self.reconnects = 0
        self.calls = 0
        self.bytes_sent = 0
        self.bytes_received = 0

    def _lock_for(self, replica_id: int) -> asyncio.Lock:
        if replica_id not in self._locks:
            self._locks[replica_id] = asyncio.Lock()
        return self._locks[replica_id]

    async def _connection(
        self, replica_id: int
    ) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter, bool]:
        """Return ``(reader, writer, reused)`` for the replica's channel."""
        cached = self._connections.get(replica_id)
        if cached is not None and not cached[1].is_closing():
            return cached[0], cached[1], True
        host, port = self.addresses[replica_id]
        reader, writer = await asyncio.open_connection(
            host, port, limit=MAX_LINE_BYTES
        )
        self._connections[replica_id] = (reader, writer)
        return reader, writer, False

    async def call(
        self,
        replica_id: int,
        request: Dict[str, Any],
        timeout: float = DEFAULT_TIMEOUT_MS,
    ) -> Reply:
        if replica_id not in self.addresses:
            raise ServiceError(f"unknown replica id {replica_id}")
        start = time.monotonic()
        self.calls += 1
        payload = json.dumps(request).encode() + b"\n"
        async with self._lock_for(replica_id):
            for retry in (False, True):
                reused = False
                try:
                    reader, writer, reused = await self._connection(replica_id)
                    writer.write(payload)
                    self.bytes_sent += len(payload)
                    await writer.drain()
                    line = await asyncio.wait_for(
                        reader.readline(), timeout=timeout / 1000.0
                    )
                except asyncio.TimeoutError:
                    self._drop(replica_id)
                    raise RequestTimeout(replica_id, latency=timeout)
                except (ConnectionError, OSError) as exc:
                    self._drop(replica_id)
                    if reused and not retry:
                        self.reconnects += 1
                        continue
                    elapsed = (time.monotonic() - start) * 1000.0
                    raise ReplicaUnavailable(replica_id, latency=elapsed, reason=str(exc))
                if not line:
                    # EOF: the peer closed the stream.  On a reused
                    # connection that just means our cached socket went
                    # stale — reconnect and retry once.
                    self._drop(replica_id)
                    if reused and not retry:
                        self.reconnects += 1
                        continue
                    elapsed = (time.monotonic() - start) * 1000.0
                    raise ReplicaUnavailable(replica_id, latency=elapsed, reason="closed")
                if len(line) > MAX_LINE_BYTES:
                    raise ServiceError(f"oversized response from replica {replica_id}")
                self.bytes_received += len(line)
                elapsed = (time.monotonic() - start) * 1000.0
                return Reply(json.loads(line), elapsed)
        raise ReplicaUnavailable(  # pragma: no cover - loop always returns/raises
            replica_id, latency=(time.monotonic() - start) * 1000.0, reason="closed"
        )

    def _drop(self, replica_id: int) -> None:
        cached = self._connections.pop(replica_id, None)
        if cached is not None:
            cached[1].close()

    async def close(self) -> None:
        for replica_id in list(self._connections):
            self._drop(replica_id)
