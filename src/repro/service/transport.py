"""Transports for the quorum-replicated key-value service.

Two implementations of one abstraction:

* :class:`InProcessTransport` — replicas live in the same process; message
  latencies are *virtual* milliseconds drawn from a seeded RNG and crash
  injection reuses the paper's iid model via
  :func:`repro.sim.failures.sample_iid_crash_set`.  Nothing ever sleeps
  real time (awaits are ``sleep(0)`` yields), so a fixed seed produces a
  bit-identical run — timeouts included, because a request "times out"
  exactly when its sampled latency exceeds the deadline.
* :class:`TcpTransport` — real sockets speaking JSON lines (one request
  dict per line, one response dict per line) against replica servers
  started with :func:`start_tcp_replicas`; latencies are wall-clock.
  Requests are *pipelined*: frames carry a correlation ``id`` the server
  echoes back, a per-connection reader task resolves replies to futures
  in arrival order, and writes are flushed in batches — N concurrent
  calls to one replica take one round trip each instead of N serialised
  round trips.  :class:`SerializedTcpTransport` preserves the old
  lock-per-replica client as the benchmark baseline.

Both report per-message latency in the reply so the coordinator can
aggregate operation latency the same way regardless of transport.
"""

from __future__ import annotations

import asyncio
import json
import struct
import time
from abc import ABC, abstractmethod
from typing import Any, Dict, Iterable, List, Mapping, NamedTuple, Optional, Tuple

import numpy as np

from ..core.errors import (
    ReplicaUnavailable,
    RequestTimeout,
    ServiceError,
    TransportError,
)
from ..runtime.faults import sample_iid_crash_set
from . import wire
from .replica import Replica

# The transport error taxonomy lives in :mod:`repro.core.errors`
# (shared with the rest of the library); re-exported here because this
# module is where callers have always imported it from.
__all__ = [
    "DEFAULT_TIMEOUT_MS",
    "TransportError",
    "ReplicaUnavailable",
    "RequestTimeout",
    "Reply",
    "Transport",
    "InProcessTransport",
    "TcpTransport",
    "BinaryTcpTransport",
    "SerializedTcpTransport",
    "start_tcp_replicas",
]

#: Default per-request deadline (milliseconds, virtual or wall-clock).
DEFAULT_TIMEOUT_MS = 50.0


class Reply(NamedTuple):
    """A replica response plus the observed message latency (ms)."""

    payload: Dict[str, Any]
    latency: float


class Transport(ABC):
    """Request/response channel from a coordinator to replicas."""

    @abstractmethod
    async def call(
        self,
        replica_id: int,
        request: Dict[str, Any],
        timeout: float = DEFAULT_TIMEOUT_MS,
    ) -> Reply:
        """Send one request; raise :class:`ReplicaUnavailable` /
        :class:`RequestTimeout` on failure."""

    async def pause(self, delay_ms: float) -> None:
        """Backoff hook: sleep ``delay_ms`` of transport time.

        Real transports sleep wall-clock; the in-process transport only
        *accounts* the delay (the coordinator adds it to operation
        latency), keeping benchmark runs instantaneous and deterministic.
        """
        await asyncio.sleep(delay_ms / 1000.0)

    async def close(self) -> None:
        """Release sockets/resources; idempotent."""


class InProcessTransport(Transport):
    """Deterministic in-process transport with latency and crash injection.

    Parameters
    ----------
    replicas:
        The replicas, one per universe element (list or {id: replica}).
    seed:
        Seed for the transport RNG (latencies and crash epochs).
    base_latency, mean_latency:
        Message latency (virtual ms) is ``base + Exp(mean)`` per call.
    crash_rate:
        The paper's iid crash probability ``p`` used by
        :meth:`resample_crashes`; each epoch resample draws every
        replica down independently with probability ``p``.
    """

    def __init__(
        self,
        replicas: Iterable[Replica],
        *,
        seed: int = 0,
        base_latency: float = 1.0,
        mean_latency: float = 4.0,
        crash_rate: float = 0.0,
    ) -> None:
        if isinstance(replicas, Mapping):
            self.replicas: Dict[int, Replica] = dict(replicas)
        else:
            self.replicas = {r.replica_id: r for r in replicas}
        if not self.replicas:
            raise ServiceError("transport needs at least one replica")
        if not 0.0 <= crash_rate <= 1.0:
            raise ServiceError(f"crash rate must be in [0,1], got {crash_rate}")
        if base_latency < 0 or mean_latency < 0:
            raise ServiceError("latencies must be non-negative")
        self.rng = np.random.default_rng(seed)
        self.base_latency = base_latency
        self.mean_latency = mean_latency
        self.crash_rate = crash_rate
        self.down: frozenset = frozenset()
        self.epochs = 0
        self.calls = 0

    # ------------------------------------------------------------------
    # Crash injection
    # ------------------------------------------------------------------
    def crash(self, *replica_ids: int) -> None:
        """Mark replicas as crashed (targeted injection, e.g. in tests)."""
        self.down = self.down | frozenset(replica_ids)

    def recover(self, *replica_ids: int) -> None:
        """Bring replicas back; with no arguments, recover everyone."""
        if not replica_ids:
            self.down = frozenset()
        else:
            self.down = self.down - frozenset(replica_ids)

    def resample_crashes(self) -> frozenset:
        """Start a new crash epoch: replica ``i`` down iid w.p. ``crash_rate``.

        The same model (and helper) as the runtime fault schedule's
        :func:`~repro.runtime.faults.iid_crash_schedule`, so measured
        service availability converges to the analytic ``F_p``.
        """
        self.down = sample_iid_crash_set(
            self.rng, sorted(self.replicas), self.crash_rate
        )
        self.epochs += 1
        return self.down

    # ------------------------------------------------------------------
    async def call(
        self,
        replica_id: int,
        request: Dict[str, Any],
        timeout: float = DEFAULT_TIMEOUT_MS,
    ) -> Reply:
        replica = self.replicas.get(replica_id)
        if replica is None:
            raise ServiceError(f"unknown replica id {replica_id}")
        self.calls += 1
        # Draw the round-trip latency unconditionally so the RNG stream
        # does not depend on the current crash set.
        latency = self.base_latency + float(self.rng.exponential(self.mean_latency))
        if replica_id in self.down:
            # A crashed replica never answers: the caller burns the full
            # deadline discovering it.
            raise ReplicaUnavailable(replica_id, latency=timeout)
        if latency > timeout:
            raise RequestTimeout(replica_id, latency=timeout)
        await asyncio.sleep(0)  # cooperative yield; keeps fan-out interleaved
        return Reply(replica.handle(request), latency)

    async def pause(self, delay_ms: float) -> None:
        # Virtual time only: the coordinator accounts the delay itself.
        await asyncio.sleep(0)


# ----------------------------------------------------------------------
# TCP / JSON-lines
# ----------------------------------------------------------------------

#: Hard cap on one JSON line on the wire (values are small in this demo).
MAX_LINE_BYTES = 1 << 20

#: Correlation-id key a pipelined client tags requests with; the server
#: echoes it back verbatim so replies can arrive in any order.
RPC_ID_KEY = "id"

#: Socket read size for the batched reader loops.  One ``read()`` pulls
#: every frame the peer has sent so far, so a pipelined burst of N
#: requests costs one wakeup instead of N ``readline()`` wakeups.
RECV_CHUNK_BYTES = 1 << 16

#: Compact JSON encoding for the wire (no spaces after separators).
_WIRE_SEPARATORS = (",", ":")

#: First byte of every binary v2 frame (high byte of the magic, "Q") —
#: what the replica server sniffs to pick a protocol per connection.
_BINARY_FIRST_BYTE = wire.MAGIC >> 8

#: HELLO body: (min_version, max_version) supported by the peer.
_HELLO_BODY = struct.Struct("!BB")

# The hot path (replica servers + pipelined client) encodes with orjson
# when the environment has it; stdlib json is the drop-in fallback.  The
# wire format is identical either way.  SerializedTcpTransport keeps
# stdlib json on purpose: it is the preserved pre-overhaul baseline.
try:
    import orjson as _orjson
except ImportError:  # pragma: no cover - depends on environment
    _orjson = None

if _orjson is not None:
    _wire_encode = _orjson.dumps
    _wire_decode = _orjson.loads
else:  # pragma: no cover - depends on environment

    def _wire_encode(obj: Any) -> bytes:
        return json.dumps(obj, separators=_WIRE_SEPARATORS).encode()

    _wire_decode = json.loads


class _ReplicaProtocol(asyncio.Protocol):
    """One replica-server connection: sniff the protocol, serve it
    callback-style.

    Binary v2 frames always start with the magic byte ``0x51`` ("Q"); a
    JSON-lines request always starts with ``{``.  Sniffing the first
    byte of the connection lets both protocols share one port, so the
    pre-existing JSON transports keep working against upgraded servers
    with no flag day.

    The handler runs directly on transport callbacks — no per-connection
    ``StreamReader`` task — so a pipelined burst of N requests costs one
    ``data_received``, one batch apply, and one write, with no task
    switch in between.

    Binary semantics: each incoming frame is a coalesced batch of
    requests; the whole batch goes through
    :meth:`Replica.handle_batch` and comes back as one reply burst —
    one ``write`` per ``data_received``.  The first frame must be a
    HELLO; the reply HELLO's header carries the negotiated version
    (0 = no overlap, then hang up).  Any codec violation (bad magic,
    oversized frame, truncated message) tears the connection down —
    there is no resync inside a byte stream; the client reconnects.
    """

    __slots__ = ("replica", "transport", "mode", "buffer", "decoder", "version")

    _MODE_SNIFF = 0
    _MODE_BINARY = 1
    _MODE_JSON = 2

    def __init__(self, replica: Replica) -> None:
        self.replica = replica
        self.transport: Optional[asyncio.Transport] = None
        self.mode = self._MODE_SNIFF
        self.buffer = b""
        self.decoder: Optional[wire.FrameDecoder] = None
        self.version = 0

    def connection_made(self, transport: asyncio.BaseTransport) -> None:
        self.transport = transport

    def connection_lost(self, exc: Optional[BaseException]) -> None:
        self.transport = None

    # Flow control: when the peer stops reading our replies, stop
    # reading its requests instead of buffering replies unboundedly —
    # the callback analogue of the old ``await writer.drain()``.
    def pause_writing(self) -> None:
        if self.transport is not None:
            self.transport.pause_reading()

    def resume_writing(self) -> None:
        if self.transport is not None:
            self.transport.resume_reading()

    def _hang_up(self) -> None:
        transport, self.transport = self.transport, None
        if transport is not None:
            transport.close()

    def data_received(self, data: bytes) -> None:
        if self.transport is None:  # already hung up; late bytes in flight
            return
        mode = self.mode
        if mode == self._MODE_BINARY:
            self._binary_data(data)
        elif mode == self._MODE_JSON:
            self._json_data(data)
        elif data[0] == _BINARY_FIRST_BYTE:
            self.mode = self._MODE_BINARY
            self.decoder = wire.FrameDecoder()
            self._binary_data(data)
        else:
            self.mode = self._MODE_JSON
            self._json_data(data)

    def _binary_data(self, data: bytes) -> None:
        try:
            frames = self.decoder.feed(data)
        except wire.WireError:
            self._hang_up()
            return
        if not frames:
            return
        out: List[bytes] = []
        replica = self.replica
        for frame_version, flags, count, body in frames:
            if flags & wire.FLAG_HELLO:
                try:
                    client_min, client_max = _HELLO_BODY.unpack(bytes(body))
                except struct.error:
                    self._hang_up()
                    return
                self.version = wire.negotiate(client_min, client_max)
                out.append(wire.hello_frame(version=self.version))
                if self.version == 0:
                    self.transport.write(b"".join(out))
                    self._hang_up()
                    return
                continue
            if self.version == 0:
                self._hang_up()  # protocol violation: data before HELLO
                return
            try:
                offset = 0
                requests = []
                rpc_ids = []
                for _ in range(count):
                    rpc_id, request, offset = wire.decode_request(body, offset)
                    rpc_ids.append(rpc_id)
                    requests.append(request)
                responses = replica.handle_batch(requests)
                out.extend(
                    wire.pack_frames(
                        map(wire.encode_response, rpc_ids, responses),
                        version=self.version,
                    )
                )
            except wire.WireError:
                self._hang_up()
                return
        if out and self.transport is not None:
            self.transport.write(b"".join(out))

    def _json_data(self, data: bytes) -> None:
        buffer = self.buffer + data if self.buffer else data
        if b"\n" not in data:
            if len(buffer) > MAX_LINE_BYTES:
                self._hang_up()  # oversized frame with no delimiter: hang up
                return
            self.buffer = buffer
            return
        # Handle every complete line in the burst, answer with one
        # batched write: a pipelined client's fan-in costs one
        # syscall here instead of one per request.
        *lines, rest = buffer.split(b"\n")
        self.buffer = rest
        out: List[bytes] = []
        handle = self.replica.handle
        for line in lines:
            if not line:
                continue
            rpc_id = None
            try:
                request = _wire_decode(line)
            except ValueError as exc:
                response = {"ok": False, "error": f"bad json: {exc}"}
            else:
                if isinstance(request, dict):
                    rpc_id = request.pop(RPC_ID_KEY, None)
                response = handle(request)
            if rpc_id is not None:
                response = dict(response)
                response[RPC_ID_KEY] = rpc_id
            out.append(_wire_encode(response))
        if out and self.transport is not None:
            self.transport.write(b"\n".join(out) + b"\n")


async def start_tcp_replicas(
    replicas: Iterable[Replica],
    host: str = "127.0.0.1",
    base_port: int = 0,
    workers: int = 0,
):
    """Start one dual-protocol (binary v2 + JSON lines) server per replica.

    With ``base_port > 0`` replica ``i`` listens on ``base_port + i``;
    with ``base_port == 0`` the OS assigns ephemeral ports.  Returns the
    server objects (close them to "crash" a replica) and the
    ``{replica_id: (host, port)}`` address map any TCP transport
    consumes.

    With ``workers > 0`` the replicas are instead hosted by a
    :class:`~repro.service.cluster.ReplicaCluster` of that many OS
    processes (one event loop each, replicas assigned round-robin) and
    the first element of the return value is the started cluster —
    ``close()`` it instead of closing servers.  The worker processes
    build their *own* fresh ``Replica`` state for the given ids; the
    passed objects only contribute their ``replica_id``.  Prefer
    constructing the cluster before entering the event loop when you
    can; this path exists for loop-bound callers (e.g. ``quorumtool
    serve --workers``).
    """
    if workers > 0:
        from .cluster import ReplicaCluster

        cluster = ReplicaCluster(
            [replica.replica_id for replica in replicas],
            workers=workers,
            host=host,
            base_port=base_port,
        )
        loop = asyncio.get_running_loop()
        addresses = await loop.run_in_executor(None, cluster.start)
        return cluster, addresses
    loop = asyncio.get_running_loop()
    servers: List[asyncio.base_events.Server] = []
    addresses: Dict[int, Tuple[str, int]] = {}
    for replica in replicas:
        port = 0 if base_port == 0 else base_port + replica.replica_id
        server = await loop.create_server(
            lambda rep=replica: _ReplicaProtocol(rep),
            host=host,
            port=port,
        )
        bound_port = server.sockets[0].getsockname()[1]
        servers.append(server)
        addresses[replica.replica_id] = (host, bound_port)
    return servers, addresses


class _ChannelClosed(Exception):
    """Internal: the multiplexed connection died under pending requests."""

    def __init__(self, reason: str) -> None:
        self.reason = reason
        super().__init__(reason)


class _Channel:
    """One multiplexed connection: reply futures keyed by correlation id,
    an outbox of frames awaiting the next batched flush, and the reader
    task that dispatches incoming replies."""

    __slots__ = (
        "reader",
        "writer",
        "pending",
        "next_id",
        "outbox",
        "flush_task",
        "reader_task",
        "closed",
    )

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.reader = reader
        self.writer = writer
        self.pending: Dict[int, asyncio.Future] = {}
        self.next_id = 0
        self.outbox: List[bytes] = []
        self.flush_task: Optional[asyncio.Task] = None
        self.reader_task: Optional[asyncio.Task] = None
        self.closed = False


class TcpTransport(Transport):
    """Pipelined JSON-lines client: one persistent connection per replica,
    multiplexed by correlation id.

    Every request frame carries an ``id``; the replica server echoes it
    back, so N concurrent calls to one replica are all in flight at once
    and each costs one round trip instead of N serialised round trips
    (:class:`SerializedTcpTransport` keeps the old lock-per-replica
    behaviour for comparison).  A per-channel reader task dispatches
    replies to per-request futures in whatever order they arrive; writes
    are buffered in an outbox and flushed in batches (one ``write`` +
    ``drain`` per event-loop burst rather than per request).

    Failure semantics mirror the serialized transport: a request that
    fails because the *cached* channel died (peer restarted or closed the
    socket between calls) is retried once on a fresh connection — the
    ``reconnects`` counter tracks exactly those — while a fresh
    connection that fails surfaces :class:`ReplicaUnavailable`
    immediately.  A channel death fails only the calls pending on that
    channel; calls to other replicas are untouched.  A per-request
    timeout no longer tears the connection down: the late reply, if it
    ever arrives, is dropped by correlation id, and the channel keeps
    serving the other in-flight requests.
    """

    def __init__(self, addresses: Mapping[int, Tuple[str, int]]) -> None:
        if not addresses:
            raise ServiceError("TCP transport needs at least one address")
        self.addresses = dict(addresses)
        self._channels: Dict[int, _Channel] = {}
        self._dial_locks: Dict[int, asyncio.Lock] = {}
        self._ever_dialed: set = set()
        self.reconnects = 0
        self.calls = 0
        self.flushes = 0
        self.bytes_sent = 0
        self.bytes_received = 0

    # ------------------------------------------------------------------
    # Channel lifecycle
    # ------------------------------------------------------------------
    async def _channel_for(self, replica_id: int) -> Tuple[_Channel, bool]:
        """Return ``(channel, reused)``; dial a fresh connection if needed."""
        channel = self._channels.get(replica_id)
        if channel is not None and not channel.closed:
            return channel, True
        lock = self._dial_locks.setdefault(replica_id, asyncio.Lock())
        async with lock:
            channel = self._channels.get(replica_id)
            if channel is not None and not channel.closed:
                return channel, True  # a concurrent caller dialed first
            # One-shot reconnect accounting: dialing a replica whose
            # previous channel died is a reconnect.  The replica leaves
            # the set until the dial succeeds, so a truly unreachable
            # replica is only counted once, like the serialized client.
            if replica_id in self._ever_dialed:
                self._ever_dialed.discard(replica_id)
                self.reconnects += 1
            host, port = self.addresses[replica_id]
            reader, writer = await asyncio.open_connection(
                host, port, limit=MAX_LINE_BYTES
            )
            self._ever_dialed.add(replica_id)
            channel = _Channel(reader, writer)
            channel.reader_task = asyncio.ensure_future(
                self._read_loop(replica_id, channel)
            )
            self._channels[replica_id] = channel
            return channel, False

    async def _read_loop(self, replica_id: int, channel: _Channel) -> None:
        """Dispatch incoming reply frames to their futures until EOF/error.

        Reads in chunks and splits lines itself: a burst of pipelined
        replies is dispatched in one wakeup instead of one ``readline``
        await per frame.
        """
        reason = "closed"
        buffer = b""
        try:
            while True:
                chunk = await channel.reader.read(RECV_CHUNK_BYTES)
                if not chunk:
                    break
                self.bytes_received += len(chunk)
                buffer += chunk
                if b"\n" not in chunk:
                    if len(buffer) > MAX_LINE_BYTES:
                        reason = "oversized response"
                        break
                    continue
                *lines, buffer = buffer.split(b"\n")
                bad = None
                for line in lines:
                    if not line:
                        continue
                    try:
                        payload = _wire_decode(line)
                    except ValueError as exc:
                        bad = f"bad json from replica: {exc}"
                        break
                    rpc_id = None
                    if isinstance(payload, dict):
                        rpc_id = payload.pop(RPC_ID_KEY, None)
                    future = channel.pending.pop(rpc_id, None)
                    if future is not None and not future.done():
                        future.set_result(payload)
                    # Unmatched ids are replies that already timed out: drop.
                if bad is not None:
                    reason = bad
                    break
        except (ConnectionError, OSError, asyncio.IncompleteReadError, ValueError) as exc:
            reason = str(exc) or type(exc).__name__
        except asyncio.CancelledError:
            reason = "transport closed"
        finally:
            self._teardown(replica_id, channel, reason)

    def _teardown(self, replica_id: int, channel: _Channel, reason: str) -> None:
        """Fail every call pending on the channel and drop it."""
        channel.closed = True
        if self._channels.get(replica_id) is channel:
            del self._channels[replica_id]
        failure = _ChannelClosed(reason)
        pending = list(channel.pending.values())
        channel.pending.clear()
        channel.outbox.clear()
        for future in pending:
            if not future.done():
                future.set_exception(failure)
        try:
            channel.writer.close()
        except RuntimeError:  # pragma: no cover - loop already gone
            pass

    # ------------------------------------------------------------------
    # Write batching
    # ------------------------------------------------------------------
    def _enqueue(self, channel: _Channel, frame: bytes) -> None:
        channel.outbox.append(frame)
        if channel.flush_task is None or channel.flush_task.done():
            channel.flush_task = asyncio.ensure_future(self._flush(channel))

    def _expire(self, channel: _Channel, rpc_id: int) -> None:
        """Deadline timer: fail the request's future, keep the channel.

        The reply, if it ever lands, is dropped by correlation id in the
        reader loop — one slow request does not cost a reconnect.
        """
        future = channel.pending.pop(rpc_id, None)
        if future is not None and not future.done():
            future.set_exception(asyncio.TimeoutError())

    async def _flush(self, channel: _Channel) -> None:
        """Drain the outbox: every frame queued while a previous batch was
        draining goes out in one ``write`` call."""
        try:
            while channel.outbox and not channel.closed:
                batch = b"".join(channel.outbox)
                channel.outbox.clear()
                channel.writer.write(batch)
                self.flushes += 1
                await channel.writer.drain()
        except (ConnectionError, OSError):
            pass  # the reader task observes the dead peer and tears down

    # ------------------------------------------------------------------
    async def call(
        self,
        replica_id: int,
        request: Dict[str, Any],
        timeout: float = DEFAULT_TIMEOUT_MS,
    ) -> Reply:
        if replica_id not in self.addresses:
            raise ServiceError(f"unknown replica id {replica_id}")
        start = time.monotonic()
        self.calls += 1
        for retry in (False, True):
            try:
                channel, reused = await self._channel_for(replica_id)
            except (ConnectionError, OSError) as exc:
                elapsed = (time.monotonic() - start) * 1000.0
                raise ReplicaUnavailable(replica_id, latency=elapsed, reason=str(exc))
            rpc_id = channel.next_id
            channel.next_id += 1
            loop = asyncio.get_running_loop()
            future: asyncio.Future = loop.create_future()
            channel.pending[rpc_id] = future
            frame = _wire_encode({**request, RPC_ID_KEY: rpc_id}) + b"\n"
            self.bytes_sent += len(frame)
            self._enqueue(channel, frame)
            # A plain timer beats asyncio.wait_for here: no wrapper task or
            # timeout context per request on the hot path.
            timer = loop.call_later(timeout / 1000.0, self._expire, channel, rpc_id)
            try:
                payload = await future
            except asyncio.TimeoutError:
                raise RequestTimeout(replica_id, latency=timeout)
            except _ChannelClosed as exc:
                # The retry dials a fresh channel; the reconnect itself is
                # counted there (``_ever_dialed``), not here.
                if reused and not retry:
                    continue
                elapsed = (time.monotonic() - start) * 1000.0
                raise ReplicaUnavailable(
                    replica_id, latency=elapsed, reason=exc.reason
                )
            finally:
                timer.cancel()
                channel.pending.pop(rpc_id, None)
            elapsed = (time.monotonic() - start) * 1000.0
            return Reply(payload, elapsed)
        raise ReplicaUnavailable(  # pragma: no cover - loop always returns/raises
            replica_id, latency=(time.monotonic() - start) * 1000.0, reason="closed"
        )

    async def close(self) -> None:
        channels = list(self._channels.items())
        self._channels.clear()
        tasks: List[asyncio.Task] = []
        for _, channel in channels:
            for task in (channel.flush_task, channel.reader_task):
                if task is not None and not task.done():
                    task.cancel()
                    tasks.append(task)
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        for replica_id, channel in channels:
            self._teardown(replica_id, channel, "transport closed")


class _BinCall:
    """One logical RPC in flight on the binary transport."""

    __slots__ = (
        "replica_id",
        "request",
        "timeout",
        "future",
        "start",
        "deadline",
        "reused",
        "retried",
        "rpc_id",
        "timer",
    )

    def __init__(
        self,
        replica_id: int,
        request: Dict[str, Any],
        timeout: float,
        future: asyncio.Future,
        start: float,
    ) -> None:
        self.replica_id = replica_id
        self.request = request
        self.timeout = timeout
        self.future = future
        self.start = start
        self.deadline = start + timeout / 1000.0
        self.reused = False
        self.retried = False
        self.rpc_id = -1
        # Armed only while the call waits in a dial backlog; calls
        # pending on a live channel share the channel's deadline sweep.
        self.timer: Optional[asyncio.TimerHandle] = None


class _BinChannel(asyncio.Protocol):
    """One negotiated binary connection, run directly on transport
    callbacks: pending calls by rpc id, an outbox of encoded messages
    awaiting the next coalesced flush, and a single deadline-sweep timer
    instead of one timer per call.  Replies resolve futures inside
    ``data_received`` — no reader task, no per-reply task switch."""

    __slots__ = (
        "owner",
        "replica_id",
        "state",
        "conn",
        "pending",
        "next_id",
        "outbox",
        "flush_scheduled",
        "closed",
        "version",
        "decoder",
        "sweep_timer",
        "sweep_at",
        "paused",
    )

    def __init__(
        self, owner: "BinaryTcpTransport", replica_id: int, state: "_BinState"
    ) -> None:
        self.owner = owner
        self.replica_id = replica_id
        self.state = state
        self.conn: Optional[asyncio.Transport] = None
        self.pending: Dict[int, _BinCall] = {}
        self.next_id = 0
        self.outbox: List[bytes] = []
        self.flush_scheduled = False
        self.closed = False
        self.version = 0  # 0 until the server's HELLO lands
        self.decoder = wire.FrameDecoder()
        self.sweep_timer: Optional[asyncio.TimerHandle] = None
        self.sweep_at = 0.0
        self.paused = False

    def connection_made(self, transport: asyncio.BaseTransport) -> None:
        self.conn = transport

    def connection_lost(self, exc: Optional[BaseException]) -> None:
        if not self.closed:
            reason = str(exc) if exc else "closed"
            self.owner._teardown(self.state, self, reason)

    def data_received(self, data: bytes) -> None:
        self.owner._on_data(self, data)

    # Flow control: hold the outbox while the socket is backed up; the
    # queued messages go out on resume.
    def pause_writing(self) -> None:
        self.paused = True

    def resume_writing(self) -> None:
        self.paused = False
        if self.outbox and not self.flush_scheduled:
            self.flush_scheduled = True
            self.owner._loop.call_soon(self.owner._flush, self)


class _BinState:
    """Per-replica dial state: the live channel (if any), calls waiting
    for a dial to finish, and the dial task itself."""

    __slots__ = ("channel", "backlog", "dial_task")

    def __init__(self) -> None:
        self.channel: Optional[_BinChannel] = None
        self.backlog: List[_BinCall] = []
        self.dial_task: Optional[asyncio.Task] = None


class BinaryTcpTransport(Transport):
    """Pipelined binary v2 client: struct-packed frames, op coalescing,
    and a task-free hot path end to end.

    Differences from the JSON :class:`TcpTransport` (which is preserved
    unchanged as the baseline):

    * **No per-message JSON.**  Requests and replies are packed with
      :mod:`struct` (:mod:`repro.service.wire`); only values travel as
      JSON blobs, keys and timestamps are length-delimited binary
      fields.
    * **Op coalescing.**  Every logical RPC queued during one flush
      window is packed into a *single* length-prefixed frame; the
      replica server decodes, applies and answers the batch with one
      write.  ``coalesced_ops`` / ``frames_sent`` / ``ops_per_frame`` /
      ``bytes_per_op`` counters expose the packing.  ``coalesce=False``
      degrades to one frame and one write per op, isolating what
      coalescing itself buys in the benchmark matrix.
    * **Task-free hot path.**  :meth:`submit` enqueues a call and
      returns a plain future without creating a task; flushes are
      ``call_soon`` callbacks scheduled at the end of the current
      event-loop iteration (so every op submitted in the iteration
      lands in one frame); replies resolve futures directly inside the
      connection's ``data_received``; and per-call deadline timers are
      replaced by one deadline-sweep timer per channel.  :meth:`call`
      is the ``Transport``-conforming wrapper.
    * **Version negotiation.**  The first frame each way is a HELLO;
      the client pipelines requests behind its HELLO optimistically and
      tears the channel down if the server's negotiated version is
      unsupported.

    Failure semantics match the other TCP clients: a call that dies
    with its *cached* channel is retried once on a fresh connection
    (``reconnects`` counts re-dials), a fresh connection that fails
    surfaces :class:`ReplicaUnavailable`, and a per-request timeout
    drops the late reply by rpc id without costing the channel.
    """

    def __init__(
        self,
        addresses: Mapping[int, Tuple[str, int]],
        *,
        coalesce: bool = True,
    ) -> None:
        if not addresses:
            raise ServiceError("TCP transport needs at least one address")
        self.addresses = dict(addresses)
        self.coalesce = coalesce
        self._states: Dict[int, _BinState] = {}
        self._ever_dialed: set = set()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self.reconnects = 0
        self.calls = 0
        self.flushes = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self.frames_sent = 0
        self.frames_received = 0
        self.coalesced_ops = 0

    # ------------------------------------------------------------------
    # Derived coalescing metrics
    # ------------------------------------------------------------------
    @property
    def ops_per_frame(self) -> float:
        """Mean logical RPCs coalesced into one outbound frame."""
        return self.coalesced_ops / self.frames_sent if self.frames_sent else 0.0

    @property
    def bytes_per_op(self) -> float:
        """Mean wire bytes (both directions) per logical RPC."""
        return (self.bytes_sent + self.bytes_received) / self.calls if self.calls else 0.0

    # ------------------------------------------------------------------
    # Submission fast path
    # ------------------------------------------------------------------
    def submit(
        self,
        replica_id: int,
        request: Dict[str, Any],
        timeout: float = DEFAULT_TIMEOUT_MS,
    ) -> "asyncio.Future[Reply]":
        """Queue one RPC; return a future resolving to :class:`Reply`.

        Synchronous: no coroutine, no task — the caller can fan a whole
        quorum out in a tight loop and ``await asyncio.wait`` on the
        futures.  Must be called from within the running event loop.
        """
        if replica_id not in self.addresses:
            raise ServiceError(f"unknown replica id {replica_id}")
        loop = self._loop
        if loop is None:
            loop = self._loop = asyncio.get_running_loop()
        self.calls += 1
        entry = _BinCall(
            replica_id, request, timeout, loop.create_future(), loop.time()
        )
        state = self._states.get(replica_id)
        if state is None:
            state = self._states[replica_id] = _BinState()
        self._dispatch(state, entry, fresh=False)
        return entry.future

    async def call(
        self,
        replica_id: int,
        request: Dict[str, Any],
        timeout: float = DEFAULT_TIMEOUT_MS,
    ) -> Reply:
        return await self.submit(replica_id, request, timeout)

    # ------------------------------------------------------------------
    # Dispatch / dial
    # ------------------------------------------------------------------
    def _dispatch(self, state: _BinState, entry: _BinCall, *, fresh: bool) -> None:
        channel = state.channel
        if channel is not None and not channel.closed:
            rpc_id = channel.next_id
            channel.next_id = rpc_id + 1
            # Encode before registering: an unencodable request raises
            # out of submit() without leaving a dangling pending entry.
            message = wire.encode_request(rpc_id, entry.request)
            entry.reused = not fresh
            entry.rpc_id = rpc_id
            if entry.timer is not None:  # leftover backlog timer
                entry.timer.cancel()
                entry.timer = None
            channel.pending[rpc_id] = entry
            loop = self._loop
            if channel.sweep_timer is None:
                channel.sweep_at = entry.deadline
                channel.sweep_timer = loop.call_later(
                    max(0.0, entry.deadline - loop.time()), self._sweep, channel
                )
            elif entry.deadline < channel.sweep_at:
                channel.sweep_timer.cancel()
                channel.sweep_at = entry.deadline
                channel.sweep_timer = loop.call_later(
                    max(0.0, entry.deadline - loop.time()), self._sweep, channel
                )
            if not self.coalesce:
                # One frame and one write per logical op — the
                # un-coalesced comparison point for the matrix.
                frame = wire.pack_frame((message,), version=wire.VERSION)
                channel.conn.write(frame)
                self.flushes += 1
                self.frames_sent += 1
                self.coalesced_ops += 1
                self.bytes_sent += len(frame)
                return
            channel.outbox.append(message)
            if not channel.flush_scheduled:
                channel.flush_scheduled = True
                # End-of-iteration callback: every op submitted during
                # this event-loop iteration joins the same frame.
                loop.call_soon(self._flush, channel)
            return
        if entry.timer is None:
            loop = self._loop
            entry.timer = loop.call_later(
                max(0.0, entry.deadline - loop.time()), self._expire, entry
            )
        state.backlog.append(entry)
        if state.dial_task is None or state.dial_task.done():
            state.dial_task = asyncio.ensure_future(
                self._dial(entry.replica_id, state)
            )

    async def _dial(self, replica_id: int, state: _BinState) -> None:
        # One-shot reconnect accounting, same convention as TcpTransport:
        # re-dialing a replica whose previous channel died counts once.
        if replica_id in self._ever_dialed:
            self._ever_dialed.discard(replica_id)
            self.reconnects += 1
        host, port = self.addresses[replica_id]
        channel = _BinChannel(self, replica_id, state)
        try:
            await self._loop.create_connection(lambda: channel, host, port)
        except (ConnectionError, OSError) as exc:
            backlog, state.backlog = state.backlog, []
            for entry in backlog:
                self._fail(entry, str(exc))
            return
        self._ever_dialed.add(replica_id)
        state.channel = channel
        # HELLO goes out first; requests pipeline behind it optimistically
        # and die with the channel if the server rejects the version.
        hello = wire.hello_frame()
        channel.conn.write(hello)
        self.bytes_sent += len(hello)
        backlog, state.backlog = state.backlog, []
        for entry in backlog:
            if not entry.future.done():
                self._dispatch(state, entry, fresh=True)

    def _fail(self, entry: _BinCall, reason: str) -> None:
        if entry.timer is not None:
            entry.timer.cancel()
            entry.timer = None
        if not entry.future.done():
            elapsed = (self._loop.time() - entry.start) * 1000.0
            entry.future.set_exception(
                ReplicaUnavailable(entry.replica_id, latency=elapsed, reason=reason)
            )

    def _expire(self, entry: _BinCall) -> None:
        """Backlog deadline timer: the dial did not finish in time."""
        entry.timer = None
        if not entry.future.done():
            entry.future.set_exception(
                RequestTimeout(entry.replica_id, latency=entry.timeout)
            )

    def _sweep(self, channel: _BinChannel) -> None:
        """Channel deadline sweep: one timer for every pending call.

        Fires at the earliest pending deadline, fails whatever expired,
        re-arms at the next one.  Completed calls leave ``pending``
        immediately, so in the common case the sweep wakes rarely and
        finds nothing — versus one ``call_later`` + ``cancel`` per RPC.
        The late reply (if any) is dropped by rpc id in ``_on_data``.
        """
        channel.sweep_timer = None
        if channel.closed:
            return
        loop = self._loop
        now = loop.time()
        expired: List[_BinCall] = []
        next_deadline = 0.0
        for entry in channel.pending.values():
            if entry.deadline <= now:
                expired.append(entry)
            elif not next_deadline or entry.deadline < next_deadline:
                next_deadline = entry.deadline
        for entry in expired:
            channel.pending.pop(entry.rpc_id, None)
            if not entry.future.done():
                entry.future.set_exception(
                    RequestTimeout(entry.replica_id, latency=entry.timeout)
                )
        if next_deadline:
            channel.sweep_at = next_deadline
            channel.sweep_timer = loop.call_later(
                next_deadline - now, self._sweep, channel
            )

    # ------------------------------------------------------------------
    # Flush / receive
    # ------------------------------------------------------------------
    def _flush(self, channel: _BinChannel) -> None:
        """Pack the outbox into coalesced frames, one write per burst.

        Runs as a plain ``call_soon`` callback at the end of the loop
        iteration that queued the first message — no flush task, and
        every concurrent submitter in that iteration shares the frame.
        """
        channel.flush_scheduled = False
        if channel.closed or channel.paused:
            return
        messages = channel.outbox
        if not messages:
            return
        channel.outbox = []
        frames = wire.pack_frames(messages, version=wire.VERSION)
        data = frames[0] if len(frames) == 1 else b"".join(frames)
        channel.conn.write(data)
        self.flushes += 1
        self.frames_sent += len(frames)
        self.coalesced_ops += len(messages)
        self.bytes_sent += len(data)

    def _on_data(self, channel: _BinChannel, data: bytes) -> None:
        """Connection callback: decode reply frames, resolve futures."""
        self.bytes_received += len(data)
        try:
            frames = channel.decoder.feed(data)
        except wire.WireError as exc:
            self._teardown(channel.state, channel, str(exc))
            return
        loop = self._loop
        pending = channel.pending
        for version, flags, count, body in frames:
            if flags & wire.FLAG_HELLO:
                if not wire.MIN_VERSION <= version <= wire.VERSION:
                    self._teardown(
                        channel.state,
                        channel,
                        f"server rejected protocol (version {version})",
                    )
                    return
                channel.version = version
                continue
            self.frames_received += 1
            offset = 0
            try:
                for _ in range(count):
                    rpc_id, payload, offset = wire.decode_response(body, offset)
                    entry = pending.pop(rpc_id, None)
                    # Unmatched ids are replies that already timed out: drop.
                    if entry is None:
                        continue
                    if not entry.future.done():
                        entry.future.set_result(
                            Reply(payload, (loop.time() - entry.start) * 1000.0)
                        )
            except wire.WireError as exc:
                self._teardown(channel.state, channel, str(exc))
                return

    def _teardown(
        self,
        state: _BinState,
        channel: _BinChannel,
        reason: str,
        *,
        allow_retry: bool = True,
    ) -> None:
        """Fail or re-queue every call pending on a dead channel.

        Calls that were riding a *cached* channel get their one retry: a
        fresh dial is kicked off and they go out again with new rpc ids.
        Everything else fails with :class:`ReplicaUnavailable`.
        """
        if channel.closed:
            return
        channel.closed = True
        if channel.sweep_timer is not None:
            channel.sweep_timer.cancel()
            channel.sweep_timer = None
        if state.channel is channel:
            state.channel = None
        pending = list(channel.pending.values())
        channel.pending.clear()
        channel.outbox.clear()
        retry: List[_BinCall] = []
        for entry in pending:
            if entry.future.done():
                continue
            if allow_retry and entry.reused and not entry.retried:
                entry.retried = True
                retry.append(entry)
            else:
                self._fail(entry, reason)
        if retry:
            state.backlog.extend(retry)
            if state.dial_task is None or state.dial_task.done():
                state.dial_task = asyncio.ensure_future(
                    self._dial(retry[0].replica_id, state)
                )
        conn = channel.conn
        if conn is not None:
            try:
                conn.close()
            except RuntimeError:  # pragma: no cover - loop already gone
                pass

    async def close(self) -> None:
        states = list(self._states.values())
        self._states.clear()
        tasks = [
            state.dial_task
            for state in states
            if state.dial_task is not None and not state.dial_task.done()
        ]
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        for state in states:
            backlog, state.backlog = state.backlog, []
            for entry in backlog:
                self._fail(entry, "transport closed")
            if state.channel is not None:
                self._teardown(
                    state, state.channel, "transport closed", allow_retry=False
                )


class SerializedTcpTransport(Transport):
    """The pre-pipelining JSON-lines client: one persistent connection per
    replica, serialised per replica with a lock (concurrency only across
    replicas).

    Kept as the baseline for the serving-throughput benchmark — N
    concurrent client operations against one replica cost N serialised
    round trips here versus one round trip each on the pipelined
    :class:`TcpTransport`.  Reconnect semantics are identical: a request
    that fails because the *cached* connection died is retried once on a
    fresh connection (``reconnects`` counts those); a fresh connection
    that fails surfaces :class:`ReplicaUnavailable` immediately.
    """

    def __init__(self, addresses: Mapping[int, Tuple[str, int]]) -> None:
        if not addresses:
            raise ServiceError("TCP transport needs at least one address")
        self.addresses = dict(addresses)
        self._connections: Dict[int, Tuple[asyncio.StreamReader, asyncio.StreamWriter]] = {}
        self._locks: Dict[int, asyncio.Lock] = {}
        self.reconnects = 0
        self.calls = 0
        self.bytes_sent = 0
        self.bytes_received = 0

    def _lock_for(self, replica_id: int) -> asyncio.Lock:
        if replica_id not in self._locks:
            self._locks[replica_id] = asyncio.Lock()
        return self._locks[replica_id]

    async def _connection(
        self, replica_id: int
    ) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter, bool]:
        """Return ``(reader, writer, reused)`` for the replica's channel."""
        cached = self._connections.get(replica_id)
        if cached is not None and not cached[1].is_closing():
            return cached[0], cached[1], True
        host, port = self.addresses[replica_id]
        reader, writer = await asyncio.open_connection(
            host, port, limit=MAX_LINE_BYTES
        )
        self._connections[replica_id] = (reader, writer)
        return reader, writer, False

    async def call(
        self,
        replica_id: int,
        request: Dict[str, Any],
        timeout: float = DEFAULT_TIMEOUT_MS,
    ) -> Reply:
        if replica_id not in self.addresses:
            raise ServiceError(f"unknown replica id {replica_id}")
        start = time.monotonic()
        self.calls += 1
        payload = json.dumps(request).encode() + b"\n"
        async with self._lock_for(replica_id):
            for retry in (False, True):
                reused = False
                try:
                    reader, writer, reused = await self._connection(replica_id)
                    writer.write(payload)
                    self.bytes_sent += len(payload)
                    await writer.drain()
                    line = await asyncio.wait_for(
                        reader.readline(), timeout=timeout / 1000.0
                    )
                except asyncio.TimeoutError:
                    self._drop(replica_id)
                    raise RequestTimeout(replica_id, latency=timeout)
                except (ConnectionError, OSError) as exc:
                    self._drop(replica_id)
                    if reused and not retry:
                        self.reconnects += 1
                        continue
                    elapsed = (time.monotonic() - start) * 1000.0
                    raise ReplicaUnavailable(replica_id, latency=elapsed, reason=str(exc))
                if not line:
                    # EOF: the peer closed the stream.  On a reused
                    # connection that just means our cached socket went
                    # stale — reconnect and retry once.
                    self._drop(replica_id)
                    if reused and not retry:
                        self.reconnects += 1
                        continue
                    elapsed = (time.monotonic() - start) * 1000.0
                    raise ReplicaUnavailable(replica_id, latency=elapsed, reason="closed")
                if len(line) > MAX_LINE_BYTES:
                    raise ServiceError(f"oversized response from replica {replica_id}")
                self.bytes_received += len(line)
                elapsed = (time.monotonic() - start) * 1000.0
                return Reply(json.loads(line), elapsed)
        raise ReplicaUnavailable(  # pragma: no cover - loop always returns/raises
            replica_id, latency=(time.monotonic() - start) * 1000.0, reason="closed"
        )

    def _drop(self, replica_id: int) -> None:
        cached = self._connections.pop(replica_id, None)
        if cached is not None:
            cached[1].close()

    async def close(self) -> None:
        for replica_id in list(self._connections):
            self._drop(replica_id)
