"""Transports for the quorum-replicated key-value service.

Two implementations of one abstraction:

* :class:`InProcessTransport` — replicas live in the same process; message
  latencies are *virtual* milliseconds drawn from a seeded RNG and crash
  injection reuses the paper's iid model via
  :func:`repro.sim.failures.sample_iid_crash_set`.  Nothing ever sleeps
  real time (awaits are ``sleep(0)`` yields), so a fixed seed produces a
  bit-identical run — timeouts included, because a request "times out"
  exactly when its sampled latency exceeds the deadline.
* :class:`TcpTransport` — real sockets speaking JSON lines (one request
  dict per line, one response dict per line) against replica servers
  started with :func:`start_tcp_replicas`; latencies are wall-clock.

Both report per-message latency in the reply so the coordinator can
aggregate operation latency the same way regardless of transport.
"""

from __future__ import annotations

import asyncio
import json
import time
from abc import ABC, abstractmethod
from typing import Any, Dict, Iterable, List, Mapping, NamedTuple, Optional, Tuple

import numpy as np

from ..core.errors import ServiceError
from ..sim.failures import sample_iid_crash_set
from .replica import Replica

#: Default per-request deadline (milliseconds, virtual or wall-clock).
DEFAULT_TIMEOUT_MS = 50.0


class ReplicaUnavailable(ServiceError):
    """The target replica is crashed or unreachable.

    ``latency`` is the time (ms) the caller spent learning that, so the
    coordinator can account failed probes into operation latency.
    """

    def __init__(self, replica_id: int, latency: float, reason: str = "down") -> None:
        self.replica_id = replica_id
        self.latency = latency
        super().__init__(f"replica {replica_id} unavailable ({reason})")


class RequestTimeout(ServiceError):
    """A request missed its deadline; ``latency`` equals the deadline."""

    def __init__(self, replica_id: int, latency: float) -> None:
        self.replica_id = replica_id
        self.latency = latency
        super().__init__(f"request to replica {replica_id} timed out after {latency:g}ms")


class Reply(NamedTuple):
    """A replica response plus the observed message latency (ms)."""

    payload: Dict[str, Any]
    latency: float


class Transport(ABC):
    """Request/response channel from a coordinator to replicas."""

    @abstractmethod
    async def call(
        self,
        replica_id: int,
        request: Dict[str, Any],
        timeout: float = DEFAULT_TIMEOUT_MS,
    ) -> Reply:
        """Send one request; raise :class:`ReplicaUnavailable` /
        :class:`RequestTimeout` on failure."""

    async def pause(self, delay_ms: float) -> None:
        """Backoff hook: sleep ``delay_ms`` of transport time.

        Real transports sleep wall-clock; the in-process transport only
        *accounts* the delay (the coordinator adds it to operation
        latency), keeping benchmark runs instantaneous and deterministic.
        """
        await asyncio.sleep(delay_ms / 1000.0)

    async def close(self) -> None:
        """Release sockets/resources; idempotent."""


class InProcessTransport(Transport):
    """Deterministic in-process transport with latency and crash injection.

    Parameters
    ----------
    replicas:
        The replicas, one per universe element (list or {id: replica}).
    seed:
        Seed for the transport RNG (latencies and crash epochs).
    base_latency, mean_latency:
        Message latency (virtual ms) is ``base + Exp(mean)`` per call.
    crash_rate:
        The paper's iid crash probability ``p`` used by
        :meth:`resample_crashes`; each epoch resample draws every
        replica down independently with probability ``p``.
    """

    def __init__(
        self,
        replicas: Iterable[Replica],
        *,
        seed: int = 0,
        base_latency: float = 1.0,
        mean_latency: float = 4.0,
        crash_rate: float = 0.0,
    ) -> None:
        if isinstance(replicas, Mapping):
            self.replicas: Dict[int, Replica] = dict(replicas)
        else:
            self.replicas = {r.replica_id: r for r in replicas}
        if not self.replicas:
            raise ServiceError("transport needs at least one replica")
        if not 0.0 <= crash_rate <= 1.0:
            raise ServiceError(f"crash rate must be in [0,1], got {crash_rate}")
        if base_latency < 0 or mean_latency < 0:
            raise ServiceError("latencies must be non-negative")
        self.rng = np.random.default_rng(seed)
        self.base_latency = base_latency
        self.mean_latency = mean_latency
        self.crash_rate = crash_rate
        self.down: frozenset = frozenset()
        self.epochs = 0
        self.calls = 0

    # ------------------------------------------------------------------
    # Crash injection
    # ------------------------------------------------------------------
    def crash(self, *replica_ids: int) -> None:
        """Mark replicas as crashed (targeted injection, e.g. in tests)."""
        self.down = self.down | frozenset(replica_ids)

    def recover(self, *replica_ids: int) -> None:
        """Bring replicas back; with no arguments, recover everyone."""
        if not replica_ids:
            self.down = frozenset()
        else:
            self.down = self.down - frozenset(replica_ids)

    def resample_crashes(self) -> frozenset:
        """Start a new crash epoch: replica ``i`` down iid w.p. ``crash_rate``.

        The same model (and helper) as the simulator's
        :class:`~repro.sim.failures.IidCrashInjector`, so measured
        service availability converges to the analytic ``F_p``.
        """
        self.down = sample_iid_crash_set(
            self.rng, sorted(self.replicas), self.crash_rate
        )
        self.epochs += 1
        return self.down

    # ------------------------------------------------------------------
    async def call(
        self,
        replica_id: int,
        request: Dict[str, Any],
        timeout: float = DEFAULT_TIMEOUT_MS,
    ) -> Reply:
        replica = self.replicas.get(replica_id)
        if replica is None:
            raise ServiceError(f"unknown replica id {replica_id}")
        self.calls += 1
        # Draw the round-trip latency unconditionally so the RNG stream
        # does not depend on the current crash set.
        latency = self.base_latency + float(self.rng.exponential(self.mean_latency))
        if replica_id in self.down:
            # A crashed replica never answers: the caller burns the full
            # deadline discovering it.
            raise ReplicaUnavailable(replica_id, latency=timeout)
        if latency > timeout:
            raise RequestTimeout(replica_id, latency=timeout)
        await asyncio.sleep(0)  # cooperative yield; keeps fan-out interleaved
        return Reply(replica.handle(request), latency)

    async def pause(self, delay_ms: float) -> None:
        # Virtual time only: the coordinator accounts the delay itself.
        await asyncio.sleep(0)


# ----------------------------------------------------------------------
# TCP / JSON-lines
# ----------------------------------------------------------------------

#: Hard cap on one JSON line on the wire (values are small in this demo).
MAX_LINE_BYTES = 1 << 20


async def _serve_connection(
    replica: Replica, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
) -> None:
    try:
        while True:
            line = await reader.readline()
            if not line:
                break
            try:
                request = json.loads(line)
            except json.JSONDecodeError as exc:
                response = {"ok": False, "error": f"bad json: {exc}"}
            else:
                response = replica.handle(request)
            writer.write(json.dumps(response).encode() + b"\n")
            await writer.drain()
    except (ConnectionError, asyncio.IncompleteReadError):
        pass
    except asyncio.CancelledError:
        # Loop shutdown while blocked on readline: finish quietly so the
        # streams machinery does not log the cancellation as an error.
        pass
    finally:
        writer.close()


async def start_tcp_replicas(
    replicas: Iterable[Replica],
    host: str = "127.0.0.1",
    base_port: int = 0,
) -> Tuple[List[asyncio.base_events.Server], Dict[int, Tuple[str, int]]]:
    """Start one JSON-lines server per replica.

    With ``base_port > 0`` replica ``i`` listens on ``base_port + i``;
    with ``base_port == 0`` the OS assigns ephemeral ports.  Returns the
    server objects (close them to "crash" a replica) and the
    ``{replica_id: (host, port)}`` address map a :class:`TcpTransport`
    consumes.
    """
    servers: List[asyncio.base_events.Server] = []
    addresses: Dict[int, Tuple[str, int]] = {}
    for replica in replicas:
        port = 0 if base_port == 0 else base_port + replica.replica_id
        server = await asyncio.start_server(
            lambda r, w, rep=replica: _serve_connection(rep, r, w),
            host=host,
            port=port,
        )
        bound_port = server.sockets[0].getsockname()[1]
        servers.append(server)
        addresses[replica.replica_id] = (host, bound_port)
    return servers, addresses


class TcpTransport(Transport):
    """JSON-lines client over real sockets, one persistent connection per
    replica (serialised per replica with a lock; concurrency happens
    across replicas, which is what quorum fan-out needs).

    A request that fails because the *cached* persistent connection died
    (the peer restarted or closed the socket between calls) is retried
    once on a fresh connection before :class:`ReplicaUnavailable`
    surfaces; the dict protocol is idempotent (writes are ordered by
    timestamp), so the possible duplicate delivery is harmless.  A fresh
    connection that fails is reported immediately — the replica really is
    unreachable.
    """

    def __init__(self, addresses: Mapping[int, Tuple[str, int]]) -> None:
        if not addresses:
            raise ServiceError("TCP transport needs at least one address")
        self.addresses = dict(addresses)
        self._connections: Dict[int, Tuple[asyncio.StreamReader, asyncio.StreamWriter]] = {}
        self._locks: Dict[int, asyncio.Lock] = {}
        self.reconnects = 0

    def _lock_for(self, replica_id: int) -> asyncio.Lock:
        if replica_id not in self._locks:
            self._locks[replica_id] = asyncio.Lock()
        return self._locks[replica_id]

    async def _connection(
        self, replica_id: int
    ) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter, bool]:
        """Return ``(reader, writer, reused)`` for the replica's channel."""
        cached = self._connections.get(replica_id)
        if cached is not None and not cached[1].is_closing():
            return cached[0], cached[1], True
        host, port = self.addresses[replica_id]
        reader, writer = await asyncio.open_connection(host, port)
        self._connections[replica_id] = (reader, writer)
        return reader, writer, False

    async def call(
        self,
        replica_id: int,
        request: Dict[str, Any],
        timeout: float = DEFAULT_TIMEOUT_MS,
    ) -> Reply:
        if replica_id not in self.addresses:
            raise ServiceError(f"unknown replica id {replica_id}")
        start = time.monotonic()
        payload = json.dumps(request).encode() + b"\n"
        async with self._lock_for(replica_id):
            for retry in (False, True):
                reused = False
                try:
                    reader, writer, reused = await self._connection(replica_id)
                    writer.write(payload)
                    await writer.drain()
                    line = await asyncio.wait_for(
                        reader.readline(), timeout=timeout / 1000.0
                    )
                except asyncio.TimeoutError:
                    self._drop(replica_id)
                    raise RequestTimeout(replica_id, latency=timeout)
                except (ConnectionError, OSError) as exc:
                    self._drop(replica_id)
                    if reused and not retry:
                        self.reconnects += 1
                        continue
                    elapsed = (time.monotonic() - start) * 1000.0
                    raise ReplicaUnavailable(replica_id, latency=elapsed, reason=str(exc))
                if not line:
                    # EOF: the peer closed the stream.  On a reused
                    # connection that just means our cached socket went
                    # stale — reconnect and retry once.
                    self._drop(replica_id)
                    if reused and not retry:
                        self.reconnects += 1
                        continue
                    elapsed = (time.monotonic() - start) * 1000.0
                    raise ReplicaUnavailable(replica_id, latency=elapsed, reason="closed")
                if len(line) > MAX_LINE_BYTES:
                    raise ServiceError(f"oversized response from replica {replica_id}")
                elapsed = (time.monotonic() - start) * 1000.0
                return Reply(json.loads(line), elapsed)
        raise ReplicaUnavailable(  # pragma: no cover - loop always returns/raises
            replica_id, latency=(time.monotonic() - start) * 1000.0, reason="closed"
        )

    def _drop(self, replica_id: int) -> None:
        cached = self._connections.pop(replica_id, None)
        if cached is not None:
            cached[1].close()

    async def close(self) -> None:
        for replica_id in list(self._connections):
            self._drop(replica_id)
