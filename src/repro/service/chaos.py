"""Compatibility shim: the chaos harness is now the scenario engine.

The randomized-fault chaos runner grew into the declarative scenario
engine at :mod:`repro.scenarios.engine` — one runner shared by
``quorumtool chaos``, the named SRE incident library
(:mod:`repro.scenarios.library`) and the sharded harness's invariant
registry.  Everything this module used to define is re-exported here
unchanged (same classes, same signatures, same seeds → same hashes), so
``from repro.service.chaos import run_chaos`` keeps working.
"""

from __future__ import annotations

from ..scenarios.engine import (  # noqa: F401
    ChaosConfig,
    ChaosReport,
    _digest,
    _plan,
    run_chaos,
)

__all__ = ["ChaosConfig", "ChaosReport", "run_chaos"]
