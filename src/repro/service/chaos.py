"""Chaos harness: randomized fault schedules + safety invariants.

Runs a seeded, bit-reproducible workload against the KV service while a
:class:`~repro.runtime.faults.FaultSchedule` injects crashes, flapping,
asymmetric partitions, latency spikes, and message drop/duplication —
then checks safety invariants over the full operation history:

1. **No acknowledged write lost** — after the run, the newest version
   surviving on *any* replica is at least the newest acknowledged
   timestamp per key (and carries the acknowledged value on equality).
   Guaranteed while quorum intersection holds; broken (and detected) by
   ``unsafe_partial_writes`` split-brain runs.
2. **No stale unflagged read** — a successful quorum read returns a
   timestamp at least as new as every write acknowledged before it
   (operations run sequentially, so this subsumes read-your-writes and
   monotone reads per coordinator).  Opt-in degraded reads are exempt:
   their ``stale=True`` flag is precisely the permission to be stale.
3. **Version integrity** — every version a read returns was actually
   issued by some writer, with the exact value it was issued with
   (catches corruption from duplicated/replayed messages).
4. **Per-replica timestamp monotonicity** — replica journals only ever
   move forward (write idempotence under duplication and handoff replay).

With ``byzantine_liars > 0`` the schedule additionally turns replicas
into lying (Byzantine) faults and three more invariants apply:

5. **No fabricated read** — no successful read (degraded included) ever
   returns a value a liar fabricated.  Holds whenever the coordinators
   run masking reads (``byzantine_b``) with at most ``byzantine_b``
   liars on a b-masking system; the over-budget ``liars = b+1`` run is
   the expected-failure demonstration.
6. **Lie detection is sound** — within the masking budget, every
   replica a coordinator marks as a liar really is one.
7. **Lies feed suspicion** — every caught liar entered the suspicion/
   breaker machinery, so lying replicas are steered away from.

On top, the harness measures availability under the schedule's iid crash
component and compares it against the *exact* failure probability
``F_p`` from :mod:`repro.analysis` — closing the loop between the
paper's §4.3/§6 numbers and served traffic.

Execution substrates (``mode=``)
--------------------------------
``"inprocess"``
    The zero-latency deterministic transport: sampled latencies are
    accounting entries, awaits are cooperative yields.  Fast, the
    historical default.
``"sim"``
    The same unmodified coordinator/replica stack over
    :class:`~repro.service.simtransport.SimTransport` under a
    :class:`~repro.runtime.clock.VirtualTimeLoop`: latencies, timeouts
    and backoffs *elapse* in virtual time, the run is bit-reproducible
    (the report carries trace and metrics hashes to prove it), and a
    whole run costs milliseconds of wall clock.
``"wall"``
    The identical ``SimTransport`` run over a real clock and event loop
    — every sampled latency is really slept.  Same RNG draws, same
    outcomes, same hashes as ``"sim"``; exists as the honest wall-clock
    baseline the ``--sim`` speedup is measured against.

All randomness is drawn from named :class:`~repro.runtime.rng.RngStreams`
(``chaos.transport``, ``chaos.schedule``, ``chaos.plan``,
``chaos.faults.<client>``, ``chaos.coordinator.<client>``,
``chaos.warmup``, ``chaos.byzantine``), so every component owns an
independent stream derived from the one root seed.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..analysis.availability import availability_comparison
from ..core.errors import ServiceError
from ..core.quorum_system import QuorumSystem
from ..core.rwstrategy import PathStrategy
from ..core.strategy import Strategy
from ..runtime.clock import Clock, VirtualClock, WallClock, run_virtual
from ..runtime.rng import RngStreams
from .coordinator import Coordinator, OperationFailed
from .faults import (
    BYZANTINE_MODES,
    ByzantineFault,
    FaultSchedule,
    FaultyTransport,
    Window,
    split_brain_schedule,
)
from .metrics import ServiceMetrics
from .replica import NULL_TIMESTAMP, Replica
from .simtransport import SimTransport
from .transport import InProcessTransport

_TS = Tuple[int, int]

_MODES = ("inprocess", "sim", "wall")


@dataclass
class ChaosConfig:
    """Shape of one chaos run."""

    ops: int = 400
    read_fraction: float = 0.6
    keys: int = 8
    clients: int = 2
    crash_rate: float = 0.15
    epoch: int = 25  # ticks per iid crash epoch
    timeout: float = 50.0
    max_attempts: int = 4
    suspicion_ttl: int = 15
    breaker_threshold: int = 3
    breaker_cooldown: int = 30
    degraded_reads: bool = True
    hinted_handoff: bool = True
    latency_spikes: int = 2
    drops: int = 2
    duplicates: int = 1
    flappers: int = 1
    partitions: int = 1
    hedge_spares: int = 0  # spare replicas per quorum phase (0 = off)
    hedge_delay_ms: float = 0.0  # defer spares this long (0 = upfront)
    unsafe_partial_writes: bool = False  # intentionally breaks intersection
    byzantine_b: int = 0  # masking parameter b: coordinators vote b+1 deep
    byzantine_liars: int = 0  # replicas turned into lying (Byzantine) faults
    byzantine_mode: str = "wrong_value"  # lie flavour, see BYZANTINE_MODES
    lease_ttl: int = 0  # quorum-lease lifetime in ops (0 = leases off)
    read_write: bool = False  # serve reads from the capacity-LP read family

    def validate(self) -> None:
        if self.ops < 1:
            raise ServiceError(f"chaos needs at least one op, got {self.ops}")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ServiceError("read fraction must be in [0,1]")
        if self.keys < 1:
            raise ServiceError("need at least one key")
        if self.clients < 1:
            raise ServiceError("need at least one client")
        if not 0.0 <= self.crash_rate <= 1.0:
            raise ServiceError("crash rate must be in [0,1]")
        if self.epoch < 1:
            raise ServiceError("epoch must be >= 1 tick")
        if self.hedge_spares < 0:
            raise ServiceError("hedge_spares must be >= 0")
        if self.hedge_delay_ms < 0:
            raise ServiceError("hedge_delay_ms must be >= 0")
        if self.unsafe_partial_writes and self.clients < 2:
            raise ServiceError(
                "split-brain demonstration needs at least two clients"
            )
        if self.byzantine_b < 0:
            raise ServiceError("byzantine_b must be >= 0")
        if self.byzantine_liars < 0:
            raise ServiceError("byzantine_liars must be >= 0")
        if self.byzantine_mode not in BYZANTINE_MODES:
            raise ServiceError(
                f"unknown byzantine mode {self.byzantine_mode!r};"
                f" pick one of {BYZANTINE_MODES}"
            )
        if self.lease_ttl < 0:
            raise ServiceError("lease_ttl must be >= 0")


@dataclass
class ChaosReport:
    """Everything one chaos run produced, JSON-exportable and seed-stable."""

    system_name: str
    n: int
    seed: int
    config: ChaosConfig
    schedule: FaultSchedule
    injected: Dict[str, int]
    operations: Dict[str, int]
    availability: Dict[str, float]
    violations: List[Dict[str, Any]] = field(default_factory=list)
    metrics: Optional[ServiceMetrics] = None
    mode: str = "inprocess"
    trace: List[Dict[str, Any]] = field(default_factory=list)
    hashes: Dict[str, str] = field(default_factory=dict)
    byzantine_replicas: List[int] = field(default_factory=list)
    # Wall-clock duration of the run; NOT in to_dict() — the snapshot
    # must stay bit-identical for identical seeds.
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """True when every safety invariant held."""
        return not self.violations

    @property
    def violation_counts(self) -> Dict[str, int]:
        """Violations grouped per invariant (the scorecard histogram)."""
        counts: Dict[str, int] = {}
        for violation in self.violations:
            name = violation.get("invariant", "unknown")
            counts[name] = counts.get(name, 0) + 1
        return dict(sorted(counts.items()))

    def to_dict(self) -> Dict[str, Any]:
        checked = [
            "acked-write-durable",
            "no-stale-unflagged-read",
            "version-integrity",
            "replica-ts-monotone",
        ]
        if self.byzantine_replicas:
            checked += [
                "byzantine-fabricated-read",
                "lie-detection-sound",
                "lie-suspicion-reflected",
            ]
        snapshot: Dict[str, Any] = {
            "system": self.system_name,
            "n": self.n,
            "seed": self.seed,
            "mode": self.mode,
            "config": asdict(self.config),
            "schedule": self.schedule.to_dict(),
            "byzantine_replicas": list(self.byzantine_replicas),
            "faults_injected": dict(sorted(self.injected.items())),
            "operations": dict(sorted(self.operations.items())),
            "availability": dict(sorted(self.availability.items())),
            "hashes": dict(sorted(self.hashes.items())),
            "invariants": {
                "checked": checked,
                "ok": self.ok,
                "violations": self.violations,
                "violation_counts": self.violation_counts,
            },
        }
        if self.metrics is not None:
            snapshot["metrics"] = self.metrics.to_dict()
        return snapshot


def _plan(
    rng: np.random.Generator, config: ChaosConfig
) -> List[Tuple[int, str, str]]:
    """Precomputed ``(client, kind, key)`` sequence, one entry per tick."""
    reads = rng.random(config.ops) < config.read_fraction
    keys = rng.integers(0, config.keys, size=config.ops)
    return [
        (index % config.clients, "read" if is_read else "write", f"k{int(k):03d}")
        for index, (is_read, k) in enumerate(zip(reads, keys))
    ]


def _digest(payload: Any) -> str:
    """Canonical-JSON sha256 of a snapshot (the determinism fingerprint)."""
    encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


def run_chaos(
    system: QuorumSystem,
    *,
    seed: int = 0,
    config: Optional[ChaosConfig] = None,
    schedule: Optional[FaultSchedule] = None,
    strategy: Optional[PathStrategy] = None,
    mode: str = "inprocess",
) -> ChaosReport:
    """Run one seeded chaos scenario and check every safety invariant.

    A caller-provided ``schedule`` overrides the randomized one (the
    config's fault knobs are then ignored); ``unsafe_partial_writes``
    additionally appends a forced split-brain partition and disables the
    coordinators' full-quorum acknowledgement check — the intentionally
    intersection-breaking scenario that must be *detected*.

    ``mode`` selects the execution substrate (see module docstring):
    ``"inprocess"``, ``"sim"`` (virtual time) or ``"wall"`` (real time,
    same draws as ``"sim"``).  The same seed and config produce the same
    schedule and plan in every mode.
    """
    if mode not in _MODES:
        raise ServiceError(f"unknown chaos mode {mode!r}; pick one of {_MODES}")
    if config is None:
        config = ChaosConfig()
    config.validate()
    if strategy is None:
        if config.read_write:
            # Split serving path under faults: reads come from the LP's
            # read-quorum family (small quorums!), writes from the
            # matched write family — the invariants below must hold
            # regardless.  Voted reads need 2b+1-deep intersections, so
            # the LP is constrained accordingly; when no read family is
            # deep enough, read_write_capacity itself falls back to
            # splitting over the write family (unified_read_fallback).
            from ..analysis.capacity import read_write_capacity

            strategy = read_write_capacity(
                system,
                read_fraction=config.read_fraction,
                min_intersection=2 * config.byzantine_b + 1,
            ).strategy
        else:
            from ..analysis.load import optimal_strategy

            strategy = optimal_strategy(system)

    streams = RngStreams(seed)
    ids = sorted(system.universe.ids)
    universe = frozenset(ids)

    # Replica journals for the monotonicity invariant.
    journals: Dict[int, Dict[str, List[_TS]]] = {rid: {} for rid in ids}

    def journal_for(rid: int):
        def on_apply(key: str, counter: int, writer: int) -> None:
            journals[rid].setdefault(key, []).append((counter, writer))

        return on_apply

    replicas = [
        Replica(rid, name=system.universe.name_of(rid), on_apply=journal_for(rid))
        for rid in ids
    ]
    clock: Optional[Clock] = None
    if mode == "inprocess":
        inner: Any = InProcessTransport(
            replicas, seed=streams.seed_for("chaos.transport")
        )
    else:
        clock = VirtualClock() if mode == "sim" else WallClock()
        inner = SimTransport(
            replicas, clock=clock, rng=streams.stream("chaos.transport")
        )

    if schedule is None:
        schedule = FaultSchedule.random(
            streams.stream("chaos.schedule"),
            ids,
            float(config.ops),
            crash_rate=config.crash_rate,
            epoch=float(config.epoch),
            latency_spikes=config.latency_spikes,
            drops=config.drops,
            duplicates=config.duplicates,
            flappers=config.flappers,
            partitions=config.partitions,
            sites=min(config.clients, 2),
        )
    if config.unsafe_partial_writes:
        window = Window(config.ops * 0.25, config.ops * 0.75)
        schedule = schedule.extended(split_brain_schedule(ids, window))

    # Byzantine liars: drawn from their own named stream (so turning them
    # on never shifts the crash/partition schedule), lying for the whole
    # run.  Which replies actually lie is then a pure function of the
    # schedule — FaultyTransport burns no extra coins on it.
    byz_replicas: List[int] = []
    if config.byzantine_liars > 0:
        if config.byzantine_liars > len(ids):
            raise ServiceError(
                f"cannot pick {config.byzantine_liars} liars from"
                f" {len(ids)} replicas"
            )
        byz_rng = streams.stream("chaos.byzantine")
        byz_replicas = sorted(
            int(rid)
            for rid in byz_rng.choice(ids, size=config.byzantine_liars, replace=False)
        )
        schedule = schedule.extended(
            [
                ByzantineFault(
                    frozenset(byz_replicas),
                    Window(0.0),
                    mode=config.byzantine_mode,
                )
            ]
        )

    # One registry shared by every client's wrapper: the fabricated-read
    # invariant must recognise a lie no matter which liar told it to whom.
    fabricated: set = set()
    transports = [
        FaultyTransport(
            inner,
            schedule,
            seed=streams.seed_for(f"chaos.faults.{client}"),
            site=client % 2,
            fabricated_registry=fabricated,
        )
        for client in range(config.clients)
    ]
    metrics = ServiceMetrics(system.n)
    coordinators = [
        Coordinator(
            system,
            transports[client],
            strategy,
            coordinator_id=client,
            seed=streams.seed_for(f"chaos.coordinator.{client}"),
            timeout=config.timeout,
            max_attempts=config.max_attempts,
            suspicion_ttl=config.suspicion_ttl,
            breaker_threshold=config.breaker_threshold,
            breaker_cooldown=config.breaker_cooldown,
            degraded_reads=config.degraded_reads,
            hinted_handoff=config.hinted_handoff,
            hedge_spares=config.hedge_spares,
            hedge_delay_ms=config.hedge_delay_ms,
            require_full_quorum=not config.unsafe_partial_writes,
            byzantine_b=config.byzantine_b,
            lease_ttl=config.lease_ttl,
            metrics=metrics,
        )
        for client in range(config.clients)
    ]
    plan = _plan(streams.stream("chaos.plan"), config)

    acked_max: Dict[str, _TS] = {}
    acked_values: Dict[Tuple[str, int, int], Any] = {}
    issued_values: Dict[Tuple[str, int, int], Any] = {}
    violations: List[Dict[str, Any]] = []
    trace: List[Dict[str, Any]] = []
    counts = {
        "reads_ok": 0,
        "reads_degraded": 0,
        "reads_failed": 0,
        "writes_ok": 0,
        "writes_failed": 0,
        "preloads": 0,
    }

    def record_ack(key: str, timestamp: _TS, value: Any) -> None:
        acked_values[(key, timestamp[0], timestamp[1])] = value
        if timestamp > acked_max.get(key, NULL_TIMESTAMP):
            acked_max[key] = timestamp

    def check_read(index: int, client: int, key: str, result) -> None:
        timestamp = (result.counter, result.writer)
        # Checked before the stale early-return on purpose: a fabricated
        # value is a safety violation even when served flagged-stale.
        if result.value in fabricated:
            violations.append(
                {
                    "invariant": "byzantine-fabricated-read",
                    "op": index,
                    "client": client,
                    "key": key,
                    "detail": (
                        f"read returned fabricated value {result.value!r}"
                        f" at {timestamp}"
                    ),
                }
            )
        if timestamp != NULL_TIMESTAMP:
            issued = issued_values.get((key, result.counter, result.writer))
            if (key, result.counter, result.writer) not in issued_values:
                violations.append(
                    {
                        "invariant": "version-integrity",
                        "op": index,
                        "client": client,
                        "key": key,
                        "detail": f"read returned never-issued version {timestamp}",
                    }
                )
            elif issued != result.value:
                violations.append(
                    {
                        "invariant": "version-integrity",
                        "op": index,
                        "client": client,
                        "key": key,
                        "detail": (
                            f"version {timestamp} returned value {result.value!r},"
                            f" issued as {issued!r}"
                        ),
                    }
                )
        if result.stale:
            return  # degraded reads are allowed to lag — that is the flag
        expected = acked_max.get(key)
        if expected is not None and timestamp < expected:
            violations.append(
                {
                    "invariant": "no-stale-unflagged-read",
                    "op": index,
                    "client": client,
                    "key": key,
                    "detail": (
                        f"read returned {timestamp}, but {expected} was"
                        " acknowledged earlier"
                    ),
                }
            )

    def record_trace(
        index: int, client: int, kind: str, key: str, outcome: str, ts: Optional[_TS]
    ) -> None:
        trace.append(
            {
                "op": index,
                "client": client,
                "kind": kind,
                "key": key,
                "outcome": outcome,
                "ts": list(ts) if ts is not None else None,
            }
        )

    async def _run() -> None:
        # Preload every key through the fault-free inner transport so each
        # key has an acknowledged baseline version.
        warmup = Coordinator(
            system,
            inner,
            strategy,
            coordinator_id=config.clients,
            seed=streams.seed_for("chaos.warmup"),
            timeout=10_000.0,
            max_attempts=6,
            metrics=ServiceMetrics(system.n),
        )
        for key_index in range(config.keys):
            key, value = f"k{key_index:03d}", f"preload-{key_index}"
            ack = await warmup.write(key, value)
            issued_values[(key, ack.counter, ack.writer)] = value
            record_ack(key, (ack.counter, ack.writer), value)
            counts["preloads"] += 1

        for index, (client, kind, key) in enumerate(plan):
            for transport in transports:
                transport.clock = float(index)
            coordinator = coordinators[client]
            if kind == "write":
                value = f"v{index}-c{client}"
                # The timestamp is determined before the attempt (clock+1),
                # so even a failed write's partially-applied version is a
                # known, legal version for later reads to return.
                stamped = (coordinator.clock + 1, coordinator.coordinator_id)
                issued_values[(key, stamped[0], stamped[1])] = value
                try:
                    ack = await coordinator.write(key, value)
                except OperationFailed:
                    counts["writes_failed"] += 1
                    record_trace(index, client, kind, key, "failed", None)
                else:
                    counts["writes_ok"] += 1
                    record_ack(key, (ack.counter, ack.writer), value)
                    record_trace(
                        index, client, kind, key, "ok", (ack.counter, ack.writer)
                    )
            else:
                try:
                    result = await coordinator.read(key)
                except OperationFailed:
                    counts["reads_failed"] += 1
                    record_trace(index, client, kind, key, "failed", None)
                else:
                    if result.stale:
                        counts["reads_degraded"] += 1
                        outcome = "degraded"
                    else:
                        counts["reads_ok"] += 1
                        outcome = "ok"
                    check_read(index, client, key, result)
                    record_trace(
                        index,
                        client,
                        kind,
                        key,
                        outcome,
                        (result.counter, result.writer),
                    )
        # Hedged phases may leave absorbed stragglers in flight; the
        # post-run invariants must see their effects (journal appends,
        # suspicion updates) — wait for them all.
        for coordinator in coordinators:
            await coordinator.drain()

    started = time.perf_counter()
    if mode == "sim":
        assert isinstance(clock, VirtualClock)
        run_virtual(_run(), clock=clock)
    else:
        asyncio.run(_run())
    elapsed = time.perf_counter() - started

    # ------------------------------------------------------------------
    # Post-run invariants
    # ------------------------------------------------------------------
    for key in sorted(acked_max):
        expected = acked_max[key]
        surviving = NULL_TIMESTAMP
        surviving_value = None
        for replica in replicas:
            version = replica.get(key)
            if version is not None and version.timestamp > surviving:
                surviving = version.timestamp
                surviving_value = version.value
        if surviving < expected:
            violations.append(
                {
                    "invariant": "acked-write-durable",
                    "key": key,
                    "detail": (
                        f"newest surviving version is {surviving}, but"
                        f" {expected} was acknowledged"
                    ),
                }
            )
        elif (
            surviving == expected
            and surviving_value != acked_values[(key, expected[0], expected[1])]
        ):
            violations.append(
                {
                    "invariant": "acked-write-durable",
                    "key": key,
                    "detail": (
                        f"surviving version {surviving} holds"
                        f" {surviving_value!r}, acknowledged as"
                        f" {acked_values[(key, expected[0], expected[1])]!r}"
                    ),
                }
            )

    for rid in sorted(journals):
        for key in sorted(journals[rid]):
            entries = journals[rid][key]
            for previous, current in zip(entries, entries[1:]):
                if current <= previous:
                    violations.append(
                        {
                            "invariant": "replica-ts-monotone",
                            "replica": rid,
                            "key": key,
                            "detail": f"{previous} then {current}",
                        }
                    )

    if byz_replicas:
        byz_set = set(byz_replicas)
        accused = set()
        for coordinator in coordinators:
            accused |= coordinator.lied_replicas
        # Soundness is only guaranteed inside the masking budget: with
        # more than b liars, colluding votes can out-number the truth and
        # frame honest replicas — that regime is the expected-failure
        # case, already flagged by byzantine-fabricated-read.
        if config.byzantine_liars <= config.byzantine_b:
            framed = sorted(accused - byz_set)
            if framed:
                violations.append(
                    {
                        "invariant": "lie-detection-sound",
                        "detail": (
                            f"honest replicas {framed} marked as liars"
                            f" (actual liars: {byz_replicas})"
                        ),
                    }
                )
        for coordinator in coordinators:
            unreflected = sorted(
                coordinator.lied_replicas - coordinator.suspicion_history
            )
            if unreflected:
                violations.append(
                    {
                        "invariant": "lie-suspicion-reflected",
                        "client": coordinator.coordinator_id,
                        "detail": (
                            f"caught liars {unreflected} never entered"
                            " the suspicion set"
                        ),
                    }
                )

    # ------------------------------------------------------------------
    # Availability: measured under the schedule's iid crash component vs
    # the exact failure probability of the same model.
    # ------------------------------------------------------------------
    alive_ticks = sum(
        1
        for tick in range(config.ops)
        if system.contains_quorum(universe - schedule.crash_down_at(float(tick)))
    )
    availability = availability_comparison(
        system, config.crash_rate, alive_ticks / config.ops
    )
    availability["op_success_rate"] = metrics.success_rate

    injected: Dict[str, int] = {}
    for transport in transports:
        for fault_kind, count in transport.injected.items():
            injected[fault_kind] = injected.get(fault_kind, 0) + count

    metrics_snapshot = metrics.to_dict()
    hashes = {
        "trace": _digest(trace),
        "metrics": _digest(metrics_snapshot),
    }

    return ChaosReport(
        system_name=system.system_name,
        n=system.n,
        seed=seed,
        config=config,
        schedule=schedule,
        injected=injected,
        operations=counts,
        availability=availability,
        violations=violations,
        metrics=metrics,
        mode=mode,
        trace=trace,
        hashes=hashes,
        byzantine_replicas=byz_replicas,
        elapsed_seconds=elapsed,
    )
