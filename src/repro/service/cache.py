"""Coordinator-side read cache: TTL leases + stale-while-revalidate.

A :class:`CoordinatorCache` sits in front of quorum reads the way an
edge cache sits in front of an origin: entries are *leased* for
``ttl_ms`` of clock time, after which they may still be served for a
further ``swr_ms`` grace window — flagged stale, with a background
quorum read refreshing the entry — before they become misses that must
pay the full quorum round-trip.

Safety contract (what keeps the chaos invariants sound):

* **newest-wins stores** — an entry is only replaced by an equal-or-
  newer ``(counter, writer)`` version, so a write-through older than
  the cached version (a lagging writer's logical clock) can never roll
  the cache back;
* callers must only :meth:`store` versions that were *acknowledged*
  (write acks and unflagged quorum reads, never degraded ``stale=True``
  results), which makes a fresh hit at least as new as every version
  acknowledged through this cache — serving it unflagged is safe;
* grace-window serves are flagged ``stale=True`` by the caller: the
  lease expired, so the entry no longer carries a freshness claim.

The cache is deliberately shared by every client of a harness: one
write-through pool, like one memcached tier in front of many app
servers.  Mass-expiry stampedes (every key leased at the same instant
expiring together — the classic cache avalanche) are what
``incident-015-cache-avalanche`` demonstrates; the ``swr_ms`` grace
window plus single-flight refresh deduplication is the mitigation knob.
"""

from __future__ import annotations

from typing import Any, Dict, NamedTuple, Optional, Set, Tuple

from ..runtime.clock import Clock

__all__ = ["CacheEntry", "CoordinatorCache"]


class CacheEntry(NamedTuple):
    """One cached version with its lease stamp."""

    value: Any
    counter: int
    writer: int
    stored_ms: float


class CoordinatorCache:
    """A shared TTL + stale-while-revalidate read cache over a clock."""

    def __init__(
        self, clock: Clock, *, ttl_ms: float, swr_ms: float = 0.0
    ) -> None:
        if ttl_ms <= 0:
            raise ValueError(f"cache ttl_ms must be positive, got {ttl_ms}")
        if swr_ms < 0:
            raise ValueError(f"cache swr_ms must be >= 0, got {swr_ms}")
        self._clock = clock
        self.ttl_ms = float(ttl_ms)
        self.swr_ms = float(swr_ms)
        self._entries: Dict[str, CacheEntry] = {}
        self._refreshing: Set[str] = set()
        # Deterministic counters (snapshotted into scorecards).
        self.hits = 0
        self.stale_served = 0
        self.misses = 0
        self.stores = 0
        self.refreshes = 0
        self.refresh_failures = 0

    def lookup(self, key: str) -> Tuple[str, Optional[CacheEntry]]:
        """Classify a read: ``("fresh", entry)`` within the lease,
        ``("stale", entry)`` within the grace window (serve flagged,
        refresh in background), ``("miss", None)`` otherwise."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return "miss", None
        age = self._clock.now() - entry.stored_ms
        if age < self.ttl_ms:
            self.hits += 1
            return "fresh", entry
        if age < self.ttl_ms + self.swr_ms:
            self.stale_served += 1
            return "stale", entry
        self.misses += 1
        return "miss", None

    def store(self, key: str, value: Any, counter: int, writer: int) -> bool:
        """Fill/refresh an entry from an *acknowledged* version.

        Newest-wins: an older version than the cached one is dropped
        (returns False) so lagging writers cannot roll the cache back;
        an equal version re-validates the lease (fresh stamp).
        """
        existing = self._entries.get(key)
        if existing is not None and (counter, writer) < (
            existing.counter,
            existing.writer,
        ):
            return False
        self._entries[key] = CacheEntry(
            value, int(counter), int(writer), self._clock.now()
        )
        self.stores += 1
        return True

    def begin_refresh(self, key: str) -> bool:
        """Claim the single-flight refresh slot for ``key``; False when a
        refresh is already in flight (the stampede deduplication)."""
        if key in self._refreshing:
            return False
        self._refreshing.add(key)
        self.refreshes += 1
        return True

    def end_refresh(self, key: str, *, ok: bool = True) -> None:
        """Release the refresh slot (count the failure if it failed)."""
        self._refreshing.discard(key)
        if not ok:
            self.refresh_failures += 1

    @property
    def lookups(self) -> int:
        return self.hits + self.stale_served + self.misses

    def snapshot(self) -> Dict[str, Any]:
        """Deterministic scorecard block (no clock values, no floats
        derived from wall time — identical per seed in sim mode)."""
        lookups = self.lookups
        served = self.hits + self.stale_served
        return {
            "ttl_ms": self.ttl_ms,
            "swr_ms": self.swr_ms,
            "size": len(self._entries),
            "lookups": lookups,
            "hits": self.hits,
            "stale_served": self.stale_served,
            "misses": self.misses,
            "hit_rate": (served / lookups) if lookups else 0.0,
            "stores": self.stores,
            "refreshes": self.refreshes,
            "refresh_failures": self.refresh_failures,
        }
