"""repro — reproduction of "Revisiting Hierarchical Quorum Systems"
(Preguiça & Martins, ICDCS 2001).

The package provides:

* :mod:`repro.core` — quorum-system abstractions (universes, coteries,
  strategies, composition);
* :mod:`repro.systems` — the paper's hierarchical T-grid (§4) and
  hierarchical triangle (§5) plus all evaluated baselines;
* :mod:`repro.analysis` — exact failure probability (closed forms,
  exhaustive, Shannon/BDD, lattice frontier DP), Monte Carlo, reliability
  polynomials, and LP-exact load;
* :mod:`repro.sim` — a deterministic discrete-event simulator with
  quorum-based mutual-exclusion and replicated-data protocols, closing
  the loop between the analytic metrics and protocol behaviour.

Quickstart::

    from repro import HierarchicalTriangle

    system = HierarchicalTriangle(5)          # 15 processes, quorums of 5
    system.failure_probability(0.1)           # 0.000677 (paper Table 2)
    system.load()                             # 1/3     (paper Table 4)
"""

from .core import (
    ComposedQuorumSystem,
    ExplicitQuorumSystem,
    Quorum,
    QuorumError,
    QuorumSystem,
    Strategy,
    Universe,
)
from .systems import (
    CrumblingWallQuorumSystem,
    FPPQuorumSystem,
    GridQuorumSystem,
    HQSQuorumSystem,
    HierarchicalGrid,
    HierarchicalTGrid,
    HierarchicalTriangle,
    MajorityQuorumSystem,
    PathsQuorumSystem,
    SingletonQuorumSystem,
    TreeQuorumSystem,
    WeightedVotingQuorumSystem,
    YQuorumSystem,
)
from .analysis import (
    availability,
    failure_probability,
    optimal_strategy,
    system_load,
)

__version__ = "1.0.0"

__all__ = [
    "ComposedQuorumSystem",
    "CrumblingWallQuorumSystem",
    "ExplicitQuorumSystem",
    "FPPQuorumSystem",
    "GridQuorumSystem",
    "HQSQuorumSystem",
    "HierarchicalGrid",
    "HierarchicalTGrid",
    "HierarchicalTriangle",
    "MajorityQuorumSystem",
    "PathsQuorumSystem",
    "Quorum",
    "QuorumError",
    "QuorumSystem",
    "SingletonQuorumSystem",
    "Strategy",
    "TreeQuorumSystem",
    "Universe",
    "WeightedVotingQuorumSystem",
    "YQuorumSystem",
    "availability",
    "failure_probability",
    "optimal_strategy",
    "system_load",
    "__version__",
]
