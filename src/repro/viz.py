"""Text renderings of the paper's construction figures.

Figure 1 — a 3-level hierarchical grid with 16 processes, with a
read-write quorum highlighted (row-cover elements as ``C``, full-line
elements as ``L``, both as ``B``).

Figure 2 — a triangle with 5 rows divided into sub-triangle 1, the
sub-grid and sub-triangle 2 (marked ``1``, ``G``, ``2``).

These renderers are deterministic and drive the ``bench_fig1`` /
``bench_fig2`` regenerators.
"""

from __future__ import annotations

from typing import List, Optional

from .core.quorum_system import Quorum
from .systems.hgrid import HierarchicalGrid
from .systems.htriangle import HierarchicalTriangle


def render_hgrid(
    grid: HierarchicalGrid,
    cover: Optional[Quorum] = None,
    line: Optional[Quorum] = None,
) -> str:
    """ASCII layout of a hierarchical grid with an optional quorum.

    Each cell shows ``.`` (unused), ``C`` (row-cover member), ``L``
    (full-line member) or ``B`` (both).
    """
    cover = frozenset(cover or ())
    line = frozenset(line or ())
    rows = 1 + max(grid.coordinates(e)[0] for e in grid.universe.ids)
    cols = 1 + max(grid.coordinates(e)[1] for e in grid.universe.ids)
    canvas: List[List[str]] = [["." for _ in range(cols)] for _ in range(rows)]
    for element in grid.universe.ids:
        r, c = grid.coordinates(element)
        in_cover = element in cover
        in_line = element in line
        if in_cover and in_line:
            canvas[r][c] = "B"
        elif in_cover:
            canvas[r][c] = "C"
        elif in_line:
            canvas[r][c] = "L"
    lines = [" ".join(row) for row in canvas]
    return "\n".join(lines)


def render_figure1() -> str:
    """Figure 1: 16-process 3-level h-grid with a read-write quorum.

    Deterministically picks the first hierarchical full-line and the
    first row-cover, mirroring the paper's illustration of a quorum built
    from row-covers and a full-line.
    """
    grid = HierarchicalGrid.halving(4, 4)
    line = grid.full_lines()[0]
    cover = grid.row_covers()[0]
    header = (
        "Figure 1 — 3-level hierarchical grid, 16 processes\n"
        "read-write quorum: C = row-cover, L = full-line, B = both\n"
    )
    return header + render_hgrid(grid, cover=cover, line=line)


def render_htriangle_division(triangle: HierarchicalTriangle) -> str:
    """ASCII triangle with the §5 division marked (1 / G / 2)."""
    if triangle.rows is None:
        raise ValueError("only standard triangles have a printable layout")
    t = triangle.rows
    top = t // 2
    lines = []
    for r in range(t):
        cells = []
        for c in range(r + 1):
            if r < top:
                cells.append("1")
            elif c < top:
                cells.append("G")
            else:
                cells.append("2")
        lines.append(" " * (t - r - 1) + " ".join(cells))
    return "\n".join(lines)


def render_figure2() -> str:
    """Figure 2: 5-row triangle (15 processes) divided into T1, G, T2."""
    triangle = HierarchicalTriangle(5)
    header = (
        "Figure 2 — triangle with 5 rows (15 processes)\n"
        "1 = sub-triangle 1, G = sub-grid, 2 = sub-triangle 2\n"
    )
    return header + render_htriangle_division(triangle)


def render_wall(widths) -> str:
    """ASCII layout of a crumbling wall (one ``o`` per element)."""
    widest = max(widths)
    return "\n".join(("o " * w).rstrip().center(2 * widest - 1) for w in widths)


def render_failure_curves(
    systems,
    p_max: float = 0.5,
    points: int = 24,
    height: int = 12,
) -> str:
    """ASCII chart of failure probability vs crash probability.

    One letter per system; rows are failure-probability bins (top = 1),
    columns sweep ``p`` from ``p_max/points`` to ``p_max``.  Useful for
    eyeballing crossings from the CLI (``quorumtool compare --plot``).
    """
    if points < 2 or height < 2:
        raise ValueError("need at least 2 points and 2 rows")
    labels = "ABCDEFGHIJ"
    if len(systems) > len(labels):
        raise ValueError(f"at most {len(labels)} systems")
    samples = {}
    for index, system in enumerate(systems):
        samples[index] = [
            system.failure_probability(p_max * (k + 1) / points)
            for k in range(points)
        ]
    canvas = [[" "] * points for _ in range(height)]
    for index, values in samples.items():
        for column, value in enumerate(values):
            row = height - 1 - min(height - 1, int(value * height))
            if canvas[row][column] == " ":
                canvas[row][column] = labels[index]
            else:
                canvas[row][column] = "*"  # overlap marker
    lines = []
    for row_index, row in enumerate(canvas):
        level = (height - row_index) / height
        lines.append(f"{level:>4.2f} |" + "".join(row))
    lines.append("     +" + "-" * points)
    lines.append(f"      p: 0 .. {p_max}")
    for index, system in enumerate(systems):
        lines.append(f"      {labels[index]} = {system.system_name}")
    return "\n".join(lines)
