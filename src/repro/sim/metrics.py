"""Measurement helpers for simulation experiments.

Bridges the simulator back to the paper's metrics:

* :class:`AvailabilityProbe` — per crash epoch, records whether some
  quorum is fully alive; its failure rate converges to the analytic
  ``F_p`` (Definition 3.2);
* :class:`LoadMeter` — per-replica request counts; normalised frequencies
  converge to the strategy's induced element loads (Definition 3.4);
* :class:`LatencyStats` — latency aggregation for the examples.

These are thin views over the shared primitives in
:mod:`repro.runtime.metrics`: the probe's tallies are runtime
:class:`~repro.runtime.metrics.Counter` objects and
:class:`LatencyStats` *is* a :class:`~repro.runtime.metrics.LatencyHistogram`
(service metrics use the same one, so sim and service latency numbers
are computed by identical code).
"""

from __future__ import annotations

import math

import numpy as np

from ..core.quorum_system import QuorumSystem
from ..runtime.metrics import Counter, LatencyHistogram
from .failures import alive_set
from .network import Network


class AvailabilityProbe:
    """Counts crash epochs in which the system had no live quorum."""

    def __init__(self, system: QuorumSystem, network: Network) -> None:
        self.system = system
        self.network = network
        self.epochs = Counter()
        self.failures = Counter()

    def observe(self, epoch_index: int) -> None:
        """Record one epoch (pass as ``on_step``/``on_epoch`` to the
        schedule or crash injector)."""
        self.epochs += 1
        if not self.system.contains_quorum(alive_set(self.network)):
            self.failures += 1

    @property
    def failure_rate(self) -> float:
        """Measured fraction of unusable epochs (estimates ``F_p``)."""
        if self.epochs == 0:
            return 0.0
        return self.failures / self.epochs

    def confidence_half_width(self, z: float = 2.5758) -> float:
        """Normal-approximation CI half width (default 99%)."""
        if self.epochs == 0:
            return 1.0
        rate = self.failure_rate
        return z * math.sqrt(max(rate * (1 - rate), 1e-12) / self.epochs)


class LoadMeter:
    """Per-element request counts, comparable to analytic loads.

    The per-element tallies stay a numpy array (they are vector-divided
    into frequencies); the operation count is a runtime counter.
    """

    def __init__(self, n: int) -> None:
        self.counts = np.zeros(n, dtype=np.int64)
        self.operations = Counter()

    def record_quorum(self, quorum) -> None:
        """Count one access to each member of the used quorum."""
        self.operations += 1
        for element in quorum:
            self.counts[element] += 1

    def empirical_loads(self) -> np.ndarray:
        """Access frequency of every element (per operation)."""
        if self.operations == 0:
            return np.zeros_like(self.counts, dtype=float)
        return self.counts / int(self.operations)

    @property
    def max_load(self) -> float:
        """Empirical load of the busiest element."""
        return float(self.empirical_loads().max())


class LatencyStats(LatencyHistogram):
    """Streaming latency aggregation (the shared runtime histogram under
    its historical sim-side name)."""
