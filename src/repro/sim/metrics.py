"""Measurement helpers for simulation experiments.

Bridges the simulator back to the paper's metrics:

* :class:`AvailabilityProbe` — per crash epoch, records whether some
  quorum is fully alive; its failure rate converges to the analytic
  ``F_p`` (Definition 3.2);
* :class:`LoadMeter` — per-replica request counts; normalised frequencies
  converge to the strategy's induced element loads (Definition 3.4);
* :class:`LatencyStats` — simple latency aggregation for the examples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.quorum_system import QuorumSystem
from .failures import alive_set
from .network import Network


class AvailabilityProbe:
    """Counts crash epochs in which the system had no live quorum."""

    def __init__(self, system: QuorumSystem, network: Network) -> None:
        self.system = system
        self.network = network
        self.epochs = 0
        self.failures = 0

    def observe(self, epoch_index: int) -> None:
        """Record one epoch (pass as ``on_epoch`` to the crash injector)."""
        self.epochs += 1
        if not self.system.contains_quorum(alive_set(self.network)):
            self.failures += 1

    @property
    def failure_rate(self) -> float:
        """Measured fraction of unusable epochs (estimates ``F_p``)."""
        if self.epochs == 0:
            return 0.0
        return self.failures / self.epochs

    def confidence_half_width(self, z: float = 2.5758) -> float:
        """Normal-approximation CI half width (default 99%)."""
        if self.epochs == 0:
            return 1.0
        rate = self.failure_rate
        return z * math.sqrt(max(rate * (1 - rate), 1e-12) / self.epochs)


class LoadMeter:
    """Per-element request counts, comparable to analytic loads."""

    def __init__(self, n: int) -> None:
        self.counts = np.zeros(n, dtype=np.int64)
        self.operations = 0

    def record_quorum(self, quorum) -> None:
        """Count one access to each member of the used quorum."""
        self.operations += 1
        for element in quorum:
            self.counts[element] += 1

    def empirical_loads(self) -> np.ndarray:
        """Access frequency of every element (per operation)."""
        if self.operations == 0:
            return np.zeros_like(self.counts, dtype=float)
        return self.counts / self.operations

    @property
    def max_load(self) -> float:
        """Empirical load of the busiest element."""
        return float(self.empirical_loads().max())


@dataclass
class LatencyStats:
    """Streaming latency aggregation."""

    samples: List[float] = field(default_factory=list)

    def record(self, latency: float) -> None:
        """Add one latency sample."""
        self.samples.append(latency)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        """Average latency (0 when empty)."""
        return float(np.mean(self.samples)) if self.samples else 0.0

    def percentile(self, q: float) -> float:
        """Latency percentile ``q`` in [0, 100]."""
        if not self.samples:
            return 0.0
        return float(np.percentile(self.samples, q))
