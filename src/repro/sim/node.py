"""Process (node) abstraction for the simulator.

A node is a message-driven state machine with a crash/recover lifecycle
matching the paper's failure model: crashes are transient (the node
eventually recovers) and a crashed node neither sends nor receives.
Protocol classes subclass :class:`Node` and implement
:meth:`Node.on_message`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict

from ..core.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .network import Message, Network


class Node:
    """A process in the distributed system.

    Parameters
    ----------
    node_id:
        Unique integer identity (matches the quorum-system element id).
    network:
        The network the node is attached to (auto-registers).
    """

    def __init__(self, node_id: int, network: "Network") -> None:
        self.node_id = node_id
        self.network = network
        self.sim = network.sim
        self.alive = True
        self.crash_count = 0
        self.messages_handled = 0
        network.register(self)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Crash the node: it stops handling messages and loses any
        volatile protocol state (see :meth:`on_crash`)."""
        if self.alive:
            self.alive = False
            self.crash_count += 1
            self.on_crash()

    def recover(self) -> None:
        """Bring the node back (transient failures, paper §3)."""
        if not self.alive:
            self.alive = True
            self.on_recover()

    def on_crash(self) -> None:
        """Hook: clear volatile state.  Default does nothing."""

    def on_recover(self) -> None:
        """Hook: reinitialise after recovery.  Default does nothing."""

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------
    def send(self, dst: int, message: "Message") -> None:
        """Send a message (silently ignored while crashed)."""
        if self.alive:
            self.network.send(self.node_id, dst, message)

    def receive(self, src: int, message: "Message") -> None:
        """Called by the network on delivery."""
        if not self.alive:
            return
        self.messages_handled += 1
        self.on_message(src, message)

    def on_message(self, src: int, message: "Message") -> None:
        """Protocol logic; subclasses must override."""
        raise SimulationError(
            f"node {self.node_id} received {message.kind!r} but defines no handler"
        )

    def __repr__(self) -> str:
        state = "up" if self.alive else "down"
        return f"<{type(self).__name__} id={self.node_id} {state}>"
