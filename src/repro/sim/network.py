"""Simulated message-passing network.

Nodes communicate exclusively by messages routed through a
:class:`Network`, which models latency (several distributions), message
loss and network partitions — the failure environment quorum systems are
designed for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Set

from ..core.errors import SimulationError
from .engine import Simulator


@dataclass(frozen=True)
class Message:
    """A protocol message.

    ``kind`` is a short protocol-specific verb (``"request"``,
    ``"grant"``, ...); ``payload`` carries the data.
    """

    kind: str
    payload: Dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:
        return f"Message({self.kind}, {self.payload})"


class LatencyModel:
    """Base latency model: fixed delay."""

    def __init__(self, delay: float = 1.0) -> None:
        if delay < 0:
            raise SimulationError(f"latency must be >= 0, got {delay}")
        self.delay = delay

    def sample(self, sim: Simulator) -> float:
        """Delay for the next message."""
        return self.delay


class UniformLatency(LatencyModel):
    """Uniform latency on ``[low, high]``."""

    def __init__(self, low: float, high: float) -> None:
        if not 0 <= low <= high:
            raise SimulationError(f"bad latency range [{low}, {high}]")
        super().__init__(low)
        self.low = low
        self.high = high

    def sample(self, sim: Simulator) -> float:
        return float(sim.rng.uniform(self.low, self.high))


class ExponentialLatency(LatencyModel):
    """Exponential latency with the given mean (plus optional floor)."""

    def __init__(self, mean: float, floor: float = 0.0) -> None:
        super().__init__(floor)
        self.mean = mean
        self.floor = floor

    def sample(self, sim: Simulator) -> float:
        return self.floor + float(sim.rng.exponential(self.mean))


class Network:
    """Routes messages between registered nodes.

    Parameters
    ----------
    sim:
        The event loop.
    latency:
        Latency model applied per message.
    drop_probability:
        Independent loss probability per message.
    """

    def __init__(
        self,
        sim: Simulator,
        latency: Optional[LatencyModel] = None,
        drop_probability: float = 0.0,
    ) -> None:
        if not 0.0 <= drop_probability < 1.0:
            raise SimulationError(
                f"drop probability must be in [0, 1), got {drop_probability}"
            )
        self.sim = sim
        self.latency = latency or LatencyModel(1.0)
        self.drop_probability = drop_probability
        self._nodes: Dict[int, "Node"] = {}
        self._partition: Optional[List[Set[int]]] = None
        self.messages_sent = 0
        self.messages_dropped = 0
        self.messages_delivered = 0

    # ------------------------------------------------------------------
    def register(self, node: "Node") -> None:
        """Attach a node; its id must be unique."""
        if node.node_id in self._nodes:
            raise SimulationError(f"duplicate node id {node.node_id}")
        self._nodes[node.node_id] = node

    def node(self, node_id: int) -> "Node":
        """Look up a registered node."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise SimulationError(f"unknown node id {node_id}") from None

    @property
    def node_ids(self) -> List[int]:
        """All registered node ids, sorted."""
        return sorted(self._nodes)

    # ------------------------------------------------------------------
    # Partitions
    # ------------------------------------------------------------------
    def set_partition(self, groups: Iterable[Iterable[int]]) -> None:
        """Split the network: messages may only travel within a group."""
        sets = [set(g) for g in groups]
        self._partition = sets

    def heal_partition(self) -> None:
        """Remove any partition."""
        self._partition = None

    def _connected(self, src: int, dst: int) -> bool:
        if self._partition is None:
            return True
        for group in self._partition:
            if src in group and dst in group:
                return True
        return False

    # ------------------------------------------------------------------
    def send(self, src: int, dst: int, message: Message) -> None:
        """Send a message; it may be dropped, delayed or partitioned away."""
        self.messages_sent += 1
        if not self._connected(src, dst):
            self.messages_dropped += 1
            return
        if self.drop_probability and self.sim.rng.random() < self.drop_probability:
            self.messages_dropped += 1
            return
        delay = self.latency.sample(self.sim)
        self.sim.schedule(delay, self._deliver, src, dst, message)

    def _deliver(self, src: int, dst: int, message: Message) -> None:
        node = self._nodes.get(dst)
        if node is None or not node.alive:
            self.messages_dropped += 1
            return
        self.messages_delivered += 1
        node.receive(src, message)


# Imported at the bottom to avoid a cycle (node.py imports Network for
# type checking only).
from .node import Node  # noqa: E402  (deliberate tail import)
