"""Structured event tracing for the simulator.

Protocol debugging needs to answer "what happened, in what order, at
which node" — a :class:`Tracer` records structured events (time, node,
category, detail), supports filtered queries, renders a readable
timeline, and exports to JSON for offline analysis.  The network and the
failure injectors accept an optional tracer; protocols can emit their
own events through :meth:`Tracer.record`.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional, Union

from ..core.errors import SimulationError


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event."""

    time: float
    category: str
    node: Optional[int]
    detail: Dict[str, Any]

    def render(self) -> str:
        """Single-line human-readable form."""
        who = f"node {self.node}" if self.node is not None else "-"
        payload = ", ".join(f"{k}={v}" for k, v in sorted(self.detail.items()))
        return f"[{self.time:10.3f}] {self.category:<12} {who:<8} {payload}"


class Tracer:
    """Collects :class:`TraceEvent` records.

    Parameters
    ----------
    capacity:
        Maximum number of retained events (oldest dropped beyond it);
        guards against unbounded memory in long simulations.
    """

    def __init__(self, capacity: int = 100_000) -> None:
        if capacity < 1:
            raise SimulationError("tracer capacity must be positive")
        self.capacity = capacity
        self._events: List[TraceEvent] = []
        self.dropped = 0

    # ------------------------------------------------------------------
    def record(
        self,
        time: float,
        category: str,
        node: Optional[int] = None,
        **detail: Any,
    ) -> None:
        """Append one event."""
        if len(self._events) >= self.capacity:
            self._events.pop(0)
            self.dropped += 1
        self._events.append(TraceEvent(time, category, node, dict(detail)))

    def __len__(self) -> int:
        return len(self._events)

    # ------------------------------------------------------------------
    def events(
        self,
        category: Optional[str] = None,
        node: Optional[int] = None,
        since: float = float("-inf"),
        until: float = float("inf"),
    ) -> List[TraceEvent]:
        """Filtered events in recording order."""
        return [
            event
            for event in self._events
            if (category is None or event.category == category)
            and (node is None or event.node == node)
            and since <= event.time <= until
        ]

    def categories(self) -> Dict[str, int]:
        """Event counts per category."""
        counts: Dict[str, int] = {}
        for event in self._events:
            counts[event.category] = counts.get(event.category, 0) + 1
        return counts

    def timeline(self, limit: Optional[int] = None, **filters: Any) -> str:
        """Readable multi-line timeline (optionally filtered/truncated)."""
        selected = self.events(**filters)
        if limit is not None:
            selected = selected[-limit:]
        return "\n".join(event.render() for event in selected)

    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """Export all retained events as a JSON array."""
        return json.dumps([asdict(event) for event in self._events])

    def save(self, path: Union[str, Path]) -> None:
        """Write the JSON export to a file."""
        Path(path).write_text(self.to_json())

    @classmethod
    def from_json(cls, text: str) -> "Tracer":
        """Rebuild a tracer from a JSON export."""
        tracer = cls()
        for blob in json.loads(text):
            tracer.record(
                blob["time"], blob["category"], blob.get("node"), **blob["detail"]
            )
        return tracer


class TracingNetworkMixin:
    """Glue helpers that wire a tracer into an existing network."""

    @staticmethod
    def attach(network, tracer: Tracer) -> None:
        """Wrap a network's send/deliver paths with trace records.

        Non-invasive: monkey-patches the instance, leaving the class
        untouched, so only the instrumented runs pay the cost.
        """
        original_send = network.send
        original_deliver = network._deliver

        def traced_send(src: int, dst: int, message) -> None:
            tracer.record(
                network.sim.now, "send", node=src, dst=dst, kind=message.kind
            )
            original_send(src, dst, message)

        def traced_deliver(src: int, dst: int, message) -> None:
            tracer.record(
                network.sim.now, "deliver", node=dst, src=src, kind=message.kind
            )
            original_deliver(src, dst, message)

        network.send = traced_send
        network._deliver = traced_deliver


def attach_crash_tracing(network, tracer: Tracer) -> None:
    """Record crash/recover transitions of every registered node."""
    for node_id in network.node_ids:
        node = network.node(node_id)
        original_crash = node.crash
        original_recover = node.recover

        def traced_crash(node=node, original=original_crash):
            if node.alive:
                tracer.record(node.sim.now, "crash", node=node.node_id)
            original()

        def traced_recover(node=node, original=original_recover):
            if not node.alive:
                tracer.record(node.sim.now, "recover", node=node.node_id)
            original()

        node.crash = traced_crash
        node.recover = traced_recover
