"""Failure injection for the simulator.

The paper's availability analysis assumes *iid transient crashes*: at any
instant each process is down independently with probability ``p``.
:class:`IidCrashInjector` realises exactly that model in epochs, so the
measured fraction of epochs in which no quorum is fully alive converges
to the analytic ``F_p`` — the integration test that ties :mod:`repro.sim`
to :mod:`repro.analysis`.

Other injectors model correlated failures and partitions for the
examples and robustness tests.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence

from ..core.errors import SimulationError
from .engine import Simulator
from .network import Network


def sample_iid_crash_set(rng, ids: Iterable[int], p: float) -> frozenset:
    """Draw the paper's iid crash set: each id is down with probability ``p``.

    One ``rng.random()`` draw per id, in iteration order, so a fixed seed
    yields a fixed crash schedule.  Shared by :class:`IidCrashInjector`
    (epoch resampling in the simulator) and the serving layer's
    in-process transport (:mod:`repro.service.transport`), so both stacks
    realise the exact same failure model.
    """
    if not 0.0 <= p <= 1.0:
        raise SimulationError(f"crash probability must be in [0,1], got {p}")
    return frozenset(i for i in ids if rng.random() < p)


class IidCrashInjector:
    """Resample the crash set every epoch: node ``i`` is down with
    probability ``p`` independently (the paper's failure model).

    Parameters
    ----------
    network:
        Network whose nodes are to be crashed/recovered.
    p:
        Per-node crash probability per epoch.
    epoch:
        Virtual-time length of one epoch.
    on_epoch:
        Optional callback invoked (after resampling) with the epoch index;
        used by availability probes.
    """

    def __init__(
        self,
        network: Network,
        p: float,
        epoch: float = 10.0,
        on_epoch: Optional[Callable[[int], None]] = None,
    ) -> None:
        if not 0.0 <= p <= 1.0:
            raise SimulationError(f"crash probability must be in [0,1], got {p}")
        if epoch <= 0:
            raise SimulationError(f"epoch must be positive, got {epoch}")
        self.network = network
        self.sim = network.sim
        self.p = p
        self.epoch = epoch
        self.on_epoch = on_epoch
        self.epochs_run = 0

    def start(self) -> None:
        """Schedule the first epoch at the current time."""
        self.sim.schedule(0.0, self._tick)

    def _tick(self) -> None:
        down = sample_iid_crash_set(self.sim.rng, self.network.node_ids, self.p)
        for node_id in self.network.node_ids:
            node = self.network.node(node_id)
            if node_id in down:
                node.crash()
            else:
                node.recover()
        if self.on_epoch is not None:
            self.on_epoch(self.epochs_run)
        self.epochs_run += 1
        self.sim.schedule(self.epoch, self._tick)


class TargetedCrashInjector:
    """Crash an explicit set of nodes at a given time, recover later."""

    def __init__(
        self,
        network: Network,
        victims: Sequence[int],
        at: float,
        duration: Optional[float] = None,
    ) -> None:
        self.network = network
        self.victims = list(victims)
        network.sim.schedule_at(at, self._crash)
        if duration is not None:
            network.sim.schedule_at(at + duration, self._recover)

    def _crash(self) -> None:
        for node_id in self.victims:
            self.network.node(node_id).crash()

    def _recover(self) -> None:
        for node_id in self.victims:
            self.network.node(node_id).recover()


class PartitionInjector:
    """Partition the network into groups at a given time, heal later."""

    def __init__(
        self,
        network: Network,
        groups: Sequence[Sequence[int]],
        at: float,
        duration: Optional[float] = None,
    ) -> None:
        self.network = network
        self.groups = [list(g) for g in groups]
        network.sim.schedule_at(at, self._split)
        if duration is not None:
            network.sim.schedule_at(at + duration, network.heal_partition)

    def _split(self) -> None:
        self.network.set_partition(self.groups)


def alive_set(network: Network) -> frozenset:
    """The ids of currently alive nodes (availability-probe helper)."""
    return frozenset(
        node_id
        for node_id in network.node_ids
        if network.node(node_id).alive
    )
