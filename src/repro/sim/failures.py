"""Failure injection for the simulator.

The paper's availability analysis assumes *iid transient crashes*: at any
instant each process is down independently with probability ``p``.
Since the runtime unification the canonical way to realise that model is
declarative: build a :class:`~repro.runtime.faults.FaultSchedule` (e.g.
via :func:`~repro.runtime.faults.iid_crash_schedule`) and apply it to
the network with :class:`ScheduleInjector`.  The same schedule object
also drives the serving layer's
:class:`~repro.service.faults.FaultyTransport`, so sim experiments and
chaos runs share one fault description.

The imperative injectors (:class:`IidCrashInjector`,
:class:`TargetedCrashInjector`, :class:`PartitionInjector`) predate the
schedule model and are deprecated — they still work, but new code should
express the same scenarios as schedule rules (``CrashFault`` windows for
targeted crashes, the iid helper for the paper's model).  Network
partitions as *symmetric link cuts* remain a sim-only concept
(:meth:`Network.set_partition`); the schedule's ``PartitionFault`` is a
client-site reachability rule and is applied by the transport layer, not
by :class:`ScheduleInjector`.
"""

from __future__ import annotations

import math
import warnings
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.errors import SimulationError
from ..runtime.faults import (
    CrashFault,
    FaultSchedule,
    FlappingFault,
    iid_crash_schedule,
    sample_iid_crash_set,
)
from .engine import Simulator
from .network import Network

__all__ = [
    "sample_iid_crash_set",
    "iid_crash_schedule",
    "ScheduleInjector",
    "IidCrashInjector",
    "TargetedCrashInjector",
    "PartitionInjector",
    "alive_set",
]


def _warn_deprecated(old: str, replacement: str) -> None:
    warnings.warn(
        f"{old} is deprecated; express the scenario as a runtime "
        f"FaultSchedule and apply it with {replacement}",
        DeprecationWarning,
        stacklevel=3,
    )


class ScheduleInjector:
    """Apply a :class:`~repro.runtime.faults.FaultSchedule`'s node
    down-set to a simulated :class:`~repro.sim.network.Network`.

    The injector evaluates ``schedule.crash_down_at(t)`` (crash and
    flapping rules — the node-failure faults) and crashes/recovers nodes
    so the network always matches the schedule.  Two stepping modes:

    * **event-driven** (default): apply at every change point of the
      schedule up to ``horizon`` — minimal event count;
    * **fixed cadence** (``step=``): apply every ``step`` ticks from 0 to
      ``horizon`` inclusive, invoking ``on_step(index)`` after each
      application — the epoch-sampling shape availability probes expect
      (:meth:`repro.sim.metrics.AvailabilityProbe.observe` plugs straight
      into ``on_step``).

    Link-level rules (partition/latency/drop/duplicate) are transport
    concerns and are ignored here; symmetric sim partitions remain
    available via :meth:`Network.set_partition`.
    """

    def __init__(
        self,
        network: Network,
        schedule: FaultSchedule,
        *,
        horizon: float,
        step: Optional[float] = None,
        on_step: Optional[Callable[[int], None]] = None,
    ) -> None:
        if horizon < 0:
            raise SimulationError(f"horizon must be >= 0, got {horizon}")
        if step is not None and step <= 0:
            raise SimulationError(f"step must be positive, got {step}")
        if on_step is not None and step is None:
            raise SimulationError("on_step requires a fixed step cadence")
        self.network = network
        self.sim = network.sim
        self.schedule = schedule
        self.horizon = float(horizon)
        self.step = step
        self.on_step = on_step
        self.steps_run = 0
        # Applications happen in ascending time order, so the down-set is
        # maintained incrementally with one sweep over the schedule's
        # activation/deactivation events: O(rules + applications) for a
        # whole run, where evaluating crash_down_at() per application
        # would be O(rules * applications) — ruinous for the 30k-epoch
        # availability experiments.
        self._events = self._down_events()
        self._cursor = 0
        self._down_counts: Dict[int, int] = {}

    def _down_events(self) -> List[Tuple[float, int, frozenset]]:
        """Sorted ``(time, +1/-1, replicas)`` down-set change events."""
        events: List[Tuple[float, int, frozenset]] = []
        for fault in self.schedule:
            if isinstance(fault, CrashFault):
                if fault.window.start > self.horizon:
                    continue
                events.append((fault.window.start, +1, fault.replicas))
                if fault.window.end != math.inf:
                    events.append((fault.window.end, -1, fault.replicas))
            elif isinstance(fault, FlappingFault):
                start, end = fault.window
                half = fault.period * fault.down_fraction
                cycle = 0
                while True:
                    base = start + cycle * fault.period
                    if base >= end or base > self.horizon:
                        break
                    events.append((base, +1, fault.replicas))
                    events.append((min(base + half, end), -1, fault.replicas))
                    cycle += 1
        events.sort(key=lambda event: (event[0], -event[1]))
        return events

    def start(self) -> None:
        """Schedule every application up front (all times are known)."""
        if self.step is None:
            for time in self.schedule.change_points(self.horizon):
                self.sim.schedule_at(time, self._apply, time)
        else:
            index = 0
            while True:
                time = index * self.step
                if time > self.horizon + 1e-9:
                    break
                self.sim.schedule_at(time, self._step, index, time)
                index += 1

    def _apply(self, time: float) -> None:
        # Fold in every event up to and including `time`; the half-open
        # [start, end) window semantics match crash_down_at() exactly
        # (the deactivation event at `end` fires at t == end).
        while self._cursor < len(self._events) and self._events[self._cursor][0] <= time:
            _, sign, replicas = self._events[self._cursor]
            for replica in replicas:
                self._down_counts[replica] = self._down_counts.get(replica, 0) + sign
            self._cursor += 1
        for node_id in self.network.node_ids:
            node = self.network.node(node_id)
            if self._down_counts.get(node_id, 0) > 0:
                node.crash()
            else:
                node.recover()

    def _step(self, index: int, time: float) -> None:
        self._apply(time)
        if self.on_step is not None:
            self.on_step(index)
        self.steps_run += 1


class IidCrashInjector:
    """Resample the crash set every epoch: node ``i`` is down with
    probability ``p`` independently (the paper's failure model).

    .. deprecated::
        Build the equivalent schedule with
        :func:`~repro.runtime.faults.iid_crash_schedule` (drawing from
        the same RNG in the same order) and apply it with
        :class:`ScheduleInjector` — the schedule then also drives the
        service-side chaos harness unchanged.

    Parameters
    ----------
    network:
        Network whose nodes are to be crashed/recovered.
    p:
        Per-node crash probability per epoch.
    epoch:
        Virtual-time length of one epoch.
    on_epoch:
        Optional callback invoked (after resampling) with the epoch index;
        used by availability probes.
    """

    def __init__(
        self,
        network: Network,
        p: float,
        epoch: float = 10.0,
        on_epoch: Optional[Callable[[int], None]] = None,
    ) -> None:
        _warn_deprecated("IidCrashInjector", "ScheduleInjector")
        if not 0.0 <= p <= 1.0:
            raise SimulationError(f"crash probability must be in [0,1], got {p}")
        if epoch <= 0:
            raise SimulationError(f"epoch must be positive, got {epoch}")
        self.network = network
        self.sim = network.sim
        self.p = p
        self.epoch = epoch
        self.on_epoch = on_epoch
        self.epochs_run = 0

    def start(self) -> None:
        """Schedule the first epoch at the current time."""
        self.sim.schedule(0.0, self._tick)

    def _tick(self) -> None:
        down = sample_iid_crash_set(self.sim.rng, self.network.node_ids, self.p)
        for node_id in self.network.node_ids:
            node = self.network.node(node_id)
            if node_id in down:
                node.crash()
            else:
                node.recover()
        if self.on_epoch is not None:
            self.on_epoch(self.epochs_run)
        self.epochs_run += 1
        self.sim.schedule(self.epoch, self._tick)


class TargetedCrashInjector:
    """Crash an explicit set of nodes at a given time, recover later.

    .. deprecated::
        Use a :class:`~repro.runtime.faults.CrashFault` with window
        ``[at, at + duration)`` in a schedule applied by
        :class:`ScheduleInjector`.
    """

    def __init__(
        self,
        network: Network,
        victims: Sequence[int],
        at: float,
        duration: Optional[float] = None,
    ) -> None:
        _warn_deprecated("TargetedCrashInjector", "ScheduleInjector")
        self.network = network
        self.victims = list(victims)
        network.sim.schedule_at(at, self._crash)
        if duration is not None:
            network.sim.schedule_at(at + duration, self._recover)

    def _crash(self) -> None:
        for node_id in self.victims:
            self.network.node(node_id).crash()

    def _recover(self) -> None:
        for node_id in self.victims:
            self.network.node(node_id).recover()


class PartitionInjector:
    """Partition the network into groups at a given time, heal later.

    .. deprecated::
        Call :meth:`Network.set_partition` / ``heal_partition`` from
        scheduled events directly, or model client-side reachability with
        :class:`~repro.runtime.faults.PartitionFault` rules at the
        transport layer.
    """

    def __init__(
        self,
        network: Network,
        groups: Sequence[Sequence[int]],
        at: float,
        duration: Optional[float] = None,
    ) -> None:
        _warn_deprecated("PartitionInjector", "Network.set_partition")
        self.network = network
        self.groups = [list(g) for g in groups]
        network.sim.schedule_at(at, self._split)
        if duration is not None:
            network.sim.schedule_at(at + duration, network.heal_partition)

    def _split(self) -> None:
        self.network.set_partition(self.groups)


def alive_set(network: Network) -> frozenset:
    """The ids of currently alive nodes (availability-probe helper)."""
    return frozenset(
        node_id
        for node_id in network.node_ids
        if network.node(node_id).alive
    )
