"""Deterministic discrete-event simulation engine.

The substrate underneath the quorum protocols: a single-threaded event
loop over a :class:`repro.runtime.clock.VirtualClock`.  Events are
callbacks scheduled at absolute virtual times; ties are broken by a
monotonically increasing sequence number, so a given seed always
produces the exact same execution — a property the test suite asserts.

Since the runtime unification the clock is shared infrastructure: pass
the simulator's :attr:`clock` to other virtual-time components (e.g. a
fault schedule evaluated at ``sim.now``) and everything observes one
consistent timeline.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

import numpy as np

from ..core.errors import SimulationError
from ..runtime.clock import VirtualClock


class Simulator:
    """Event loop with a virtual clock and a seeded RNG.

    Parameters
    ----------
    seed:
        Seed for the simulation-wide :class:`numpy.random.Generator`.
        All stochastic components (latencies, crash injection, strategy
        sampling) must draw from :attr:`rng` to keep runs reproducible.
    clock:
        Optional :class:`~repro.runtime.clock.VirtualClock` to drive
        (a fresh one starting at 0 by default).
    """

    def __init__(self, seed: int = 0, *, clock: Optional[VirtualClock] = None) -> None:
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []
        self._sequence = itertools.count()
        self.clock = clock if clock is not None else VirtualClock()
        self._stopped = False
        self.rng = np.random.default_rng(seed)
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.clock.now()

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> None:
        """Run ``callback(*args)`` after ``delay`` units of virtual time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(
            self._queue,
            (self.now + delay, next(self._sequence), lambda: callback(*args)),
        )

    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> None:
        """Run ``callback(*args)`` at absolute virtual time ``time``."""
        self.schedule(time - self.now, callback, *args)

    def stop(self) -> None:
        """Stop the loop after the current event."""
        self._stopped = True

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> float:
        """Process events until the queue drains, ``until`` is reached, or
        ``max_events`` fire (runaway guard).  Returns the final time."""
        self._stopped = False
        processed = 0
        while self._queue and not self._stopped:
            time, _seq, callback = self._queue[0]
            if until is not None and time > until:
                if until > self.now:
                    self.clock.advance_to(until)
                return self.now
            heapq.heappop(self._queue)
            self.clock.advance_to(time)
            callback()
            processed += 1
            self.events_processed += 1
            if processed >= max_events:
                raise SimulationError(
                    f"exceeded {max_events} events; runaway simulation?"
                )
        if until is not None and self.now < until:
            self.clock.advance_to(until)
        return self.now

    @property
    def pending_events(self) -> int:
        """Number of not-yet-processed events."""
        return len(self._queue)

    def __repr__(self) -> str:
        return f"<Simulator t={self.now:.3f} pending={len(self._queue)}>"
