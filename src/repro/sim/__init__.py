"""Discrete-event simulation substrate.

The distributed-system environment the paper's quorum systems coordinate:
message-passing nodes with transient crashes, lossy links and partitions,
plus the two classic quorum protocols (mutual exclusion and replicated
data) and the instrumentation that ties simulated behaviour back to the
analytic metrics.
"""

from .engine import Simulator
from .failures import (
    IidCrashInjector,
    PartitionInjector,
    ScheduleInjector,
    TargetedCrashInjector,
    alive_set,
    iid_crash_schedule,
    sample_iid_crash_set,
)
from .metrics import AvailabilityProbe, LatencyStats, LoadMeter
from .network import (
    ExponentialLatency,
    LatencyModel,
    Message,
    Network,
    UniformLatency,
)
from .node import Node
from .scenarios import (
    MutexCluster,
    ReplicatedCluster,
    measure_availability,
    measure_strategy_load,
    mutex_cluster,
    replicated_cluster,
)
from .trace import Tracer, TracingNetworkMixin, attach_crash_tracing
from .protocols.mutex import MutexMonitor, MutexNode
from .protocols.reconfiguration import ReconfigurableRegister
from .protocols.rwlock import RWLockMonitor, RWLockNode
from .protocols.replication import (
    OperationResult,
    ReplicaNode,
    ReplicatedRegisterClient,
)
from .workload import ClosedLoopWorkload, PoissonWorkload, QuorumPicker

__all__ = [
    "AvailabilityProbe",
    "ClosedLoopWorkload",
    "ExponentialLatency",
    "IidCrashInjector",
    "LatencyModel",
    "LatencyStats",
    "LoadMeter",
    "Message",
    "MutexCluster",
    "MutexMonitor",
    "MutexNode",
    "Network",
    "Node",
    "OperationResult",
    "PartitionInjector",
    "PoissonWorkload",
    "RWLockMonitor",
    "RWLockNode",
    "ReconfigurableRegister",
    "QuorumPicker",
    "ReplicatedCluster",
    "ReplicaNode",
    "ReplicatedRegisterClient",
    "ScheduleInjector",
    "Simulator",
    "TargetedCrashInjector",
    "Tracer",
    "TracingNetworkMixin",
    "attach_crash_tracing",
    "UniformLatency",
    "alive_set",
    "iid_crash_schedule",
    "measure_availability",
    "measure_strategy_load",
    "mutex_cluster",
    "replicated_cluster",
    "sample_iid_crash_set",
]
