"""Canned experiment scenarios.

The examples and benchmarks all assemble the same building blocks —
simulator, network, replicas/lock nodes, failure injection, probes.
These helpers standardise the assembly so an experiment reads as one
call, with every knob still exposed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..core.quorum_system import QuorumSystem
from ..core.strategy import Strategy
from ..runtime.faults import iid_crash_schedule
from .engine import Simulator
from .failures import ScheduleInjector
from .metrics import AvailabilityProbe, LoadMeter
from .network import LatencyModel, Network
from .node import Node
from .protocols.mutex import MutexMonitor, MutexNode
from .protocols.replication import ReplicaNode, ReplicatedRegisterClient


class _Sink(Node):
    """A node that exists only to be crashed/probed."""

    def on_message(self, src, message) -> None:  # pragma: no cover
        pass


@dataclass
class ReplicatedCluster:
    """A simulator with one replica per system element plus a client."""

    system: QuorumSystem
    sim: Simulator
    network: Network
    replicas: List[ReplicaNode]
    client: ReplicatedRegisterClient


def replicated_cluster(
    system: QuorumSystem,
    seed: int = 0,
    latency: Optional[LatencyModel] = None,
    timeout: float = 50.0,
    client_id: int = 10_000,
) -> ReplicatedCluster:
    """Build a replicated-register cluster over the system's universe."""
    sim = Simulator(seed=seed)
    network = Network(sim, latency=latency)
    replicas = [ReplicaNode(element, network) for element in system.universe.ids]
    client = ReplicatedRegisterClient(client_id, network, timeout=timeout)
    return ReplicatedCluster(system, sim, network, replicas, client)


@dataclass
class MutexCluster:
    """A simulator with one mutex node per element and a safety monitor."""

    system: QuorumSystem
    sim: Simulator
    network: Network
    nodes: List[MutexNode]
    monitor: MutexMonitor


def mutex_cluster(
    system: QuorumSystem,
    seed: int = 0,
    latency: Optional[LatencyModel] = None,
    capacity: int = 1,
) -> MutexCluster:
    """Build a mutual-exclusion cluster with a capacity-aware monitor."""
    sim = Simulator(seed=seed)
    network = Network(sim, latency=latency)
    nodes = [MutexNode(element, network) for element in system.universe.ids]
    return MutexCluster(system, sim, network, nodes, MutexMonitor(capacity=capacity))


def measure_availability(
    system: QuorumSystem,
    p: float,
    epochs: int = 20_000,
    seed: int = 0,
) -> AvailabilityProbe:
    """Run the iid crash-epoch experiment and return the filled probe.

    The probe's failure rate estimates the paper's ``F_p`` (Def. 3.2);
    its confidence half-width bounds the sampling error.

    The crash model is a declarative
    :func:`~repro.runtime.faults.iid_crash_schedule` drawn from the
    simulator RNG — the same draws, in the same order, as the legacy
    ``IidCrashInjector`` it replaced, so measured rates are bit-stable
    across the refactor.
    """
    sim = Simulator(seed=seed)
    network = Network(sim)
    for element in system.universe.ids:
        _Sink(element, network)
    probe = AvailabilityProbe(system, network)
    horizon = float(epochs)
    schedule = iid_crash_schedule(
        sim.rng, network.node_ids, p, horizon=horizon, epoch=1.0
    )
    injector = ScheduleInjector(
        network, schedule, horizon=horizon, step=1.0, on_step=probe.observe
    )
    injector.start()
    sim.run(until=horizon)
    return probe


def measure_strategy_load(
    strategy: Strategy,
    operations: int = 20_000,
    seed: int = 0,
) -> LoadMeter:
    """Sample the strategy and return per-element access frequencies.

    The meter's max load estimates the strategy's induced load
    (Def. 3.4).
    """
    meter = LoadMeter(strategy.system.n)
    rng = np.random.default_rng(seed)
    for _ in range(operations):
        meter.record_quorum(strategy.sample(rng))
    return meter
