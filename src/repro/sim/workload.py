"""Workload generators for the simulator.

Closed-loop clients (issue, wait, think, repeat) and an open-loop Poisson
arrival process, used by the examples and the load-convergence benchmark
(measured per-replica request frequencies must converge to the analytic
strategy loads).
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence

from ..core.errors import SimulationError
from ..core.quorum_system import Quorum, QuorumSystem
from ..core.strategy import Strategy
from .engine import Simulator


class QuorumPicker:
    """Samples quorums for clients from a :class:`Strategy`.

    Also returns fallback candidates (a shuffled list of further quorums)
    so clients can retry when the sampled quorum is unavailable.
    """

    def __init__(self, strategy: Strategy, fallbacks: int = 3) -> None:
        if fallbacks < 0:
            raise SimulationError(f"fallbacks must be >= 0, got {fallbacks}")
        self.strategy = strategy
        self.fallbacks = fallbacks

    def pick(self, sim: Simulator) -> List[Quorum]:
        """A primary quorum plus fallback candidates."""
        candidates = [self.strategy.sample(sim.rng)]
        pool = list(self.strategy.quorums)
        for _ in range(self.fallbacks):
            index = int(sim.rng.integers(len(pool)))
            candidates.append(pool[index])
        return candidates


class ClosedLoopWorkload:
    """Repeatedly runs an operation with think time in between.

    Parameters
    ----------
    sim:
        The event loop.
    operation:
        Callable ``operation(on_done)`` starting one asynchronous
        operation and invoking ``on_done(result)`` at completion.
    think_time:
        Mean exponential think time between operations.
    operations:
        Stop after this many completions.
    """

    def __init__(
        self,
        sim: Simulator,
        operation: Callable[[Callable[[Any], None]], None],
        think_time: float = 5.0,
        operations: int = 100,
    ) -> None:
        self.sim = sim
        self.operation = operation
        self.think_time = think_time
        self.remaining = operations
        self.completed: List[Any] = []

    def start(self) -> None:
        """Kick off the loop."""
        self.sim.schedule(0.0, self._issue)

    def _issue(self) -> None:
        if self.remaining <= 0:
            return
        self.remaining -= 1
        self.operation(self._done)

    def _done(self, result: Any) -> None:
        self.completed.append(result)
        if self.remaining > 0:
            delay = float(self.sim.rng.exponential(self.think_time))
            self.sim.schedule(delay, self._issue)


class PoissonWorkload:
    """Open-loop Poisson arrivals of fire-and-forget operations."""

    def __init__(
        self,
        sim: Simulator,
        operation: Callable[[], None],
        rate: float,
        stop_at: Optional[float] = None,
    ) -> None:
        if rate <= 0:
            raise SimulationError(f"rate must be positive, got {rate}")
        self.sim = sim
        self.operation = operation
        self.rate = rate
        self.stop_at = stop_at
        self.issued = 0

    def start(self) -> None:
        """Schedule the first arrival."""
        self._schedule_next()

    def _schedule_next(self) -> None:
        delay = float(self.sim.rng.exponential(1.0 / self.rate))
        self.sim.schedule(delay, self._fire)

    def _fire(self) -> None:
        if self.stop_at is not None and self.sim.now >= self.stop_at:
            return
        self.issued += 1
        self.operation()
        self._schedule_next()
