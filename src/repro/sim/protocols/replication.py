"""Quorum-replicated register (the h-grid protocol's data operations).

The hierarchical grid of [9] was proposed to manage replicated data with
three operations (§4.1 of the paper):

* ``read``        — needs a **read quorum** (row-cover); concurrent reads
  are allowed;
* ``blind write`` — needs a **write quorum** (full-line); concurrent
  blind writes are allowed (last-writer-wins by timestamp);
* ``read-write``  — needs a **read-write quorum** and gives exclusive
  read-modify-write semantics (version = max seen + 1).

Because every read quorum intersects every write quorum, a read always
sees the latest completed write's version; the test suite asserts this
*regular register* property under message delays and crashes.

An operation succeeds only if every member of the chosen quorum responds
before the timeout — matching the availability semantics analysed in the
paper (a quorum must be fully alive).  Clients may retry over several
candidate quorums; the oracle probe in :mod:`repro.sim.failures` measures
the analytic availability directly.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ...core.errors import ProtocolError
from ...core.quorum_system import Quorum
from ..network import Message, Network
from ..node import Node

Version = Tuple[float, int]  # (sequence-or-timestamp, writer id)


@dataclass
class OperationResult:
    """Outcome of a client operation."""

    kind: str
    ok: bool
    value: Any = None
    version: Optional[Version] = None
    started_at: float = 0.0
    finished_at: float = 0.0
    attempts: int = 1

    @property
    def latency(self) -> float:
        """Virtual-time duration of the operation."""
        return self.finished_at - self.started_at


class ReplicaNode(Node):
    """Stores one versioned copy of the register.

    Replica state is durable across crashes (the paper's crashes are
    transient process outages, not disk losses); while down, the replica
    simply does not respond, which is what makes quorums unavailable.
    """

    def __init__(self, node_id: int, network: Network) -> None:
        super().__init__(node_id, network)
        self.version: Version = (0.0, -1)
        self.value: Any = None
        self.reads_served = 0
        self.writes_served = 0

    def on_message(self, src: int, message: Message) -> None:
        if message.kind == "read_req":
            self.reads_served += 1
            self.send(
                src,
                Message(
                    "read_resp",
                    {
                        "op": message.payload["op"],
                        "version": self.version,
                        "value": self.value,
                    },
                ),
            )
        elif message.kind == "write_req":
            version = tuple(message.payload["version"])
            if version > self.version:
                self.version = version
                self.value = message.payload["value"]
            self.writes_served += 1
            self.send(src, Message("write_ack", {"op": message.payload["op"]}))
        else:
            raise ProtocolError(f"replica got unknown message {message.kind!r}")


class ReplicatedRegisterClient(Node):
    """Client executing read / blind-write / read-write operations.

    Parameters
    ----------
    node_id:
        Client id (use ids disjoint from the replicas').
    network:
        The shared network.
    timeout:
        Virtual-time budget per quorum attempt.
    """

    def __init__(self, node_id: int, network: Network, timeout: float = 50.0) -> None:
        super().__init__(node_id, network)
        self.timeout = timeout
        self.results: List[OperationResult] = []
        self._op_counter = itertools.count()
        self._pending: Dict[int, Dict[str, Any]] = {}

    # ------------------------------------------------------------------
    # Public operations
    # ------------------------------------------------------------------
    def read(
        self,
        quorums: Sequence[Quorum],
        on_done: Optional[Callable[[OperationResult], None]] = None,
    ) -> None:
        """Regular read over candidate read quorums (tried in order)."""
        self._start_op("read", list(quorums), None, on_done)

    def blind_write(
        self,
        quorums: Sequence[Quorum],
        value: Any,
        on_done: Optional[Callable[[OperationResult], None]] = None,
    ) -> None:
        """Blind write over write quorums: timestamp ordering, one phase."""
        self._start_op("blind_write", list(quorums), value, on_done)

    def read_write(
        self,
        quorums: Sequence[Quorum],
        update: Callable[[Any], Any],
        on_done: Optional[Callable[[OperationResult], None]] = None,
    ) -> None:
        """Read-modify-write over read-write quorums: two phases
        (collect versions, then write max+1)."""
        self._start_op("read_write", list(quorums), update, on_done)

    # ------------------------------------------------------------------
    # Operation machinery
    # ------------------------------------------------------------------
    def _start_op(self, kind, quorums, argument, on_done) -> None:
        if not quorums:
            raise ProtocolError("operation needs at least one candidate quorum")
        op = next(self._op_counter)
        self._pending[op] = {
            "kind": kind,
            "quorums": quorums,
            "attempt": 0,
            "argument": argument,
            "on_done": on_done,
            "started_at": self.sim.now,
            "phase": None,
            "waiting": set(),
            "responses": {},
        }
        self._attempt(op)

    def _attempt(self, op: int) -> None:
        state = self._pending.get(op)
        if state is None:
            return
        if state["attempt"] >= len(state["quorums"]):
            self._finish(op, ok=False)
            return
        quorum = frozenset(state["quorums"][state["attempt"]])
        state["attempt"] += 1
        state["quorum"] = quorum
        state["waiting"] = set(quorum)
        state["responses"] = {}
        kind = state["kind"]
        if kind == "blind_write":
            state["phase"] = "write"
            version = (self.sim.now, self.node_id)
            state["version"] = version
            for member in sorted(quorum):
                self.send(
                    member,
                    Message(
                        "write_req",
                        {"op": op, "version": version, "value": state["argument"]},
                    ),
                )
        else:
            state["phase"] = "read"
            for member in sorted(quorum):
                self.send(member, Message("read_req", {"op": op}))
        attempt_index = state["attempt"]
        self.sim.schedule(self.timeout, self._check_timeout, op, attempt_index)

    def _check_timeout(self, op: int, attempt_index: int) -> None:
        state = self._pending.get(op)
        if state is None or state["attempt"] != attempt_index:
            return
        if state["waiting"]:
            self._attempt(op)  # try the next candidate quorum

    def on_message(self, src: int, message: Message) -> None:
        op = message.payload.get("op")
        state = self._pending.get(op)
        if state is None or src not in state["waiting"]:
            return
        state["waiting"].discard(src)
        if message.kind == "read_resp":
            state["responses"][src] = (
                tuple(message.payload["version"]),
                message.payload["value"],
            )
        if state["waiting"]:
            return
        self._phase_complete(op)

    def _phase_complete(self, op: int) -> None:
        state = self._pending[op]
        kind = state["kind"]
        if state["phase"] == "read":
            version, value = max(state["responses"].values(), key=lambda vv: vv[0])
            if kind == "read":
                state["version"], state["value"] = version, value
                self._finish(op, ok=True)
                return
            # read_write: move to the write phase with version max+1.
            new_value = state["argument"](value)
            new_version = (version[0] + 1.0, self.node_id)
            state["version"], state["value"] = new_version, new_value
            state["phase"] = "write"
            state["waiting"] = set(state["quorum"])
            for member in sorted(state["quorum"]):
                self.send(
                    member,
                    Message(
                        "write_req",
                        {"op": op, "version": new_version, "value": new_value},
                    ),
                )
            return
        # Write phase complete.
        state["value"] = state.get("value", state.get("argument"))
        self._finish(op, ok=True)

    def _finish(self, op: int, ok: bool) -> None:
        state = self._pending.pop(op)
        result = OperationResult(
            kind=state["kind"],
            ok=ok,
            value=state.get("value"),
            version=state.get("version"),
            started_at=state["started_at"],
            finished_at=self.sim.now,
            attempts=state["attempt"],
        )
        self.results.append(result)
        if state["on_done"] is not None:
            state["on_done"](result)
