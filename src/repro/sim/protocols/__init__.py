"""Quorum-based distributed protocols on top of the simulator."""

from .mutex import MutexMonitor, MutexNode
from .reconfiguration import ReconfigurableRegister
from .rwlock import RWLockMonitor, RWLockNode
from .replication import OperationResult, ReplicaNode, ReplicatedRegisterClient

__all__ = [
    "MutexMonitor",
    "MutexNode",
    "OperationResult",
    "RWLockMonitor",
    "RWLockNode",
    "ReconfigurableRegister",
    "ReplicaNode",
    "ReplicatedRegisterClient",
]
