"""Online reconfiguration of a replicated register.

§5's growth operations ("introducing new elements") change the quorum
system while data lives in it.  This protocol migrates a replicated
register from one quorum system to another — e.g. from ``h-triang(t)``
to one of its §5 growths — without losing the latest committed value:

1. **seal** — read the latest ``(version, value)`` through a quorum of
   the *old* system;
2. **transfer** — write it (with a bumped version) through a quorum of
   the *new* system;
3. **flip** — subsequent operations use the new system only.

The client refuses new operations while a migration is in flight (a
stop-the-world epoch change, the textbook baseline; non-blocking
reconfiguration needs joint quorums and is out of scope).  Safety
follows from quorum intersection *within* each epoch plus the version
bump at the hand-off: post-flip reads see a version at least as high as
the sealed one, so they can never return pre-migration state.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence

from ...core.errors import ProtocolError
from ...core.quorum_system import Quorum, QuorumSystem
from .replication import OperationResult, ReplicatedRegisterClient


class ReconfigurableRegister:
    """A replicated-register façade with epoch-based reconfiguration.

    Parameters
    ----------
    client:
        The underlying :class:`ReplicatedRegisterClient` (replicas for
        *all* epochs must be registered on its network — new elements
        are added as replicas before :meth:`reconfigure` is called).
    system:
        The initial quorum system.
    candidate_quorums:
        How many quorums to offer per operation (retries).
    """

    def __init__(
        self,
        client: ReplicatedRegisterClient,
        system: QuorumSystem,
        candidate_quorums: int = 3,
    ) -> None:
        if candidate_quorums < 1:
            raise ProtocolError("need at least one candidate quorum")
        self._client = client
        self._system = system
        self._candidates = candidate_quorums
        self._migrating = False
        self.epoch = 0
        self.migrations: List[OperationResult] = []

    # ------------------------------------------------------------------
    @property
    def system(self) -> QuorumSystem:
        """The quorum system of the current epoch."""
        return self._system

    @property
    def migrating(self) -> bool:
        """Whether a reconfiguration is in flight."""
        return self._migrating

    def _pick_quorums(self, system: Optional[QuorumSystem] = None) -> List[Quorum]:
        system = system or self._system
        quorums = system.minimal_quorums()
        rng = self._client.sim.rng
        return [
            quorums[int(rng.integers(len(quorums)))]
            for _ in range(self._candidates)
        ]

    def _guard(self) -> None:
        if self._migrating:
            raise ProtocolError("register is reconfiguring; retry after the flip")

    # ------------------------------------------------------------------
    # Normal operations (delegate to the current epoch's system)
    # ------------------------------------------------------------------
    def read(self, on_done: Callable[[OperationResult], None]) -> None:
        """Read through the current epoch's quorums."""
        self._guard()
        self._client.read(self._pick_quorums(), on_done=on_done)

    def write(self, update: Callable[[Any], Any], on_done) -> None:
        """Read-modify-write through the current epoch's quorums."""
        self._guard()
        self._client.read_write(self._pick_quorums(), update, on_done=on_done)

    # ------------------------------------------------------------------
    # Reconfiguration
    # ------------------------------------------------------------------
    def reconfigure(
        self,
        new_system: QuorumSystem,
        on_done: Callable[[bool], None],
    ) -> None:
        """Migrate to ``new_system`` (seal -> transfer -> flip).

        ``on_done(ok)`` reports whether the migration committed; on
        failure the register stays in the old epoch and remains usable.
        """
        self._guard()
        self._migrating = True

        def sealed(result: OperationResult) -> None:
            self.migrations.append(result)
            if not result.ok:
                self._migrating = False
                on_done(False)
                return

            sealed_value = result.value

            def transferred(write_result: OperationResult) -> None:
                self.migrations.append(write_result)
                if not write_result.ok:
                    self._migrating = False
                    on_done(False)
                    return
                self._system = new_system
                self.epoch += 1
                self._migrating = False
                on_done(True)

            # Bumping the version happens inside read_write (max+1), so
            # the transferred copy supersedes every old-epoch replica.
            self._client.read_write(
                self._pick_quorums(new_system),
                lambda _current: sealed_value,
                on_done=transferred,
            )

        self._client.read(self._pick_quorums(), on_done=sealed)
