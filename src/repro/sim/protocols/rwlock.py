"""Distributed reader-writer locks from read / write quorum families.

The h-grid protocol (§4.1 of the paper) defines three operations with
three quorum families: *reads* (row-covers) may run concurrently,
*blind writes* (full-lines) may run concurrently with each other, and
*read-writes* exclude everything.  This module realises the same
semantics as a locking service:

* a **shared** lock contacts a read quorum; members count concurrent
  shared holders (reads never conflict with reads);
* an **exclusive** lock contacts a read-write quorum; a member grants it
  only while it has no shared or exclusive holder.

Correctness follows from the family intersections: every read quorum
intersects every read-write quorum, so a shared and an exclusive holder
would need a common member — which never grants both.  Two exclusive
holders conflict on the intersection of their read-write quorums.  Two
shared locks never conflict anywhere, which is exactly the concurrency
the paper's read operation wants.

Fairness/deadlock policy: members queue conflicting requests in
``(timestamp, node id)`` order; a shared request never waits behind
another shared request.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional, Set, Tuple

from ...core.errors import ProtocolError
from ...core.quorum_system import Quorum
from ..network import Message, Network
from ..node import Node

Priority = Tuple[float, int]


class RWLockNode(Node):
    """A member of the locking service; also issues its own requests."""

    def __init__(self, node_id: int, network: Network) -> None:
        super().__init__(node_id, network)
        # Member (arbiter) state.
        self._shared_holders: Set[int] = set()
        self._exclusive_holder: Optional[int] = None
        self._queue: List[Tuple[Priority, str, int]] = []
        # Requester state.
        self._mode: Optional[str] = None
        self._quorum: Optional[Quorum] = None
        self._grants: Set[int] = set()
        self._on_acquired: Optional[Callable[[], None]] = None
        self._held: Optional[Tuple[str, Quorum]] = None
        # Statistics.
        self.shared_grants = 0
        self.exclusive_grants = 0

    # ------------------------------------------------------------------
    # Requester API
    # ------------------------------------------------------------------
    @property
    def holds_lock(self) -> Optional[str]:
        """``"shared"``, ``"exclusive"`` or ``None``."""
        return self._held[0] if self._held else None

    def acquire_shared(self, quorum: Quorum, on_acquired: Callable[[], None]) -> None:
        """Take a shared (read) lock through a read quorum."""
        self._acquire("shared", quorum, on_acquired)

    def acquire_exclusive(self, quorum: Quorum, on_acquired: Callable[[], None]) -> None:
        """Take an exclusive (read-write) lock through a read-write quorum."""
        self._acquire("exclusive", quorum, on_acquired)

    def _acquire(self, mode: str, quorum: Quorum, on_acquired) -> None:
        if self._mode is not None or self._held is not None:
            raise ProtocolError(
                f"node {self.node_id} already holds or awaits a lock"
            )
        self._mode = mode
        self._quorum = frozenset(quorum)
        self._grants = set()
        self._on_acquired = on_acquired
        priority = (self.sim.now, self.node_id)
        for member in sorted(self._quorum):
            self.send(member, Message("lock_request", {"mode": mode, "priority": priority}))

    def release(self) -> None:
        """Release the held lock at every member."""
        if self._held is None:
            raise ProtocolError(f"node {self.node_id} holds no lock")
        mode, quorum = self._held
        self._held = None
        for member in sorted(quorum):
            self.send(member, Message("lock_release", {"mode": mode}))

    def on_crash(self) -> None:
        # Requester state is volatile; member state is durable (see the
        # mutual-exclusion module for the rationale).
        self._mode = None
        self._quorum = None
        self._grants = set()
        self._on_acquired = None
        self._held = None

    # ------------------------------------------------------------------
    # Messages
    # ------------------------------------------------------------------
    def on_message(self, src: int, message: Message) -> None:
        if message.kind == "lock_request":
            self._member_request(src, message.payload["mode"], tuple(message.payload["priority"]))
        elif message.kind == "lock_release":
            self._member_release(src, message.payload["mode"])
        elif message.kind == "lock_grant":
            self._requester_grant(src)
        else:
            raise ProtocolError(f"rwlock got unknown message {message.kind!r}")

    # --- member side ----------------------------------------------------
    def _member_request(self, src: int, mode: str, priority: Priority) -> None:
        if self._can_grant(mode):
            self._member_grant(src, mode)
        else:
            heapq.heappush(self._queue, (priority, mode, src))

    def _can_grant(self, mode: str) -> bool:
        if self._exclusive_holder is not None:
            return False
        if mode == "shared":
            return True
        return not self._shared_holders

    def _member_grant(self, src: int, mode: str) -> None:
        if mode == "shared":
            self._shared_holders.add(src)
            self.shared_grants += 1
        else:
            self._exclusive_holder = src
            self.exclusive_grants += 1
        self.send(src, Message("lock_grant", {}))

    def _member_release(self, src: int, mode: str) -> None:
        if mode == "shared":
            self._shared_holders.discard(src)
        elif self._exclusive_holder == src:
            self._exclusive_holder = None
        self._drain_queue()

    def _drain_queue(self) -> None:
        while self._queue and self._can_grant(self._queue[0][1]):
            _priority, mode, src = heapq.heappop(self._queue)
            self._member_grant(src, mode)

    # --- requester side ---------------------------------------------------
    def _requester_grant(self, src: int) -> None:
        if self._quorum is None or src not in self._quorum or src in self._grants:
            # Stale grant (aborted/crashed request): hand it straight back.
            self.send(src, Message("lock_release", {"mode": "shared"}))
            return
        self._grants.add(src)
        if self._grants == self._quorum:
            mode, quorum = self._mode, self._quorum
            self._mode = None
            self._quorum = None
            self._grants = set()
            callback = self._on_acquired
            self._on_acquired = None
            self._held = (mode, quorum)
            if callback is not None:
                callback()


class RWLockMonitor:
    """Safety monitor: readers may overlap; writers exclude everyone."""

    def __init__(self) -> None:
        self.readers: Set[int] = set()
        self.writer: Optional[int] = None
        self.violations = 0
        self.reader_sessions = 0
        self.writer_sessions = 0
        self.max_concurrent_readers = 0

    def enter(self, node_id: int, mode: str) -> None:
        """Record a lock acquisition."""
        if mode == "shared":
            if self.writer is not None:
                self.violations += 1
            self.readers.add(node_id)
            self.reader_sessions += 1
            self.max_concurrent_readers = max(
                self.max_concurrent_readers, len(self.readers)
            )
        else:
            if self.writer is not None or self.readers:
                self.violations += 1
            self.writer = node_id
            self.writer_sessions += 1

    def leave(self, node_id: int, mode: str) -> None:
        """Record a lock release."""
        if mode == "shared":
            self.readers.discard(node_id)
        elif self.writer == node_id:
            self.writer = None
