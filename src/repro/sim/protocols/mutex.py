"""Quorum-based distributed mutual exclusion.

The protocol outlined in §1 of the paper, hardened the way Maekawa's
algorithm hardens it: a requester collects permissions (grants) from
every member of one quorum; the intersection property then guarantees
mutual exclusion.  Deadlocks between concurrently granted requests are
resolved with INQUIRE/YIELD messages ordered by Lamport-style priorities
``(timestamp, node id)``.

Message flow
------------
``request(ts)``      requester -> member     ask for the member's grant
``grant``            member -> requester     permission
``inquire``          member -> requester     someone older wants my grant
``yield``            requester -> member     grant returned (not in CS yet)
``release``          requester -> member     CS left, grant returned

Safety (never two nodes in the critical section) holds for *any* quorum
system satisfying Definition 3.1 and is asserted by a global monitor in
the tests, for every construction in :mod:`repro.systems`.

Failure semantics: requester state is volatile (a crashed requester's
pending request dies; stray grants arriving later are returned), while
arbiter grant state is durable across the paper's transient crashes —
forgetting an outstanding grant would break mutual exclusion.  A grant
held by a requester that crashes *before releasing* is only recovered
when that requester returns (stray-grant bounce) — full grant leases are
out of scope, as in the paper's protocol sketch (§1), which also defers
deadlock/fault handling to the underlying mutual-exclusion machinery.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional, Set, Tuple

from ...core.errors import ProtocolError
from ...core.quorum_system import Quorum
from ..network import Message, Network
from ..node import Node

Priority = Tuple[float, int]  # (timestamp, requester id): smaller wins


class MutexNode(Node):
    """A node that is both a quorum member (arbiter) and a requester."""

    def __init__(self, node_id: int, network: Network) -> None:
        super().__init__(node_id, network)
        # Arbiter state.
        self._granted_to: Optional[Priority] = None
        self._queue: List[Priority] = []
        self._inquired = False
        # Requester state.
        self._quorum: Optional[Quorum] = None
        self._grants: Set[int] = set()
        self._priority: Optional[Priority] = None
        self._in_cs = False
        self._on_acquired: Optional[Callable[[], None]] = None
        # Statistics.
        self.grants_issued = 0
        self.cs_entries = 0
        self.requests_aborted = 0

    # ------------------------------------------------------------------
    # Requester API
    # ------------------------------------------------------------------
    @property
    def in_critical_section(self) -> bool:
        """Whether this node currently holds the lock."""
        return self._in_cs

    def request_cs(
        self,
        quorum: Quorum,
        on_acquired: Callable[[], None],
        timeout: Optional[float] = None,
        on_failed: Optional[Callable[[], None]] = None,
    ) -> None:
        """Ask the given quorum for the lock.

        ``on_acquired`` fires once every member has granted.  With a
        ``timeout``, a request that has not acquired all grants in time
        is aborted: collected grants are returned (so crashed members
        cannot wedge the rest of the system) and ``on_failed`` fires.
        """
        if self._quorum is not None:
            raise ProtocolError(f"node {self.node_id} already has a pending request")
        self._quorum = frozenset(quorum)
        self._grants = set()
        self._priority = (self.sim.now, self.node_id)
        self._on_acquired = on_acquired
        for member in sorted(self._quorum):
            self.send(member, Message("request", {"priority": self._priority}))
        if timeout is not None:
            priority = self._priority
            self.sim.schedule(timeout, self._abort_if_pending, priority, on_failed)

    def _abort_if_pending(self, priority: Priority, on_failed) -> None:
        """Timeout hook: abandon the request if it is still the active one."""
        if self._priority != priority or self._in_cs:
            return
        quorum = self._quorum or frozenset()
        granted = set(self._grants)
        self._quorum = None
        self._grants = set()
        self._priority = None
        self._on_acquired = None
        for member in sorted(granted):
            self.send(member, Message("release", {}))
        self.requests_aborted += 1
        if on_failed is not None:
            on_failed()

    def release_cs(self) -> None:
        """Leave the critical section and return all grants."""
        if not self._in_cs:
            raise ProtocolError(f"node {self.node_id} is not in the CS")
        quorum = self._quorum or frozenset()
        self._in_cs = False
        self._quorum = None
        self._grants = set()
        self._priority = None
        self._on_acquired = None
        for member in sorted(quorum):
            self.send(member, Message("release", {}))

    # ------------------------------------------------------------------
    # Crash semantics: requester state is volatile (an in-flight request
    # dies with the node), but the *arbiter* grant state is durable —
    # forgetting an outstanding grant on recovery would let the member
    # grant a second, overlapping request and break mutual exclusion.
    # This mirrors Maekawa-style implementations that log grants.
    # ------------------------------------------------------------------
    def on_crash(self) -> None:
        self._quorum = None
        self._grants = set()
        self._priority = None
        self._in_cs = False
        self._on_acquired = None

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------
    def on_message(self, src: int, message: Message) -> None:
        handler = getattr(self, f"_handle_{message.kind}", None)
        if handler is None:
            raise ProtocolError(f"mutex node got unknown message {message.kind!r}")
        handler(src, message)

    # --- arbiter side -------------------------------------------------
    def _handle_request(self, src: int, message: Message) -> None:
        priority = tuple(message.payload["priority"])
        entry = (priority, src)
        if self._granted_to is None:
            self._grant(priority, src)
        else:
            heapq.heappush(self._queue, entry)
            # If the newcomer outranks the current holder, try to recall.
            if priority < self._granted_to[0] and not self._inquired:
                self._inquired = True
                self.send(self._granted_to[1], Message("inquire", {}))

    def _grant(self, priority: Priority, requester: int) -> None:
        self._granted_to = (priority, requester)
        self._inquired = False
        self.grants_issued += 1
        self.send(requester, Message("grant", {}))

    def _handle_release(self, src: int, message: Message) -> None:
        if self._granted_to is not None and self._granted_to[1] != src:
            # Stale release from a crashed/recovered node; ignore.
            return
        self._granted_to = None
        self._inquired = False
        self._grant_next()

    def _handle_yield(self, src: int, message: Message) -> None:
        if self._granted_to is None or self._granted_to[1] != src:
            return
        # Re-queue the yielder, then grant to the best waiting request.
        heapq.heappush(self._queue, (self._granted_to[0], src))
        self._granted_to = None
        self._inquired = False
        self._grant_next()

    def _grant_next(self) -> None:
        while self._queue:
            priority, requester = heapq.heappop(self._queue)
            self._grant(priority, requester)
            return

    # --- requester side -------------------------------------------------
    def _handle_grant(self, src: int, message: Message) -> None:
        if self._quorum is None or src not in self._quorum:
            # Grant for an aborted request: give it straight back.
            self.send(src, Message("release", {}))
            return
        self._grants.add(src)
        if self._grants == self._quorum and not self._in_cs:
            self._in_cs = True
            self.cs_entries += 1
            callback = self._on_acquired
            if callback is not None:
                callback()

    def _handle_inquire(self, src: int, message: Message) -> None:
        if self._in_cs:
            return  # keep the grant; release will free it
        if self._quorum is None or src not in self._grants:
            return
        self._grants.discard(src)
        self.send(src, Message("yield", {}))


class MutexMonitor:
    """Global safety monitor: counts simultaneous critical sections.

    Wire it into the ``on_acquired`` callbacks; `violations` stays 0 for
    any correct quorum system (asserted by the tests for every
    construction, and demonstrably broken by a non-intersecting family).

    ``capacity`` generalises to k-mutual exclusion (k-coteries allow up
    to ``k`` concurrent holders): a violation is recorded only when the
    holder count would exceed the capacity.
    """

    def __init__(self, capacity: int = 1) -> None:
        self.capacity = capacity
        self.holders: Set[int] = set()
        self.violations = 0
        self.entries = 0
        self.max_concurrent = 0

    def enter(self, node_id: int) -> None:
        """Record a CS entry."""
        if len(self.holders) >= self.capacity:
            self.violations += 1
        self.holders.add(node_id)
        self.max_concurrent = max(self.max_concurrent, len(self.holders))
        self.entries += 1

    def leave(self, node_id: int) -> None:
        """Record a CS exit."""
        self.holders.discard(node_id)
