"""Allow ``python -m repro`` to run the CLI."""

from .cli import main

main()
