"""Chaos scenario: split a hot shard mid-workload, under injected faults.

The sharded analogue of :mod:`repro.service.chaos`: a seeded zipf
workload runs against a :class:`~repro.sharding.coordinator.
ShardedCoordinator` whose per-shard transports each carry a randomized
:class:`~repro.runtime.faults.FaultSchedule` (crashes, flapping,
latency spikes, drops, duplicates), and partway through the run the
hottest shard is split **live** — drain, copy, flip — while clients keep
reading and writing.  Afterwards the harness checks (through the shared
invariant registry, :mod:`repro.scenarios.invariants`):

1. **acked-write-durable** — every acknowledged write survives on the
   *final* map's authoritative shard replicas (resharding lost nothing).
2. **no-stale-unflagged-read** — a read returns a version at least as
   new as everything acknowledged for that key before the read began
   (sound under concurrency: the expectation is snapshotted before the
   read's first await).
3. **version-integrity** — every non-null value a read returns was
   actually issued for that key (values are registered *before* the
   write attempt, so a partially-applied failed write is a known, legal
   version).
4. **replica-ts-monotone** — every replica journal ever created (old
   epochs included) only moves forward, across repair, hinted handoff
   and migration transfer alike.

A reshard that *aborts* under faults (census or copy could not reach a
quorum) is a recorded outcome, not a violation — the old epoch stays
authoritative and the invariants must still hold.  The run is seeded and
bit-reproducible in ``"sim"`` mode; the report carries a trace digest to
prove it.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from ..core.errors import ServiceError
from ..runtime.clock import VirtualClock, WallClock, run_virtual
from ..runtime.faults import FaultSchedule
from ..runtime.rng import RngStreams
from ..scenarios.invariants import (
    CORE_INVARIANTS,
    audit_durability,
    audit_monotone,
    check_fresh_read,
    check_issued_value,
)
from ..scenarios.scorecard import digest as _digest
from ..scenarios.scorecard import invariants_block
from ..service.coordinator import OperationFailed
from ..service.loadgen import key_weights
from ..service.replica import NULL_TIMESTAMP, Replica
from .coordinator import ReshardEvent, ShardedCoordinator
from .service import SimShardFleet, build_sim_backend_factory
from .shardmap import Shard, ShardMap

_TS = Tuple[int, int]

_MODES = ("sim", "wall")

__all__ = ["ReshardChaosConfig", "ReshardReport", "run_reshard_chaos"]


@dataclass
class ReshardChaosConfig:
    """Shape of one resharding chaos run."""

    ops: int = 600
    read_fraction: float = 0.6
    keys: int = 48
    skew: float = 0.9
    clients: int = 4
    shards: int = 4
    spec: str = "majority:5"
    reshard: str = "split"  # "split" | "grow" | "none"
    reshard_at: float = 0.4  # fraction of ops after which the reshard fires
    crash_rate: float = 0.1
    epoch: float = 40.0
    timeout: float = 200.0
    max_attempts: int = 6
    base_latency: float = 0.5
    mean_latency: float = 2.0
    service_time_ms: float = 0.0
    # Quorum leases (0 = off): per-shard coordinators re-join every
    # sampled quorum each lease_ttl operations, so the drain→copy→flip
    # handoff runs under continuous membership churn.
    lease_ttl: int = 0

    def validate(self) -> None:
        if self.ops < 1:
            raise ServiceError("chaos needs at least one op")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ServiceError("read fraction must be in [0,1]")
        if self.keys < 1 or self.clients < 1 or self.shards < 1:
            raise ServiceError("keys, clients and shards must be positive")
        if self.reshard not in ("split", "grow", "none"):
            raise ServiceError(f"unknown reshard kind {self.reshard!r}")
        if not 0.0 < self.reshard_at < 1.0:
            raise ServiceError("reshard_at must be in (0,1)")
        if not 0.0 <= self.crash_rate <= 1.0:
            raise ServiceError("crash rate must be in [0,1]")
        if self.lease_ttl < 0:
            raise ServiceError("lease_ttl must be >= 0")


@dataclass
class ReshardReport:
    """Everything one resharding chaos run produced, JSON-exportable."""

    seed: int
    mode: str
    config: ReshardChaosConfig
    operations: Dict[str, int]
    reshards: List[Dict[str, Any]] = field(default_factory=list)
    violations: List[Dict[str, Any]] = field(default_factory=list)
    map_versions: Tuple[int, int] = (1, 1)
    map_digest: str = ""
    injected: Dict[str, int] = field(default_factory=dict)
    hashes: Dict[str, str] = field(default_factory=dict)
    # Wall-clock duration; NOT in to_dict() (seed-stable snapshot).
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """True when every safety invariant held."""
        return not self.violations

    @property
    def reshard_completed(self) -> bool:
        """True when at least one reshard ran to a successful flip."""
        return any(event.get("ok") for event in self.reshards)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "mode": self.mode,
            "config": asdict(self.config),
            "operations": dict(sorted(self.operations.items())),
            "reshards": self.reshards,
            "map_versions": list(self.map_versions),
            "map_digest": self.map_digest,
            "faults_injected": dict(sorted(self.injected.items())),
            "hashes": dict(sorted(self.hashes.items())),
            "invariants": invariants_block(CORE_INVARIANTS, self.violations),
        }


def run_reshard_chaos(
    *,
    seed: int = 0,
    config: Optional[ReshardChaosConfig] = None,
    mode: str = "sim",
) -> ReshardReport:
    """Run one seeded resharding-under-faults scenario and audit safety.

    ``mode`` is ``"sim"`` (virtual time, milliseconds of wall clock) or
    ``"wall"`` (same stack over a real clock).  The same seed produces
    the same shard map, fault schedules, workload plan and trace digest.
    """
    if mode not in _MODES:
        raise ServiceError(f"unknown mode {mode!r}; pick one of {_MODES}")
    if config is None:
        config = ReshardChaosConfig()
    config.validate()
    from ..cli import build_system

    streams = RngStreams(seed)
    clock = VirtualClock() if mode == "sim" else WallClock()
    fleet = SimShardFleet()

    # Monotonicity journals for every replica ever created, old epochs
    # included (retired backends close, their journals stay auditable).
    journals: List[Tuple[str, int, Dict[str, List[_TS]]]] = []

    def on_apply_for(shard: Shard, replica: Replica) -> None:
        journal: Dict[str, List[_TS]] = {}
        journals.append((shard.shard_id, replica.replica_id, journal))

        def on_apply(key: str, counter: int, writer: int) -> None:
            journal.setdefault(key, []).append((counter, writer))

        replica.on_apply = on_apply

    def schedule_for(shard: Shard) -> FaultSchedule:
        # Derived from the shard *name*: split children get their own
        # deterministic schedules without shifting anyone else's draws.
        return FaultSchedule.random(
            streams.stream(f"reshardchaos.schedule.{shard.shard_id}"),
            sorted(shard.system.universe.ids),
            float(config.ops),
            crash_rate=config.crash_rate,
            epoch=config.epoch,
        )

    systems = [build_system(config.spec) for _ in range(config.shards)]
    shard_map = ShardMap.uniform(systems, specs=[config.spec] * config.shards)
    factory = build_sim_backend_factory(
        clock,
        streams,
        base_latency=config.base_latency,
        mean_latency=config.mean_latency,
        service_time_ms=config.service_time_ms,
        timeout=config.timeout,
        max_attempts=config.max_attempts,
        lease_ttl=config.lease_ttl,
        schedule_for=schedule_for,
        on_apply_for=on_apply_for,
        fleet=fleet,
    )
    sharded = ShardedCoordinator(shard_map, factory)

    # Workload plan: seed-deterministic (kind, key) sequence, zipf keys.
    plan_rng = streams.stream("reshardchaos.plan")
    weights = key_weights(config.keys, config.skew)
    reads = plan_rng.random(config.ops) < config.read_fraction
    key_indices = plan_rng.choice(config.keys, size=config.ops, p=weights)
    plan = [
        ("read" if is_read else "write", f"k{int(k):03d}")
        for is_read, k in zip(reads, key_indices)
    ]
    reshard_tick = int(config.ops * config.reshard_at)

    acked_max: Dict[str, _TS] = {}
    acked_values: Dict[Tuple[str, int, int], Any] = {}
    issued_for_key: Dict[str, Set[Any]] = {}
    violations: List[Dict[str, Any]] = []
    trace: List[Dict[str, Any]] = []
    counts = {
        "reads_ok": 0,
        "reads_failed": 0,
        "writes_ok": 0,
        "writes_failed": 0,
        "preloads": 0,
    }

    def record_ack(key: str, timestamp: _TS, value: Any) -> None:
        acked_values[(key, timestamp[0], timestamp[1])] = value
        if timestamp > acked_max.get(key, NULL_TIMESTAMP):
            acked_max[key] = timestamp

    async def _run() -> None:
        # Preload at fault tick -1 (before every fault window) so each
        # key has an acknowledged baseline version.
        fleet.advance_faults(-1.0)
        for key_index in range(config.keys):
            key, value = f"k{key_index:03d}", f"preload-{key_index}"
            issued_for_key.setdefault(key, set()).add(value)
            ack = await sharded.write(key, value)
            record_ack(key, (ack.counter, ack.writer), value)
            counts["preloads"] += 1

        next_op = itertools.count()
        reshard_task: List["asyncio.Task"] = []

        def maybe_fire_reshard() -> None:
            if reshard_task or config.reshard == "none":
                return
            target = sharded.tracker.hottest(sharded.map.shard_ids)
            if target is None:
                target = sharded.map.shard_ids[0]
            if config.reshard == "split":
                coro = sharded.split_shard(target)
            else:
                coro = sharded.grow_shard(target)
            reshard_task.append(asyncio.ensure_future(coro))

        async def worker(client: int) -> None:
            while True:
                index = next(next_op)
                if index >= config.ops:
                    return
                # Fault clocks advance in op order; they only move forward.
                fleet.advance_faults(float(index))
                if index >= reshard_tick:
                    maybe_fire_reshard()
                kind, key = plan[index]
                if kind == "write":
                    value = f"v{index}-c{client}"
                    # Registered before the attempt: a failed write's
                    # partially-applied version is a legal read result.
                    issued_for_key.setdefault(key, set()).add(value)
                    try:
                        ack = await sharded.write(key, value)
                    except OperationFailed:
                        counts["writes_failed"] += 1
                        trace.append(
                            {"op": index, "kind": kind, "key": key, "outcome": "failed"}
                        )
                    else:
                        counts["writes_ok"] += 1
                        record_ack(key, (ack.counter, ack.writer), value)
                        trace.append(
                            {
                                "op": index,
                                "kind": kind,
                                "key": key,
                                "outcome": "ok",
                                "ts": [ack.counter, ack.writer],
                            }
                        )
                else:
                    # Snapshot the expectation before the first await so a
                    # concurrent-with-read write cannot fake a violation.
                    expected = acked_max.get(key)
                    try:
                        result = await sharded.read(key)
                    except OperationFailed:
                        counts["reads_failed"] += 1
                        trace.append(
                            {"op": index, "kind": kind, "key": key, "outcome": "failed"}
                        )
                        continue
                    counts["reads_ok"] += 1
                    timestamp = (result.counter, result.writer)
                    trace.append(
                        {
                            "op": index,
                            "kind": kind,
                            "key": key,
                            "outcome": "ok",
                            "ts": list(timestamp),
                        }
                    )
                    check_issued_value(
                        violations,
                        op=index,
                        key=key,
                        value=result.value,
                        timestamp=timestamp,
                        issued=issued_for_key.get(key, set()),
                    )
                    check_fresh_read(
                        violations,
                        op=index,
                        key=key,
                        timestamp=timestamp,
                        stale=result.stale,
                        expected=expected,
                    )

        await asyncio.gather(*(worker(c) for c in range(config.clients)))
        if reshard_task:
            await reshard_task[0]
        await sharded.drain()

        # Durability: audited fault-free against the FINAL map's
        # authoritative replicas, before the backends close.
        for key in sorted(acked_max):
            expected = acked_max[key]
            audit_durability(
                violations,
                key=key,
                expected=expected,
                acked_value=acked_values[(key, expected[0], expected[1])],
                replicas=sharded.backend_for_key(key).replicas,
            )
        await sharded.close()

    started = time.perf_counter()
    if mode == "sim":
        assert isinstance(clock, VirtualClock)
        run_virtual(_run(), clock=clock)
    else:
        asyncio.run(_run())
    elapsed = time.perf_counter() - started

    # Monotonicity across every replica journal ever created.
    for shard_id, rid, journal in journals:
        audit_monotone(violations, journal, replica=rid, shard=shard_id)

    injected: Dict[str, int] = {}
    for transport in fleet.fault_transports:
        for fault_kind, count in transport.injected.items():
            injected[fault_kind] = injected.get(fault_kind, 0) + count

    snapshot = sharded.snapshot()
    hashes = {
        "trace": _digest(trace),
        "snapshot": _digest(snapshot),
    }
    return ReshardReport(
        seed=seed,
        mode=mode,
        config=config,
        operations=counts,
        reshards=snapshot["reshards"],
        violations=violations,
        map_versions=(1, sharded.map.version),
        map_digest=sharded.map.digest(),
        injected=injected,
        hashes=hashes,
        elapsed_seconds=elapsed,
    )
