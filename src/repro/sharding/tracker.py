"""Per-shard load tracking and hot-shard detection.

The live half of resharding needs a signal: which shard is taking a
disproportionate share of the traffic?  :class:`ShardLoadTracker` keeps
one op counter and one latency histogram per shard — the same
:mod:`repro.runtime.metrics` primitives the rest of the stack uses, so
snapshots stay exact and deterministic — and flags shards whose op count
exceeds ``factor ×`` the mean as hot.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from ..runtime.metrics import Counter, LatencyHistogram

__all__ = ["ShardLoadTracker"]


class ShardLoadTracker:
    """Exact per-shard op counts and latencies for hot-shard detection."""

    def __init__(self) -> None:
        self.ops: Dict[str, Counter] = {}
        self.latency: Dict[str, LatencyHistogram] = {}

    def record_op(self, shard_id: str, kind: str, latency_ms: float) -> None:
        """Count one operation routed to ``shard_id``."""
        counter = self.ops.get(shard_id)
        if counter is None:
            counter = self.ops[shard_id] = Counter()
            self.latency[shard_id] = LatencyHistogram()
        counter += 1
        self.latency[shard_id].record(latency_ms)

    def ops_for(self, shard_id: str) -> int:
        counter = self.ops.get(shard_id)
        return int(counter) if counter is not None else 0

    @property
    def total_ops(self) -> int:
        return sum(int(c) for c in self.ops.values())

    def hot_shards(
        self,
        shard_ids: Sequence[str],
        *,
        factor: float = 2.0,
        min_ops: int = 50,
    ) -> List[str]:
        """Shards carrying more than ``factor ×`` the mean load.

        Only shards in ``shard_ids`` (the *current* map — stale counters
        for already-split shards must not retrigger) are considered, and
        a shard needs at least ``min_ops`` recorded operations so a cold
        map with two lukewarm keys is not declared on fire.  Hottest
        first, ties broken by id — deterministic.
        """
        if not shard_ids:
            return []
        counts = {sid: self.ops_for(sid) for sid in shard_ids}
        mean = sum(counts.values()) / len(shard_ids)
        if mean <= 0:
            return []
        hot = [
            sid
            for sid, count in counts.items()
            if count >= min_ops and count > factor * mean
        ]
        return sorted(hot, key=lambda sid: (-counts[sid], sid))

    def hottest(self, shard_ids: Sequence[str]) -> Optional[str]:
        """The single busiest current shard (None when nothing recorded)."""
        counts = {sid: self.ops_for(sid) for sid in shard_ids}
        if not counts or all(count == 0 for count in counts.values()):
            return None
        return min(counts, key=lambda sid: (-counts[sid], sid))

    def snapshot(self) -> Dict[str, Any]:
        """Deterministic per-shard summary (sorted by shard id)."""
        return {
            sid: {
                "ops": int(self.ops[sid]),
                "latency_ms": self.latency[sid].summary(),
            }
            for sid in sorted(self.ops)
        }

    def __repr__(self) -> str:
        return f"<ShardLoadTracker shards={len(self.ops)} ops={self.total_ops}>"
