"""Multi-partition namespace over heterogeneous quorum systems.

The serving layer (:mod:`repro.service`) runs one quorum system over one
flat key space; this package scales it out.  A :class:`ShardMap`
partitions the hash ring into contiguous shards, each backed by its own
— possibly heterogeneous — quorum system (h-triang for hot shards,
majority for small ones).  A :class:`ShardedCoordinator` consults the
map per key and fans out through the ordinary per-shard
:class:`~repro.service.coordinator.Coordinator` machinery, so every
serving feature (hedging, breakers, hinted handoff, degraded reads)
composes unchanged.

Resharding is *live*: per-shard load tracking
(:class:`ShardLoadTracker`) detects hot shards, and
:meth:`ShardedCoordinator.split_shard` /
:meth:`~ShardedCoordinator.merge_shards` /
:meth:`~ShardedCoordinator.grow_shard` migrate state with the
drain → copy → flip handoff modelled by
:mod:`repro.sim.protocols.reconfiguration`: writes to a migrating shard
are queued, versioned state is copied timestamp-preservingly, reads
dual-fetch from both epochs, and the map version flips atomically — no
acknowledged write is lost across a reshard.
"""

from .shardmap import SLOT_SPACE, Shard, ShardMap, key_slot
from .tracker import ShardLoadTracker
from .coordinator import ReshardEvent, ShardBackend, ShardedCoordinator
from .service import SimShardFleet, build_sim_backend_factory
from .bench import ShardBenchReport, compare_shard_scaling, run_sharded_benchmark
from .chaos import ReshardChaosConfig, ReshardReport, run_reshard_chaos

__all__ = [
    "SLOT_SPACE",
    "Shard",
    "ShardMap",
    "key_slot",
    "ShardLoadTracker",
    "ReshardEvent",
    "ShardBackend",
    "ShardedCoordinator",
    "SimShardFleet",
    "build_sim_backend_factory",
    "ShardBenchReport",
    "compare_shard_scaling",
    "run_sharded_benchmark",
    "ReshardChaosConfig",
    "ReshardReport",
    "run_reshard_chaos",
]
