"""Backend factories: wiring shards to the virtual-time serving stack.

A :class:`~repro.sharding.coordinator.ShardedCoordinator` needs a
factory that turns a :class:`~repro.sharding.shardmap.Shard` into a
complete serving stack.  :func:`build_sim_backend_factory` builds the
canonical one: per shard, fresh replicas, a latency-spending
:class:`~repro.service.simtransport.SimTransport` on a *shared* clock
(the whole fleet lives in one virtual timeline), optionally wrapped in a
:class:`~repro.service.faults.FaultyTransport`, and a per-shard
:class:`~repro.service.coordinator.Coordinator` served at its system's
LP-optimal strategy.

Determinism discipline: every shard derives its transport, fault and
coordinator randomness from *named* streams
(``shard.<id>.transport`` etc.) of one :class:`~repro.runtime.rng.
RngStreams` root, so adding, splitting or merging shards never shifts
another shard's draws — the sharded analogue of the loadgen rule that
adding a client must not move anyone else's randomness.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..analysis.load import optimal_strategy
from ..runtime.clock import Clock
from ..runtime.faults import FaultSchedule
from ..runtime.rng import RngStreams
from ..service.coordinator import Coordinator
from ..service.faults import FaultyTransport
from ..service.replica import Replica
from ..service.simtransport import SimTransport
from ..service.transport import DEFAULT_TIMEOUT_MS
from .coordinator import ShardBackend
from .shardmap import Shard

__all__ = ["SimShardFleet", "build_sim_backend_factory"]


class SimShardFleet:
    """Bookkeeping shared by every backend one factory creates.

    The chaos harness needs two global views that the per-shard stacks
    cannot provide: every :class:`~repro.service.faults.FaultyTransport`
    ever created (to advance their fault clocks in lockstep) and every
    :class:`~repro.service.replica.Replica` ever created (to audit
    monotonicity journals after backends retire).
    """

    def __init__(self) -> None:
        self.fault_transports: List[FaultyTransport] = []
        self.all_replicas: List[Replica] = []
        self.fault_tick = 0.0

    def advance_faults(self, tick: float) -> None:
        """Set every fault transport's clock to ``tick``."""
        self.fault_tick = float(tick)
        for transport in self.fault_transports:
            transport.clock = float(tick)

    def register_fault_transport(self, transport: FaultyTransport) -> None:
        """Track a transport, stamping it with the fleet's current tick.

        Backends are created lazily — a shard split mid-run (or the very
        first touch of a shard) must join the fleet's timeline, not
        restart at tick 0 and re-live the early fault windows.
        """
        transport.clock = self.fault_tick
        self.fault_transports.append(transport)


def build_sim_backend_factory(
    clock: Clock,
    streams: RngStreams,
    *,
    base_latency: float = 1.0,
    mean_latency: float = 4.0,
    service_time_ms: float = 0.0,
    timeout: float = DEFAULT_TIMEOUT_MS,
    max_attempts: int = 5,
    hedge_spares: int = 0,
    lease_ttl: int = 0,
    read_write: Optional[float] = None,
    schedule_for: Optional[Callable[[Shard], Optional[FaultSchedule]]] = None,
    on_apply_for: Optional[Callable[[Shard, Replica], None]] = None,
    fleet: Optional[SimShardFleet] = None,
) -> Callable[[Shard], ShardBackend]:
    """Build the canonical virtual-time backend factory.

    Parameters
    ----------
    clock:
        Shared time source for every shard's transport — one timeline.
    streams:
        Root RNG; each shard uses its own named sub-streams.
    base_latency, mean_latency, service_time_ms:
        Per-shard :class:`SimTransport` parameters; a positive service
        time gives each replica finite capacity, which is what makes
        shard-scaling measurable.
    timeout, max_attempts, hedge_spares:
        Per-shard coordinator knobs.
    lease_ttl:
        When positive, every per-shard coordinator runs quorum leases:
        each sampled quorum must re-join (Timed-Quorum style) every
        ``lease_ttl`` operations.  Freshly built backends start with no
        leases at all, so a reshard's drain→copy→flip handoff happens
        under membership churn — exactly the dynamic-environment case
        the lease machinery exists for.
    read_write:
        When set to a read fraction in ``[0, 1]``, every per-shard
        coordinator is built with the read/write capacity-LP strategy
        pair (:func:`repro.analysis.capacity.read_write_capacity`)
        optimised at that fraction instead of the unified write-legal
        optimum — reads served from small read quorums, writes from the
        matched write distribution.  Shards created later (splits,
        merges, §5 growth) solve their own LP at the same fraction.
    schedule_for:
        Optional ``shard -> FaultSchedule`` hook; a non-None schedule
        wraps that shard's transport in a :class:`FaultyTransport`
        seeded from ``shard.<id>.faults``.
    on_apply_for:
        Optional hook called for every created replica (e.g. to attach
        monotonicity journals): ``on_apply_for(shard, replica)``.
    fleet:
        Shared bookkeeping sink; pass one to tick fault clocks and audit
        replicas across reshards.
    """

    def factory(shard: Shard) -> ShardBackend:
        system = shard.system
        replicas = [
            Replica(element, name=system.universe.name_of(element))
            for element in system.universe.ids
        ]
        if on_apply_for is not None:
            for replica in replicas:
                on_apply_for(shard, replica)
        if fleet is not None:
            fleet.all_replicas.extend(replicas)
        transport = SimTransport(
            replicas,
            clock=clock,
            rng=streams.stream(f"shard.{shard.shard_id}.transport"),
            base_latency=base_latency,
            mean_latency=mean_latency,
            service_time_ms=service_time_ms,
        )
        outer = transport
        if schedule_for is not None:
            schedule = schedule_for(shard)
            if schedule is not None:
                faulty = FaultyTransport(
                    transport,
                    schedule,
                    seed=streams.seed_for(f"shard.{shard.shard_id}.faults"),
                )
                if fleet is not None:
                    fleet.register_fault_transport(faulty)
                outer = faulty
        if read_write is not None:
            from ..analysis.capacity import read_write_capacity

            strategy = read_write_capacity(
                system, read_fraction=read_write
            ).strategy
        else:
            strategy = optimal_strategy(system)
        coordinator = Coordinator(
            system,
            outer,
            strategy,
            seed=streams.seed_for(f"shard.{shard.shard_id}.coordinator"),
            timeout=timeout,
            max_attempts=max_attempts,
            hedge_spares=hedge_spares,
            lease_ttl=lease_ttl,
        )
        return ShardBackend(shard, replicas, outer, coordinator)

    return factory
