"""Versioned hash-partitioned shard map over quorum systems.

A :class:`ShardMap` carves the 32-bit hash ring ``[0, SLOT_SPACE)`` into
contiguous half-open slot ranges, one per :class:`Shard`, each backed by
its own :class:`~repro.core.quorum_system.QuorumSystem` instance.  Keys
route by :func:`key_slot` — the first 8 bytes of the key's SHA-256,
reduced mod ``SLOT_SPACE`` — which is stable across processes, Python
versions and runs, so a serialized map routes identically everywhere
(``hash()`` would not: it is salted per process).

Maps are immutable values: every reshaping operation (:meth:`~ShardMap.
split`, :meth:`~ShardMap.merge`, :meth:`~ShardMap.replace`) returns a
*new* map with ``version`` bumped by one.  The sharded coordinator
installs a new map atomically after the handoff protocol completes, so
``version`` totally orders the epochs a running service has served
under — the in-memory analogue of the bounded-validity views that Timed
Quorum Systems use to make dynamic membership safe.

Serialisation embeds both the CLI spec string (``"htriang:15"``) when
one is known and the explicit quorum description from
:mod:`repro.core.serialization`, so a map round-trips even for systems
produced by growth operations that no spec names.  :meth:`ShardMap.
digest` hashes the canonical JSON form — the stable fingerprint the
determinism tests compare across sim and wall modes.
"""

from __future__ import annotations

import hashlib
import json
from bisect import bisect_right
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.errors import ServiceError
from ..core.quorum_system import QuorumSystem
from ..core.serialization import system_from_dict, system_to_dict

__all__ = ["SLOT_SPACE", "Shard", "ShardMap", "key_slot"]

#: Size of the hash ring: slots are in ``[0, SLOT_SPACE)``.
SLOT_SPACE = 1 << 32

#: Format marker for serialized shard maps.
FORMAT = "repro-shard-map/1"


def key_slot(key: str) -> int:
    """Deterministic slot of a key on the hash ring.

    First 8 bytes of SHA-256, big-endian, mod ``SLOT_SPACE`` — process-
    and platform-independent, unlike the salted builtin ``hash()``.
    """
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % SLOT_SPACE


class Shard:
    """One partition: a slot range served by one quorum system.

    Parameters
    ----------
    shard_id:
        Stable name; split children are named ``"<id>.0"`` / ``"<id>.1"``.
    lo, hi:
        Half-open slot range ``[lo, hi)`` on the hash ring.
    system:
        The quorum system serving this range.
    spec:
        Optional CLI-style spec (``"majority:5"``) the system was built
        from; kept for compact serialisation and display.
    """

    __slots__ = ("shard_id", "lo", "hi", "system", "spec")

    def __init__(
        self,
        shard_id: str,
        lo: int,
        hi: int,
        system: QuorumSystem,
        spec: Optional[str] = None,
    ) -> None:
        if not shard_id:
            raise ServiceError("shard needs a non-empty id")
        if not 0 <= lo < hi <= SLOT_SPACE:
            raise ServiceError(
                f"shard {shard_id!r}: invalid slot range [{lo}, {hi})"
            )
        self.shard_id = shard_id
        self.lo = lo
        self.hi = hi
        self.system = system
        self.spec = spec

    @property
    def slots(self) -> int:
        """Number of slots (share of the ring) this shard owns."""
        return self.hi - self.lo

    def owns_slot(self, slot: int) -> bool:
        return self.lo <= slot < self.hi

    def to_dict(self) -> Dict[str, Any]:
        blob: Dict[str, Any] = {
            "id": self.shard_id,
            "lo": self.lo,
            "hi": self.hi,
            "system": system_to_dict(self.system),
        }
        if self.spec is not None:
            blob["spec"] = self.spec
        return blob

    @classmethod
    def from_dict(cls, blob: Dict[str, Any]) -> "Shard":
        spec = blob.get("spec")
        if spec is not None:
            # Rebuild through the spec so named constructions keep their
            # native class (growth ops, analytic loads); fall back to the
            # explicit quorums if the spec no longer parses.
            from ..cli import build_system

            try:
                system: QuorumSystem = build_system(spec)
            except Exception:
                system = system_from_dict(blob["system"])
        else:
            system = system_from_dict(blob["system"])
        return cls(str(blob["id"]), int(blob["lo"]), int(blob["hi"]), system, spec)

    def __repr__(self) -> str:
        return (
            f"<Shard {self.shard_id!r} [{self.lo}, {self.hi})"
            f" system={self.system.system_name!r} n={self.system.n}>"
        )


class ShardMap:
    """Immutable versioned routing table: slot ranges → quorum systems.

    Shards must tile the ring exactly — contiguous, non-overlapping,
    jointly covering ``[0, SLOT_SPACE)`` — which the constructor
    validates, so a malformed map can never route a key nowhere (or to
    two places).
    """

    def __init__(self, shards: Sequence[Shard], version: int = 1) -> None:
        if not shards:
            raise ServiceError("shard map needs at least one shard")
        if version < 1:
            raise ServiceError(f"map version must be >= 1, got {version}")
        ordered = sorted(shards, key=lambda s: s.lo)
        seen: set = set()
        cursor = 0
        for shard in ordered:
            if shard.shard_id in seen:
                raise ServiceError(f"duplicate shard id {shard.shard_id!r}")
            seen.add(shard.shard_id)
            if shard.lo != cursor:
                raise ServiceError(
                    f"shard ranges must tile the ring: gap/overlap at slot "
                    f"{cursor} (shard {shard.shard_id!r} starts at {shard.lo})"
                )
            cursor = shard.hi
        if cursor != SLOT_SPACE:
            raise ServiceError(
                f"shard ranges must cover the ring: ends at {cursor}, "
                f"expected {SLOT_SPACE}"
            )
        self.shards: Tuple[Shard, ...] = tuple(ordered)
        self.version = int(version)
        self._los: List[int] = [s.lo for s in self.shards]
        self._by_id: Dict[str, Shard] = {s.shard_id: s for s in self.shards}

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def shard_for_slot(self, slot: int) -> Shard:
        if not 0 <= slot < SLOT_SPACE:
            raise ServiceError(f"slot {slot} outside [0, {SLOT_SPACE})")
        return self.shards[bisect_right(self._los, slot) - 1]

    def shard_for_key(self, key: str) -> Shard:
        """The shard serving ``key`` under this map version."""
        return self.shard_for_slot(key_slot(key))

    def shard(self, shard_id: str) -> Shard:
        try:
            return self._by_id[shard_id]
        except KeyError:
            raise ServiceError(f"unknown shard {shard_id!r}") from None

    @property
    def shard_ids(self) -> List[str]:
        """Shard ids in ring order."""
        return [s.shard_id for s in self.shards]

    def __len__(self) -> int:
        return len(self.shards)

    def __contains__(self, shard_id: object) -> bool:
        return shard_id in self._by_id

    # ------------------------------------------------------------------
    # Builders and reshaping (each returns a NEW map, version + 1)
    # ------------------------------------------------------------------
    @classmethod
    def uniform(
        cls,
        systems: Sequence[QuorumSystem],
        *,
        specs: Optional[Sequence[Optional[str]]] = None,
        version: int = 1,
    ) -> "ShardMap":
        """Equal slot ranges, one per system, shards named ``s0..s{k-1}``.

        The last shard absorbs the rounding remainder so the ranges tile
        the ring exactly.
        """
        count = len(systems)
        if count == 0:
            raise ServiceError("uniform map needs at least one system")
        if specs is not None and len(specs) != count:
            raise ServiceError("specs must match systems in length")
        width = SLOT_SPACE // count
        shards = []
        for index, system in enumerate(systems):
            lo = index * width
            hi = SLOT_SPACE if index == count - 1 else (index + 1) * width
            spec = specs[index] if specs is not None else None
            shards.append(Shard(f"s{index}", lo, hi, system, spec))
        return cls(shards, version=version)

    def _rebuilt(self, shards: Sequence[Shard]) -> "ShardMap":
        return ShardMap(shards, version=self.version + 1)

    def split(
        self,
        shard_id: str,
        left_system: QuorumSystem,
        right_system: QuorumSystem,
        *,
        left_spec: Optional[str] = None,
        right_spec: Optional[str] = None,
        cut: Optional[int] = None,
    ) -> "ShardMap":
        """Split a shard at ``cut`` (range midpoint by default).

        The children are named ``"<id>.0"`` and ``"<id>.1"``, each with
        its own (possibly different) quorum system — the hot half can
        move to a larger h-triang while the cold half stays small.
        """
        old = self.shard(shard_id)
        if cut is None:
            cut = old.lo + old.slots // 2
        if not old.lo < cut < old.hi:
            raise ServiceError(
                f"cut {cut} outside shard {shard_id!r} range ({old.lo}, {old.hi})"
            )
        replacement = [
            Shard(f"{shard_id}.0", old.lo, cut, left_system, left_spec),
            Shard(f"{shard_id}.1", cut, old.hi, right_system, right_spec),
        ]
        shards = [s for s in self.shards if s.shard_id != shard_id] + replacement
        return self._rebuilt(shards)

    def merge(
        self,
        left_id: str,
        right_id: str,
        merged_system: QuorumSystem,
        *,
        merged_id: Optional[str] = None,
        spec: Optional[str] = None,
    ) -> "ShardMap":
        """Merge two ring-adjacent shards into one.

        The merged shard takes ``merged_id`` (default ``"<left>+<right>"``)
        and serves the union range with ``merged_system``.
        """
        left, right = self.shard(left_id), self.shard(right_id)
        if left.hi != right.lo:
            raise ServiceError(
                f"can only merge ring-adjacent shards; {left_id!r} ends at "
                f"{left.hi}, {right_id!r} starts at {right.lo}"
            )
        name = merged_id if merged_id is not None else f"{left_id}+{right_id}"
        merged = Shard(name, left.lo, right.hi, merged_system, spec)
        shards = [
            s for s in self.shards if s.shard_id not in (left_id, right_id)
        ] + [merged]
        return self._rebuilt(shards)

    def replace(
        self,
        shard_id: str,
        new_system: QuorumSystem,
        *,
        spec: Optional[str] = None,
    ) -> "ShardMap":
        """Swap a shard's quorum system in place (same range, same id).

        This is the §5 membership-growth path: an h-triang shard grows
        via ``grown("t1"/"t2"/"grid")`` into a larger system without
        changing what keys it owns.
        """
        old = self.shard(shard_id)
        replacement = Shard(shard_id, old.lo, old.hi, new_system, spec)
        shards = [s for s in self.shards if s.shard_id != shard_id] + [replacement]
        return self._rebuilt(shards)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": FORMAT,
            "version": self.version,
            "slot_space": SLOT_SPACE,
            "shards": [s.to_dict() for s in self.shards],
        }

    @classmethod
    def from_dict(cls, blob: Dict[str, Any]) -> "ShardMap":
        if blob.get("format") != FORMAT:
            raise ServiceError(
                f"unsupported shard-map format {blob.get('format')!r}"
            )
        if blob.get("slot_space") != SLOT_SPACE:
            raise ServiceError(
                f"shard map uses slot space {blob.get('slot_space')}, "
                f"expected {SLOT_SPACE}"
            )
        shards = [Shard.from_dict(item) for item in blob["shards"]]
        return cls(shards, version=int(blob.get("version", 1)))

    def dumps(self) -> str:
        """Canonical JSON form (sorted keys, no whitespace drift)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def loads(cls, text: str) -> "ShardMap":
        return cls.from_dict(json.loads(text))

    def digest(self) -> str:
        """SHA-256 of the canonical JSON — the map's stable fingerprint."""
        return hashlib.sha256(self.dumps().encode("utf-8")).hexdigest()

    def describe(self) -> List[Dict[str, Any]]:
        """Human-facing summary rows (for the CLI)."""
        return [
            {
                "shard": s.shard_id,
                "range": [s.lo, s.hi],
                "share": s.slots / SLOT_SPACE,
                "system": s.system.system_name,
                "n": s.system.n,
                "spec": s.spec,
            }
            for s in self.shards
        ]

    def __repr__(self) -> str:
        return f"<ShardMap v{self.version} shards={len(self.shards)}>"
