"""Sharded coordinator: per-key routing plus live resharding.

:class:`ShardedCoordinator` fronts a fleet of ordinary per-shard
:class:`~repro.service.coordinator.Coordinator` stacks.  Every operation
routes through the current :class:`~repro.sharding.shardmap.ShardMap`;
the per-shard machinery (hedging, breakers, hinted handoff) is untouched,
so a sharded service inherits the whole serving feature set.

Resharding follows the seal → transfer → flip epoch handoff modelled by
:mod:`repro.sim.protocols.reconfiguration`, adapted to a live service:

1. **Drain** — the source shards are marked migrating; new writes to
   them queue on an event instead of failing (the service-layer
   equivalent of the protocol's sealed-epoch ``ProtocolError``), and the
   migration waits for in-flight writes to finish.
2. **Copy** — a key census (the ``keys`` replica op, accepted only when
   the responders contain a quorum) enumerates the source state; each
   key is quorum-read from the source and written into its destination
   shard **timestamp-preservingly** via
   :meth:`~repro.service.coordinator.Coordinator.transfer`, so a copy
   can never shadow a newer client write.  Destination backends are
   built in a *staging* area, keyed separately from the live fleet, so
   a membership-growth migration that keeps the shard id never collides
   with the epoch it is replacing.
3. **Flip** — the new map installs and staged backends promote in one
   atomic step (no awaits in between), queued writers wake and
   re-route, and displaced/retired backends are drained and closed.
   Reads issued *during* the copy dual-fetch from both epochs and take
   the newest version.

A copy failure aborts the reshard: the old map stays authoritative,
queued writers wake against the unchanged epoch, and the staged
destination backends are discarded — the same "old epoch remains live
until the flip" guarantee the sim protocol provides.

Everything here relies on asyncio's run-to-await atomicity: routing
checks, in-flight accounting and the flip each happen between await
points, so no lock is needed and seeded runs stay deterministic.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Dict, List, NamedTuple, Optional, Set, Tuple

from ..core.errors import ServiceError
from ..core.quorum_system import QuorumSystem
from ..service.coordinator import (
    Coordinator,
    OperationFailed,
    ReadResult,
    WriteResult,
)
from ..service.replica import NULL_TIMESTAMP, Replica
from ..service.transport import Transport
from .shardmap import Shard, ShardMap
from .tracker import ShardLoadTracker

__all__ = ["ReshardEvent", "ShardBackend", "ShardedCoordinator"]


class ShardBackend(NamedTuple):
    """One shard's serving stack: replicas, transport, coordinator."""

    shard: Shard
    replicas: List[Replica]
    transport: Transport
    coordinator: Coordinator

    async def close(self) -> None:
        await self.coordinator.drain()
        await self.transport.close()


#: Builds the serving stack for one shard (called lazily, synchronously).
BackendFactory = Callable[[Shard], ShardBackend]


class ReshardEvent(NamedTuple):
    """One entry of the resharding log."""

    kind: str  # "split" | "merge" | "grow"
    shard_ids: Tuple[str, ...]  # source shards
    ok: bool
    from_version: int
    to_version: int
    keys_moved: int
    detail: str = ""


class _Migration:
    """In-flight handoff state for one source shard."""

    __slots__ = ("flipped", "drained")

    def __init__(self) -> None:
        #: Set when the map has flipped (or the reshard aborted); queued
        #: writers wait on this and then re-route.
        self.flipped = asyncio.Event()
        #: Set when the shard has zero in-flight writes.
        self.drained = asyncio.Event()


class ShardedCoordinator:
    """Routes KV operations through a live, resharding-capable map.

    Parameters
    ----------
    shard_map:
        Initial routing table.
    backend_factory:
        Builds the per-shard serving stack; must be synchronous so
        routing decisions stay atomic under asyncio.
    tracker:
        Per-shard load tracker (a fresh one by default).
    """

    def __init__(
        self,
        shard_map: ShardMap,
        backend_factory: BackendFactory,
        *,
        tracker: Optional[ShardLoadTracker] = None,
    ) -> None:
        self.map = shard_map
        self.backend_factory = backend_factory
        self.tracker = tracker if tracker is not None else ShardLoadTracker()
        self._backends: Dict[str, ShardBackend] = {}
        #: Destination backends of the in-flight reshard, promoted into
        #: ``_backends`` at the flip (discarded on abort).
        self._staging: Dict[str, ShardBackend] = {}
        self._pending: Optional[ShardMap] = None
        self._inflight: Dict[str, int] = {}
        self._migrations: Dict[str, _Migration] = {}
        self.resharding_log: List[ReshardEvent] = []

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _backend(self, shard: Shard) -> ShardBackend:
        """Live backend for a *current-map* shard (created lazily)."""
        backend = self._backends.get(shard.shard_id)
        if backend is None:
            backend = self.backend_factory(shard)
            self._backends[shard.shard_id] = backend
        elif backend.shard is not shard:
            raise ServiceError(
                f"backend for {shard.shard_id!r} is bound to a stale shard"
            )
        return backend

    def _dest_backend(self, target: Shard) -> ShardBackend:
        """Backend for a *new-map* shard during a migration.

        Shards untouched by the reshard keep their Shard object, so
        their live backend is reused; genuinely new epochs are staged.
        """
        existing = self._backends.get(target.shard_id)
        if existing is not None and existing.shard is target:
            return existing
        backend = self._staging.get(target.shard_id)
        if backend is None:
            backend = self.backend_factory(target)
            self._staging[target.shard_id] = backend
        return backend

    def backend_for_key(self, key: str) -> ShardBackend:
        """The backend currently serving ``key`` (creates it lazily)."""
        return self._backend(self.map.shard_for_key(key))

    # ------------------------------------------------------------------
    # Client operations
    # ------------------------------------------------------------------
    async def read(self, key: str) -> ReadResult:
        """Quorum read; during a migration, dual-read both epochs.

        The source shard stays authoritative until the flip, so its
        answer alone would be correct — the dual-read is the standard
        belt-and-braces of epoch handoffs (and exercises the destination
        before it takes over).
        """
        shard = self.map.shard_for_key(key)
        migration = self._migrations.get(shard.shard_id)
        backend = self._backend(shard)
        if migration is None or migration.flipped.is_set():
            result = await backend.coordinator.read(key)
            self.tracker.record_op(shard.shard_id, "read", result.latency)
            return result
        new_map = self._pending
        results: List[ReadResult] = []
        if new_map is not None:
            new_backend = self._dest_backend(new_map.shard_for_key(key))
            try:
                results.append(await new_backend.coordinator.read(key))
            except OperationFailed:
                pass  # destination still warming up: old epoch decides
        try:
            results.append(await backend.coordinator.read(key))
        except OperationFailed:
            if not results:
                raise
            # Only the destination answered.  Pre-flip it may still be
            # missing uncopied keys, so its answer is best-effort — the
            # same contract as a degraded read.
            results = [result._replace(stale=True) for result in results]
        best = max(results, key=lambda r: (r.counter, r.writer))
        self.tracker.record_op(shard.shard_id, "read", best.latency)
        return best

    async def write(self, key: str, value: Any) -> WriteResult:
        """Quorum write; queued (not failed) while the shard migrates."""
        while True:
            shard = self.map.shard_for_key(key)
            sid = shard.shard_id
            migration = self._migrations.get(sid)
            if migration is not None and not migration.flipped.is_set():
                # The shard is sealed: wait for the flip, then re-route
                # under whichever map won (new on success, old on abort).
                await migration.flipped.wait()
                continue
            backend = self._backend(shard)
            # No await between the migration check and this increment, so
            # a migration can never start "between" them.
            self._inflight[sid] = self._inflight.get(sid, 0) + 1
            try:
                result = await backend.coordinator.write(key, value)
            finally:
                self._inflight[sid] -= 1
                pending = self._migrations.get(sid)
                if pending is not None and self._inflight[sid] == 0:
                    pending.drained.set()
            self.tracker.record_op(sid, "write", result.latency)
            return result

    # ------------------------------------------------------------------
    # Resharding (drain -> copy -> flip)
    # ------------------------------------------------------------------
    async def _census(self, backend: ShardBackend) -> List[str]:
        """Union of keys on the shard's replicas, quorum-validated.

        Every replica is asked; the union over responders is trusted only
        when the responders contain a quorum — then every key with an
        acknowledged write is present on at least one responder (any
        write quorum intersects every quorum).  Retries up to the
        coordinator's attempt budget with a deadline-long pause between
        tries, so a transient fault window does not abort a migration.
        """
        replica_ids = sorted(r.replica_id for r in backend.replicas)
        request = {"op": "keys"}
        attempts = max(1, backend.coordinator.max_attempts)
        for attempt in range(1, attempts + 1):
            outcomes = await asyncio.gather(
                *(
                    backend.transport.call(rid, request, backend.coordinator.timeout)
                    for rid in replica_ids
                ),
                return_exceptions=True,
            )
            responders: Set[int] = set()
            keys: Set[str] = set()
            for rid, outcome in zip(replica_ids, outcomes):
                if isinstance(outcome, BaseException):
                    continue
                if outcome.payload.get("ok"):
                    responders.add(rid)
                    keys.update(outcome.payload.get("keys", ()))
            if backend.shard.system.contains_quorum(frozenset(responders)):
                return sorted(keys)
            if attempt < attempts:
                await backend.transport.pause(backend.coordinator.timeout)
        raise OperationFailed("census", backend.shard.shard_id, attempts, 0.0)

    async def _migrate(
        self, kind: str, source_ids: Tuple[str, ...], new_map: ShardMap
    ) -> ReshardEvent:
        """Run the drain → copy → flip handoff from ``source_ids``.

        On failure the old map remains authoritative and the event is
        logged with ``ok=False`` — a reshard can abort, never corrupt.
        """
        for sid in source_ids:
            if sid in self._migrations:
                raise ServiceError(f"shard {sid!r} is already migrating")
        if self._pending is not None:
            raise ServiceError("another reshard is already in flight")
        from_version = self.map.version
        migrations = {sid: _Migration() for sid in source_ids}
        self._migrations.update(migrations)
        self._pending = new_map
        for sid, migration in migrations.items():
            if self._inflight.get(sid, 0) == 0:
                migration.drained.set()
        keys_moved = 0
        try:
            # 1. Drain: wait out in-flight writes to every source shard.
            for migration in migrations.values():
                await migration.drained.wait()
            # 2. Copy: census each source, quorum-read every key, transfer
            #    it (timestamp preserved) into its destination shard.
            for sid in source_ids:
                source = self._backend(self.map.shard(sid))
                for key in await self._census(source):
                    result = await source.coordinator.read(key)
                    if (result.counter, result.writer) <= NULL_TIMESTAMP:
                        continue
                    target = self._dest_backend(new_map.shard_for_key(key))
                    await target.coordinator.transfer(
                        key, result.value, result.counter, result.writer
                    )
                    keys_moved += 1
        except (OperationFailed, ServiceError) as exc:
            # Abort: discard the staged destinations, keep the old epoch.
            # State updates first (synchronously), teardown awaits after.
            discarded = list(self._staging.values())
            self._staging.clear()
            self._pending = None
            for sid, migration in migrations.items():
                self._migrations.pop(sid, None)
                migration.flipped.set()
            event = ReshardEvent(
                kind, source_ids, False, from_version, from_version, keys_moved,
                detail=str(exc),
            )
            self.resharding_log.append(event)
            for backend in discarded:
                await backend.close()
            return event
        # 3. Flip: install the map and promote staged backends in one
        #    atomic step — every operation after this instant routes by
        #    the new map against the promoted fleet.
        self.map = new_map
        displaced: List[ShardBackend] = []
        for sid, backend in sorted(self._staging.items()):
            old = self._backends.pop(sid, None)
            if old is not None:
                displaced.append(old)
            self._backends[sid] = backend
        self._staging.clear()
        for sid in source_ids:
            if sid not in new_map:
                retired = self._backends.pop(sid, None)
                if retired is not None:
                    displaced.append(retired)
        self._pending = None
        for sid, migration in migrations.items():
            self._migrations.pop(sid, None)
            migration.flipped.set()
        event = ReshardEvent(
            kind, source_ids, True, from_version, new_map.version, keys_moved
        )
        self.resharding_log.append(event)
        for backend in displaced:
            await backend.close()
        return event

    # ------------------------------------------------------------------
    # Public reshaping operations
    # ------------------------------------------------------------------
    async def split_shard(
        self,
        shard_id: str,
        left_system: Optional[QuorumSystem] = None,
        right_system: Optional[QuorumSystem] = None,
        *,
        left_spec: Optional[str] = None,
        right_spec: Optional[str] = None,
    ) -> ReshardEvent:
        """Split a (hot) shard in two, live.

        By default both children reuse the parent's quorum system — pass
        explicit systems to go heterogeneous (e.g. promote the hot half
        to a grown h-triang).
        """
        old = self.map.shard(shard_id)
        left = left_system if left_system is not None else old.system
        right = right_system if right_system is not None else old.system
        new_map = self.map.split(
            shard_id,
            left,
            right,
            left_spec=left_spec if left_spec is not None else old.spec,
            right_spec=right_spec if right_spec is not None else old.spec,
        )
        return await self._migrate("split", (shard_id,), new_map)

    async def merge_shards(
        self,
        left_id: str,
        right_id: str,
        merged_system: Optional[QuorumSystem] = None,
        *,
        spec: Optional[str] = None,
    ) -> ReshardEvent:
        """Merge two ring-adjacent (cold) shards into one, live."""
        left = self.map.shard(left_id)
        system = merged_system if merged_system is not None else left.system
        new_map = self.map.merge(
            left_id,
            right_id,
            system,
            spec=spec if spec is not None else left.spec,
        )
        return await self._migrate("merge", (left_id, right_id), new_map)

    async def grow_shard(self, shard_id: str, construction: str = "t1") -> ReshardEvent:
        """Grow a shard's membership via the paper's §5 growth operations.

        The shard keeps its id and slot range; its quorum system is
        replaced by ``system.grown(construction)`` (h-triang families
        support ``"t1"``, ``"t2"`` and ``"grid"``) and state migrates to
        the enlarged replica set through the same handoff.
        """
        old = self.map.shard(shard_id)
        grown = getattr(old.system, "grown", None)
        if grown is None:
            raise ServiceError(
                f"shard {shard_id!r} system {old.system.system_name!r} "
                "has no growth operations (need an h-triang family system)"
            )
        new_map = self.map.replace(shard_id, grown(construction), spec=None)
        return await self._migrate("grow", (shard_id,), new_map)

    async def split_hottest(
        self, *, factor: float = 2.0, min_ops: int = 50
    ) -> Optional[ReshardEvent]:
        """Detect the hottest overloaded shard and split it (None if cool)."""
        hot = self.tracker.hot_shards(
            self.map.shard_ids, factor=factor, min_ops=min_ops
        )
        if not hot:
            return None
        return await self.split_shard(hot[0])

    # ------------------------------------------------------------------
    # Introspection and teardown
    # ------------------------------------------------------------------
    @property
    def migrating(self) -> List[str]:
        """Source shard ids of the in-flight reshard (empty when idle)."""
        return sorted(self._migrations)

    def snapshot(self) -> Dict[str, Any]:
        """Deterministic summary: map, per-shard load, reshard history."""
        return {
            "map_version": self.map.version,
            "map_digest": self.map.digest(),
            "shards": self.map.describe(),
            "load": self.tracker.snapshot(),
            "reshards": [
                {
                    "kind": e.kind,
                    "shards": list(e.shard_ids),
                    "ok": e.ok,
                    "from_version": e.from_version,
                    "to_version": e.to_version,
                    "keys_moved": e.keys_moved,
                    "detail": e.detail,
                }
                for e in self.resharding_log
            ],
        }

    async def drain(self) -> None:
        """Await hedge stragglers on every live backend."""
        for sid in sorted(self._backends):
            await self._backends[sid].coordinator.drain()

    async def close(self) -> None:
        """Drain and close every backend (idempotent)."""
        for sid in sorted(self._backends):
            await self._backends[sid].close()
        self._backends.clear()
        for sid in sorted(self._staging):
            await self._staging[sid].close()
        self._staging.clear()

    def __repr__(self) -> str:
        return (
            f"<ShardedCoordinator map=v{self.map.version}"
            f" shards={len(self.map)} backends={len(self._backends)}"
            f" migrating={self.migrating}>"
        )
