"""Sharded throughput benchmark under virtual time.

Measures what sharding buys: with a positive per-replica service time
each replica is a finite-capacity FIFO server
(:class:`~repro.service.simtransport.SimTransport`), so a single shard
saturates — queueing delay, then timeouts — while a sharded map spreads
the same workload over more replicas and finishes sooner in *virtual*
time.  Throughput is therefore reported in operations per virtual
second, a deterministic quantity (identical per seed) that honestly
reflects service capacity, unlike wall-clock throughput of an
in-process simulation.

:func:`compare_shard_scaling` runs the same seeded zipf workload at two
shard counts and reports the speedup — the number recorded in
``BENCH_service.json`` and printed by ``quorumtool kvbench --shards``.
"""

from __future__ import annotations

import asyncio
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..core.errors import ServiceError
from ..core.quorum_system import QuorumSystem
from ..runtime.clock import VirtualClock, run_virtual
from ..runtime.metrics import KeyCounter
from ..runtime.rng import RngStreams
from ..scenarios.scorecard import invariants_block
from ..service.coordinator import OperationFailed
from ..service.loadgen import key_weights
from .coordinator import ShardedCoordinator
from .service import build_sim_backend_factory
from .shardmap import ShardMap

__all__ = ["ShardBenchReport", "compare_shard_scaling", "run_sharded_benchmark"]


@dataclass
class ShardBenchReport:
    """Outcome of one sharded virtual-time benchmark run."""

    shards: int
    seed: int
    ops: int
    succeeded: int
    failed: int
    virtual_ms: float
    map_version: int
    map_digest: str
    per_shard: Dict[str, Any] = field(default_factory=dict)
    key_skew: Dict[str, Any] = field(default_factory=dict)
    reshards: List[Dict[str, Any]] = field(default_factory=list)
    read_write: bool = False  # shards served by split read/write pairs
    config: Dict[str, Any] = field(default_factory=dict)  # workload echo

    @property
    def ops_per_virtual_second(self) -> float:
        if self.virtual_ms <= 0:
            return 0.0
        return self.succeeded / (self.virtual_ms / 1000.0)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "shards": self.shards,
            "seed": self.seed,
            "ops": self.ops,
            "succeeded": self.succeeded,
            "failed": self.failed,
            "virtual_ms": self.virtual_ms,
            "ops_per_virtual_second": self.ops_per_virtual_second,
            "map_version": self.map_version,
            "map_digest": self.map_digest,
            "per_shard": self.per_shard,
            "key_skew": self.key_skew,
            "reshards": self.reshards,
            "read_write": self.read_write,
            "config": dict(sorted(self.config.items())),
            # Scorecard consistency: same invariants block shape as every
            # other quorumtool scorecard (nothing audited here).
            "invariants": invariants_block((), []),
        }


def _zipf_schedule(
    streams: RngStreams,
    *,
    ops: int,
    keys: int,
    skew: float,
    read_fraction: float,
) -> List[Tuple[str, str]]:
    """Seed-deterministic (kind, key) sequence with power-law key skew."""
    rng = streams.stream("shardbench.schedule")
    weights = key_weights(keys, skew)
    kinds = rng.random(ops) < read_fraction
    key_indices = rng.choice(keys, size=ops, p=weights)
    return [
        ("read" if is_read else "write", f"k{int(index):04d}")
        for is_read, index in zip(kinds, key_indices)
    ]


def run_sharded_benchmark(
    systems: List[QuorumSystem],
    *,
    specs: Optional[List[Optional[str]]] = None,
    seed: int = 0,
    ops: int = 2000,
    keys: int = 512,
    skew: float = 0.9,
    read_fraction: float = 0.9,
    clients: int = 16,
    base_latency: float = 0.5,
    mean_latency: float = 1.0,
    service_time_ms: float = 2.0,
    timeout: float = 250.0,
    read_write: bool = False,
) -> ShardBenchReport:
    """Drive a seeded zipf workload through a sharded map, virtual time.

    One shard per entry of ``systems`` (equal hash ranges).  The run is
    fully deterministic: schedule, per-shard transports and coordinators
    all draw from named streams of one root seed.  ``read_write=True``
    serves every shard with the read/write capacity-LP strategy pair
    optimised at ``read_fraction`` instead of the unified optimum.
    """
    if not systems:
        raise ServiceError("benchmark needs at least one shard system")
    if clients <= 0 or ops < 0 or keys <= 0:
        raise ServiceError("invalid workload shape")
    streams = RngStreams(seed)
    schedule = _zipf_schedule(
        streams, ops=ops, keys=keys, skew=skew, read_fraction=read_fraction
    )
    clock = VirtualClock()
    shard_map = ShardMap.uniform(systems, specs=specs)
    factory = build_sim_backend_factory(
        clock,
        streams,
        base_latency=base_latency,
        mean_latency=mean_latency,
        service_time_ms=service_time_ms,
        timeout=timeout,
        read_write=read_fraction if read_write else None,
    )
    sharded = ShardedCoordinator(shard_map, factory)
    succeeded = 0
    failed = 0
    key_skew: Dict[str, Any] = {}

    async def main() -> float:
        nonlocal succeeded, failed
        # Preload every key once (excluded from the measured window) so
        # reads hit real versions.
        for index in range(keys):
            await sharded.write(f"k{index:04d}", None)
        started = clock.now()
        next_op = itertools.count()

        async def worker() -> None:
            nonlocal succeeded, failed
            while True:
                index = next(next_op)
                if index >= ops:
                    return
                kind, key = schedule[index]
                try:
                    if kind == "read":
                        await sharded.read(key)
                    else:
                        await sharded.write(key, f"v{index}")
                    succeeded += 1
                except OperationFailed:
                    failed += 1

        await asyncio.gather(*(worker() for _ in range(clients)))
        await sharded.drain()
        elapsed = clock.now() - started
        # Merge per-shard key counters before the backends close.
        merged = KeyCounter()
        for sid in sorted(sharded._backends):
            merged.merge(sharded._backends[sid].coordinator.metrics.keys)
        key_skew.update(merged.skew_summary(10))
        await sharded.close()
        return elapsed

    virtual_ms = run_virtual(main(), clock=clock)
    snapshot = sharded.snapshot()
    return ShardBenchReport(
        shards=len(systems),
        seed=seed,
        ops=ops,
        succeeded=succeeded,
        failed=failed,
        virtual_ms=virtual_ms,
        map_version=snapshot["map_version"],
        map_digest=snapshot["map_digest"],
        per_shard=snapshot["load"],
        key_skew=key_skew,
        reshards=snapshot["reshards"],
        read_write=read_write,
        config={
            "ops": ops,
            "keys": keys,
            "skew": skew,
            "read_fraction": read_fraction,
            "clients": clients,
            "base_latency": base_latency,
            "mean_latency": mean_latency,
            "service_time_ms": service_time_ms,
            "timeout": timeout,
            "specs": list(specs) if specs is not None else None,
        },
    )


def compare_shard_scaling(
    build_system: Any,
    *,
    spec: str = "majority:5",
    shard_counts: Tuple[int, int] = (1, 8),
    seed: int = 0,
    **workload: Any,
) -> Dict[str, Any]:
    """Same seeded workload at two shard counts; report the speedup.

    ``build_system`` is a ``spec -> QuorumSystem`` constructor (the CLI's
    :func:`repro.cli.build_system`); every shard runs an instance of the
    same spec, so the comparison isolates *sharding*, not system choice.
    """
    reports = {}
    for count in shard_counts:
        systems = [build_system(spec) for _ in range(count)]
        reports[count] = run_sharded_benchmark(
            systems, specs=[spec] * count, seed=seed, **workload
        )
    low, high = min(shard_counts), max(shard_counts)
    base = reports[low].ops_per_virtual_second
    scaled = reports[high].ops_per_virtual_second
    return {
        "spec": spec,
        "seed": seed,
        "runs": {str(count): reports[count].to_dict() for count in shard_counts},
        "speedup": (scaled / base) if base > 0 else 0.0,
    }
