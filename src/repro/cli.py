"""Command-line interface: ``quorumtool`` (or ``python -m repro``).

Subcommands
-----------
``info <system>``      construction summary (n, quorum sizes, load)
``failure <system>``   failure probability at one or more crash rates
``load <system>``      exact system load (LP or structural)
``compare``            the Table 2/3-style comparison at a given scale
``figures``            re-print the paper's two construction figures
``kvbench <system>``   drive the quorum-replicated KV service, compare
                       observed per-element load with the LP prediction;
                       ``--shards N`` benchmarks the sharded namespace
                       (N instances of the spec, virtual-time capacity)
``serve <system>``     run TCP replica servers for the system (binary
                       wire v2 + JSON lines on one port, sniffed per
                       connection; ``--workers N`` for multi-process)
``chaos``              randomized fault schedule against the KV service,
                       safety-invariant checks, measured-vs-exact
                       availability; exits 1 on any violation
``reshard``            split a hot shard live, mid-workload, under
                       injected faults; durability/staleness/monotonicity
                       invariants; exits 1 on any violation

Systems are named like ``h-triang:15``, ``h-t-grid:4x4``, ``majority:15``,
``hqs:5x3``, ``cwlog:14``, ``grid:4x4``, ``h-grid:5x5``, ``y:15``,
``paths:13``, ``fpp:7``, ``tree:h2``, ``tgrid:4x4``, ``triangle:5``,
``masking:5x1`` (the b-masking majority over n elements, MRW §3).
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from .core.errors import QuorumError
from .core.quorum_system import QuorumSystem
from .systems import (
    CrumblingWallQuorumSystem,
    FPPQuorumSystem,
    GridQuorumSystem,
    HQSQuorumSystem,
    HierarchicalGrid,
    HierarchicalTGrid,
    HierarchicalTriangle,
    MajorityQuorumSystem,
    PathsQuorumSystem,
    SingletonQuorumSystem,
    TreeQuorumSystem,
    YQuorumSystem,
)


def build_system(spec: str) -> QuorumSystem:
    """Instantiate a system from a ``name:params`` CLI spec."""
    name, _, params = spec.partition(":")
    name = name.lower()
    try:
        if name in ("majority", "maj"):
            return MajorityQuorumSystem.of_size(int(params))
        if name == "singleton":
            return SingletonQuorumSystem.of_size(int(params or "1"))
        if name == "hqs":
            branching = [int(x) for x in params.split("x")]
            return HQSQuorumSystem.balanced(branching)
        if name == "cwlog":
            return CrumblingWallQuorumSystem.cwlog(int(params))
        if name == "triangle":
            return CrumblingWallQuorumSystem.triangle(int(params))
        if name == "diamond":
            return CrumblingWallQuorumSystem.diamond(int(params))
        if name == "tgrid":
            rows, cols = (int(x) for x in params.split("x"))
            return CrumblingWallQuorumSystem.flat_tgrid(rows, cols)
        if name == "grid":
            rows, cols = (int(x) for x in params.split("x"))
            return GridQuorumSystem(rows, cols)
        if name in ("h-grid", "hgrid"):
            rows, cols = (int(x) for x in params.split("x"))
            return HierarchicalGrid.halving(rows, cols)
        if name in ("h-t-grid", "htgrid"):
            rows, cols = (int(x) for x in params.split("x"))
            return HierarchicalTGrid.halving(rows, cols)
        if name in ("h-triang", "htriangle", "htriang"):
            return HierarchicalTriangle.of_size(int(params))
        if name == "y":
            return YQuorumSystem.of_size(int(params))
        if name == "paths":
            return PathsQuorumSystem.of_size(int(params))
        if name == "fpp":
            return FPPQuorumSystem.of_size(int(params))
        if name == "tree":
            height = int(params.lstrip("h"))
            return TreeQuorumSystem(height)
        if name == "masking":
            from .analysis.byzantine import masking_majority

            size, _, b = params.partition("x")
            return masking_majority(int(size), int(b))
    except (ValueError, QuorumError) as exc:
        raise SystemExit(f"bad system spec {spec!r}: {exc}")
    raise SystemExit(f"unknown system {name!r}; see --help for the catalogue")


def _cmd_info(args: argparse.Namespace) -> None:
    system = build_system(args.system)
    print(f"system        : {system.system_name}")
    print(f"n             : {system.n}")
    try:
        sizes = system.quorum_sizes()
        print(f"min quorums   : {len(sizes)}")
        print(f"quorum sizes  : min={sizes[0]} max={sizes[-1]}")
        print(f"uniform size  : {system.has_uniform_quorum_size()}")
    except QuorumError as exc:
        print(f"quorum sizes  : c(S)={system.smallest_quorum_size()} ({exc})")
    try:
        print(f"load          : {system.load():.4f}")
    except QuorumError as exc:
        print(f"load          : unavailable ({exc})")


def _cmd_failure(args: argparse.Namespace) -> None:
    system = build_system(args.system)
    for p in args.p:
        value = system.failure_probability(p, method=args.method)
        print(f"F_{p:g}({system.system_name}) = {value:.6f}")


def _cmd_load(args: argparse.Namespace) -> None:
    system = build_system(args.system)
    print(f"L({system.system_name}) = {system.load(method=args.method):.6f}")


def _cmd_compare(args: argparse.Namespace) -> None:
    specs = args.systems
    systems = [build_system(s) for s in specs]
    header = "p      " + "".join(f"{s.system_name:>18}" for s in systems)
    print(header)
    for p in args.p:
        row = f"{p:<7g}"
        for system in systems:
            row += f"{system.failure_probability(p):>18.6f}"
        print(row)
    if args.plot:
        from .viz import render_failure_curves

        print()
        print(render_failure_curves(systems))


def _cmd_figures(args: argparse.Namespace) -> None:
    from .viz import render_figure1, render_figure2

    print(render_figure1())
    print()
    print(render_figure2())


def _cmd_dual(args: argparse.Namespace) -> None:
    system = build_system(args.system)
    dual = system.dual()
    print(f"system        : {system.system_name}")
    print(f"dual quorums  : {dual.num_minimal_quorums}")
    print(f"self-dual     : {system.is_self_dual()}")
    if args.show:
        for quorum in dual.minimal_quorums()[: args.show]:
            print("   ", sorted(quorum))


def _cmd_byzantine(args: argparse.Namespace) -> None:
    from .analysis.byzantine import byzantine_profile

    system = build_system(args.system)
    overlap, dissemination, masking = byzantine_profile(system)
    print(f"system                 : {system.system_name}")
    print(f"min pairwise overlap   : {overlap}")
    print(f"dissemination threshold: b = {dissemination}")
    print(f"masking threshold      : b = {masking}")


def _cmd_table(args: argparse.Namespace) -> None:
    from . import tables

    number = args.number
    if number == 1:
        print(tables.render_failure_table(tables.table1(), "Table 1"))
    elif number == 2:
        print(tables.render_failure_table(tables.table2(), "Table 2"))
    elif number == 3:
        print(tables.render_failure_table(tables.table3(), "Table 3"))
    elif number == 4:
        for scale, rows in tables.table4().items():
            print(f"Table 4 — ~{scale} nodes")
            for row in rows:
                load = f"{row.load:.3f}" if row.load is not None else "-"
                largest = row.largest if row.largest is not None else "-"
                note = f"   ({row.note})" if row.note else ""
                print(f"  {row.system:<10} n={row.n:<4} min={row.smallest}"
                      f" max={largest} load={load}{note}")
            print()
    elif number == 5:
        for row in tables.table5():
            same = "yes" if row["same size"] else "no"
            print(f"{row['system']:<14} c(S)={row['c(S)']:<18} same={same:<4}"
                  f" load={row['load']}")
    else:
        raise SystemExit(f"the paper has tables 1..5, not {number}")


def _cmd_critical(args: argparse.Namespace) -> None:
    from .analysis.importance import importance_profile, most_critical_elements

    system = build_system(args.system)
    profile = importance_profile(system, args.p)
    print(f"system   : {system.system_name} (n={system.n}, p={args.p})")
    print(f"Birnbaum importance: min={profile.min():.6f} max={profile.max():.6f}")
    print("most critical elements:")
    for element, value in most_critical_elements(system, args.p, count=args.top):
        print(f"   {system.universe.name_of(element)!s:>10}  I = {value:.6f}")


def _cmd_simulate(args: argparse.Namespace) -> None:
    from .runtime import iid_crash_schedule
    from .sim import AvailabilityProbe, Network, Node, ScheduleInjector, Simulator

    class _Sink(Node):
        def on_message(self, src, message):
            pass

    system = build_system(args.system)
    sim = Simulator(seed=args.seed)
    net = Network(sim)
    for element in system.universe.ids:
        _Sink(element, net)
    probe = AvailabilityProbe(system, net)
    horizon = float(args.epochs)
    schedule = iid_crash_schedule(
        sim.rng, net.node_ids, args.p, horizon=horizon, epoch=1.0
    )
    injector = ScheduleInjector(
        net, schedule, horizon=horizon, step=1.0, on_step=probe.observe
    )
    injector.start()
    sim.run(until=horizon)
    exact = system.failure_probability(args.p)
    print(f"system    : {system.system_name} (n={system.n})")
    print(f"epochs    : {probe.epochs}, crash p = {args.p}")
    print(f"measured  : {probe.failure_rate:.6f} ± {probe.confidence_half_width():.6f}")
    print(f"analytic  : {exact:.6f}")


def _accelerator_banner() -> str:
    """One line naming the optional perf dependencies that are active.

    Printed by the wall-clock modes (``serve``, TCP ``kvbench``) so any
    quoted throughput number also states what it was measured with.
    """
    from .runtime.clock import accelerators

    active = accelerators()
    flags = " ".join(
        f"{name}={'on' if enabled else 'off'}"
        for name, enabled in sorted(active.items())
    )
    hint = "" if all(active.values()) else "  (`pip install 'repro[perf]'` for the rest)"
    return f"accelerators  : {flags}{hint}"


def _cmd_kvbench_sharded(args: argparse.Namespace) -> None:
    import json as json_module

    from .core.errors import ServiceError
    from .sharding import run_sharded_benchmark

    try:
        systems = [build_system(args.system) for _ in range(args.shards)]
        report = run_sharded_benchmark(
            systems,
            specs=[args.system] * args.shards,
            seed=args.seed,
            ops=args.ops,
            keys=args.keys,
            skew=args.skew,
            read_fraction=args.read_fraction,
            clients=args.clients,
            service_time_ms=args.service_time_ms,
            timeout=args.timeout,
            read_write=args.read_write,
        )
    except ServiceError as exc:
        raise SystemExit(f"kvbench failed: {exc}")
    payload = report.to_dict()
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json_module.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json_out}")
    if args.json:
        print(json_module.dumps(payload, indent=2, sort_keys=True))
        return
    if args.json_out:
        return
    skew = report.key_skew
    print(f"system        : {args.system} x {args.shards} shards (virtual time)")
    print(
        f"workload      : {report.ops} ops, clients={args.clients},"
        f" keys={args.keys}, zipf skew={args.skew:g}, seed={args.seed},"
        f" service time={args.service_time_ms:g}ms/req"
    )
    print(f"outcome       : {report.succeeded} ok, {report.failed} failed")
    print(
        f"throughput    : {report.ops_per_virtual_second:.1f} ops/virtual-second"
        f" ({report.virtual_ms:.1f} virtual ms)"
    )
    if skew:
        top = ", ".join(f"{key}×{count}" for key, count in skew["top_k"][:5])
        print(
            f"key skew      : hottest key {skew['hottest_share']:.1%} of"
            f" accesses, top-10 {skew['top_k_share']:.1%}; top: {top}"
        )
    print("per-shard ops :")
    for shard_id, stats in report.per_shard.items():
        latency = stats["latency_ms"]
        print(
            f"   {shard_id:>6}  ops={stats['ops']:<6}"
            f" mean={latency['mean']:.2f}ms p99={latency['p99']:.2f}ms"
        )


def _cmd_kvbench(args: argparse.Namespace) -> None:
    import json as json_module

    from .core.errors import ServiceError
    from .service import TcpTransport, WorkloadConfig, run_kv_benchmark

    if args.shards:
        if args.tcp or args.tcp_local:
            raise SystemExit("--shards runs under virtual time; no TCP modes")
        _cmd_kvbench_sharded(args)
        return
    system = build_system(args.system)
    transport = None
    if args.tcp and args.tcp_local:
        raise SystemExit("--tcp and --tcp-local are mutually exclusive")
    if (args.binary or args.workers or args.uvloop) and not args.tcp_local:
        raise SystemExit("--binary/--workers/--uvloop require --tcp-local")
    if not args.json:
        # Wall-clock modes state their accelerators so every quoted
        # number is attributable; --json stays seed-deterministic.
        if args.tcp or args.tcp_local:
            print(_accelerator_banner())
    if args.tcp:
        host, colon, base = args.tcp.partition(":")
        if not (host and colon and base.isdigit()):
            raise SystemExit(f"bad --tcp address {args.tcp!r}: expected HOST:BASEPORT")
        addresses = {
            element: (host, int(base) + element) for element in system.universe.ids
        }
        transport = TcpTransport(addresses)
    try:
        config = WorkloadConfig(
            ops=args.ops,
            read_fraction=args.read_fraction,
            keys=args.keys,
            skew=args.skew,
            clients=args.clients,
            crash_rate=args.crash_rate,
            ops_per_epoch=args.ops_per_epoch,
            timeout=args.timeout,
            hedge_spares=args.hedge_spares,
            hedge_delay_ms=args.hedge_delay_ms,
        )
        report = run_kv_benchmark(
            system,
            seed=args.seed,
            read_write=args.read_write,
            transport=transport,
            config=config,
            tcp_local=args.tcp_local,
            serialized=args.serialized,
            binary=args.binary,
            coalesce=args.coalesce,
            workers=args.workers,
            use_uvloop=args.uvloop,
        )
    except ServiceError as exc:
        raise SystemExit(f"kvbench failed: {exc}")
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json_module.dump(report.perf_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json_out}")
    if args.json:
        # --json stays seed-deterministic (no wall-clock section);
        # --json-out is the perf artifact and includes it.
        print(json_module.dumps(report.to_dict(), indent=2, sort_keys=True))
        return
    if args.json_out:
        return
    snapshot = report.to_dict()
    ops = snapshot["ops"]
    latency = snapshot["latency_ms"]
    deviation = snapshot["load_deviation"]
    print(f"system        : {system.system_name} (n={system.n})")
    if args.tcp_local:
        if args.binary:
            protocol = "binary v2" + ("" if args.coalesce else " (coalescing off)")
        elif args.serialized:
            protocol = "serialized json (baseline)"
        else:
            protocol = "pipelined json"
        print(
            f"transport     : tcp-local {protocol},"
            f" workers={args.workers or 'in-loop'}"
        )
        wire = report.transport_stats
        if wire.get("frames_sent"):
            print(
                f"wire          : {wire['bytes_sent']} B out /"
                f" {wire['bytes_received']} B in,"
                f" {wire['ops_per_frame']:.2f} ops/frame,"
                f" {wire['bytes_per_op']:.1f} B/op"
            )
    if report.read_write:
        print(
            f"strategy load : {report.lp_load:.4f} (read/write capacity LP"
            f" at read fraction {config.read_fraction:g})"
        )
    else:
        print(f"strategy load : {report.lp_load:.4f} (LP-optimal, Def. 3.4)")
    predicted_cap = (
        f"{report.predicted_capacity:.2f}x one replica's service rate"
        if report.predicted_capacity
        else "n/a"
    )
    print(
        f"throughput    : observed {report.ops_per_second:,.0f} ops/s,"
        f" LP-predicted capacity {predicted_cap}"
    )
    print(
        f"workload      : {ops['attempted']} ops, clients={config.clients},"
        f" read fraction={config.read_fraction:g}, key skew={config.skew:g},"
        f" crash rate={config.crash_rate:g}, seed={args.seed}"
    )
    print(f"success rate  : {ops['success_rate']:.2%}")
    print(
        f"latency (ms)  : mean={latency['mean']:.2f}"
        f" p50={latency['p50']:.2f} p99={latency['p99']:.2f}"
    )
    hot = snapshot.get("hot_keys")
    if hot and hot.get("total"):
        top = ", ".join(f"{key}×{count}" for key, count in hot["top_k"][:5])
        print(
            f"key skew      : hottest key {hot['hottest_share']:.1%} of"
            f" accesses, top-10 {hot['top_k_share']:.1%}; top: {top}"
        )
    print(
        f"recovery      : retries={snapshot['retries']}"
        f" fallbacks={snapshot['fallbacks']} timeouts={snapshot['timeouts']}"
        f" unavailable={snapshot['unavailable']}"
        f" read-repairs={snapshot['read_repairs']}"
    )
    print("element loads : observed vs LP-predicted")
    observed = report.observed_loads
    predicted = report.predicted_loads
    for element in system.universe.ids:
        name = system.universe.name_of(element)
        print(
            f"   {str(name):>10}  observed={observed[element]:.4f}"
            f"  predicted={predicted[element]:.4f}"
        )
    print(
        f"deviation     : max |observed-predicted| = {deviation['max_abs_error']:.4f}"
        f" (relative {deviation['max_relative_error']:.2%})"
    )


def _print_chaos_report(report, config) -> None:
    availability = report.availability
    operations = report.operations
    print(f"system        : {report.system_name} (n={report.n})")
    print(f"seed          : {report.seed} ({config.ops} ops,"
          f" {config.clients} clients, {config.keys} keys)")
    print(f"mode          : {report.mode}"
          + (f" ({report.elapsed_seconds:.3f}s)" if report.elapsed_seconds else ""))
    print(f"fault rules   : {report.schedule.to_dict()['by_kind']}")
    print(f"injected      : {dict(sorted(report.injected.items()))}")
    print(
        f"operations    : reads ok={operations['reads_ok']}"
        f" degraded={operations['reads_degraded']}"
        f" failed={operations['reads_failed']} |"
        f" writes ok={operations['writes_ok']}"
        f" failed={operations['writes_failed']}"
    )
    print(
        f"availability  : measured={availability['measured']:.4f}"
        f" exact={availability['exact']:.4f}"
        f" (iid crash p={availability['crash_rate']:g},"
        f" |delta|={availability['abs_error']:.4f})"
    )
    print(f"op success    : {availability['op_success_rate']:.2%}")
    if report.byzantine_replicas:
        byz = report.metrics.to_dict()["byzantine"] if report.metrics else {}
        leases = report.metrics.to_dict()["leases"] if report.metrics else {}
        margin = byz.get("vote_margin_min")
        print(
            f"byzantine     : liars={report.byzantine_replicas}"
            f" (mode={config.byzantine_mode}, voting b={config.byzantine_b}),"
            f" lies detected={byz.get('lies_detected', 0)},"
            f" vote rounds={byz.get('vote_rounds', 0)}"
            f" (failures={byz.get('vote_failures', 0)},"
            f" min margin={margin if margin is not None else '-'})"
        )
        if config.lease_ttl:
            print(
                f"leases        : ttl={config.lease_ttl} ops,"
                f" renewals={leases.get('renewals', 0)},"
                f" expiries={leases.get('expiries', 0)},"
                f" failed rejoins={leases.get('rejoins_failed', 0)}"
            )
    print(f"trace hash    : {report.hashes['trace']}")
    print(f"metrics hash  : {report.hashes['metrics']}")
    if report.ok:
        print("invariants    : all held (no acked write lost, no stale"
              " unflagged read, versions intact, timestamps monotone)")
    else:
        print(f"invariants    : {len(report.violations)} VIOLATION(S)")
        for violation in report.violations:
            detail = {k: v for k, v in violation.items() if k != "invariant"}
            print(f"   [{violation['invariant']}] {detail}")


def _cmd_chaos(args: argparse.Namespace) -> None:
    import json as json_module
    import time as time_module

    from .core.errors import ServiceError
    from .service.chaos import ChaosConfig, run_chaos

    system = build_system(args.system)
    if args.boost:
        from .analysis.byzantine import boost, masking_threshold

        if args.byzantine < 1:
            raise SystemExit("--boost needs --byzantine B with B >= 1")
        if masking_threshold(system) < args.byzantine:
            system = boost(system, args.byzantine)
            print(f"boosted       : {system.system_name}"
                  f" (n={system.n}, groups of {2 * args.byzantine + 1})")
    if args.sim and args.wall:
        raise SystemExit("--sim and --wall are mutually exclusive")
    mode = "sim" if args.sim else ("wall" if args.wall else "inprocess")
    if args.seeds < 1:
        raise SystemExit(f"--seeds must be >= 1, got {args.seeds}")
    try:
        config = ChaosConfig(
            ops=args.ops,
            read_fraction=args.read_fraction,
            keys=args.keys,
            clients=args.clients,
            crash_rate=args.crash_rate,
            epoch=args.epoch,
            timeout=args.timeout,
            degraded_reads=not args.no_degraded_reads,
            partitions=args.partitions,
            unsafe_partial_writes=args.unsafe_partial_writes,
            byzantine_b=args.byzantine,
            byzantine_liars=args.liars,
            byzantine_mode=args.byzantine_mode,
            lease_ttl=args.lease_ttl,
            read_write=args.read_write,
        )
        config.validate()
    except ServiceError as exc:
        raise SystemExit(f"chaos failed: {exc}")

    reports = []
    started = time_module.perf_counter()
    try:
        for seed in range(args.seed, args.seed + args.seeds):
            reports.append(run_chaos(system, seed=seed, config=config, mode=mode))
    except ServiceError as exc:
        raise SystemExit(f"chaos failed: {exc}")
    elapsed = time_module.perf_counter() - started
    all_ok = all(report.ok for report in reports)

    if args.seeds == 1:
        payload = reports[0].to_dict()
    else:
        by_invariant: dict = {}
        for report in reports:
            for name, count in report.violation_counts.items():
                by_invariant[name] = by_invariant.get(name, 0) + count
        payload = {
            "system": system.system_name,
            "n": system.n,
            "mode": mode,
            "seeds": [report.seed for report in reports],
            "all_ok": all_ok,
            "violations_total": sum(len(r.violations) for r in reports),
            "violations_by_invariant": dict(sorted(by_invariant.items())),
            "runs": [report.to_dict() for report in reports],
        }
    if args.json_out:
        # The artifact additionally carries the (non-deterministic)
        # wall-clock numbers, like kvbench's perf_dict.
        artifact = dict(payload)
        artifact["perf"] = {
            "elapsed_seconds": elapsed,
            "run_seconds": [report.elapsed_seconds for report in reports],
            "runs_per_second": len(reports) / elapsed if elapsed > 0 else 0.0,
        }
        with open(args.json_out, "w") as handle:
            json_module.dump(artifact, handle, indent=2, sort_keys=True)
        print(f"wrote {args.json_out}")
    if args.json:
        print(json_module.dumps(payload, indent=2, sort_keys=True))
    elif args.seeds == 1:
        _print_chaos_report(reports[0], config)
    else:
        print(f"system        : {system.system_name} (n={system.n}), mode {mode}")
        print(f"sweep         : {args.seeds} seeds [{args.seed}.."
              f"{args.seed + args.seeds - 1}], {elapsed:.2f}s total")
        for report in reports:
            status = "ok" if report.ok else f"{len(report.violations)} VIOLATION(S)"
            availability = report.availability
            print(
                f"   seed {report.seed:>4}: {status};"
                f" availability measured={availability['measured']:.4f}"
                f" exact={availability['exact']:.4f};"
                f" trace {report.hashes['trace'][:12]}"
            )
        print(f"invariants    : {'all held' if all_ok else 'VIOLATED'}"
              f" across {args.seeds} seeds")
    if not all_ok:
        raise SystemExit(1)


def _print_reshard_report(report) -> None:
    config = report.config
    operations = report.operations
    print(f"shards        : {config.shards} x {config.spec}")
    print(f"seed          : {report.seed} ({config.ops} ops,"
          f" {config.clients} clients, {config.keys} keys,"
          f" zipf skew={config.skew:g})")
    print(f"mode          : {report.mode}"
          + (f" ({report.elapsed_seconds:.3f}s)" if report.elapsed_seconds else ""))
    print(f"injected      : {dict(sorted(report.injected.items()))}")
    print(
        f"operations    : reads ok={operations['reads_ok']}"
        f" failed={operations['reads_failed']} |"
        f" writes ok={operations['writes_ok']}"
        f" failed={operations['writes_failed']}"
        f" (+{operations['preloads']} preloads)"
    )
    if report.reshards:
        for event in report.reshards:
            status = "flipped" if event.get("ok") else "ABORTED"
            print(
                f"reshard       : {event['kind']} {event['shards']} {status},"
                f" map v{event['from_version']}→v{event['to_version']},"
                f" {event['keys_moved']} keys moved"
                + (f" ({event['detail']})" if event.get("detail") else "")
            )
    else:
        print("reshard       : none fired")
    print(f"map           : v{report.map_versions[1]}"
          f" digest {report.map_digest[:12]}")
    print(f"trace hash    : {report.hashes['trace']}")
    if report.ok:
        print("invariants    : all held (acked writes durable across the"
              " flip, reads fresh, versions intact, timestamps monotone)")
    else:
        print(f"invariants    : {len(report.violations)} VIOLATION(S)")
        for violation in report.violations:
            detail = {k: v for k, v in violation.items() if k != "invariant"}
            print(f"   [{violation['invariant']}] {detail}")


def _cmd_reshard(args: argparse.Namespace) -> None:
    import json as json_module
    import time as time_module

    from .core.errors import ServiceError
    from .sharding import ReshardChaosConfig, run_reshard_chaos

    if args.sim and args.wall:
        raise SystemExit("--sim and --wall are mutually exclusive")
    mode = "wall" if args.wall else "sim"
    if args.seeds < 1:
        raise SystemExit(f"--seeds must be >= 1, got {args.seeds}")
    try:
        config = ReshardChaosConfig(
            ops=args.ops,
            read_fraction=args.read_fraction,
            keys=args.keys,
            skew=args.skew,
            clients=args.clients,
            shards=args.shards,
            spec=args.spec,
            reshard=args.kind,
            reshard_at=args.reshard_at,
            crash_rate=args.crash_rate,
            epoch=args.epoch,
            timeout=args.timeout,
            lease_ttl=args.lease_ttl,
        )
        config.validate()
    except ServiceError as exc:
        raise SystemExit(f"reshard failed: {exc}")

    reports = []
    started = time_module.perf_counter()
    try:
        for seed in range(args.seed, args.seed + args.seeds):
            reports.append(run_reshard_chaos(seed=seed, config=config, mode=mode))
    except ServiceError as exc:
        raise SystemExit(f"reshard failed: {exc}")
    elapsed = time_module.perf_counter() - started
    all_ok = all(report.ok for report in reports)

    if args.seeds == 1:
        payload = reports[0].to_dict()
    else:
        payload = {
            "spec": args.spec,
            "shards": args.shards,
            "mode": mode,
            "seeds": [report.seed for report in reports],
            "all_ok": all_ok,
            "violations_total": sum(len(r.violations) for r in reports),
            "reshards_completed": sum(1 for r in reports if r.reshard_completed),
            "runs": [report.to_dict() for report in reports],
        }
    if args.json_out:
        artifact = dict(payload)
        artifact["perf"] = {
            "elapsed_seconds": elapsed,
            "run_seconds": [report.elapsed_seconds for report in reports],
            "runs_per_second": len(reports) / elapsed if elapsed > 0 else 0.0,
        }
        with open(args.json_out, "w") as handle:
            json_module.dump(artifact, handle, indent=2, sort_keys=True)
        print(f"wrote {args.json_out}")
    if args.json:
        print(json_module.dumps(payload, indent=2, sort_keys=True))
    elif args.seeds == 1:
        _print_reshard_report(reports[0])
    else:
        print(f"sharded       : {args.shards} x {args.spec}, mode {mode}")
        print(f"sweep         : {args.seeds} seeds [{args.seed}.."
              f"{args.seed + args.seeds - 1}], {elapsed:.2f}s total")
        for report in reports:
            status = "ok" if report.ok else f"{len(report.violations)} VIOLATION(S)"
            moved = sum(e.get("keys_moved", 0) for e in report.reshards if e.get("ok"))
            fate = (
                f"reshard flipped ({moved} keys)"
                if report.reshard_completed
                else ("reshard aborted" if report.reshards else "no reshard")
            )
            print(
                f"   seed {report.seed:>4}: {status}; {fate};"
                f" map v{report.map_versions[1]};"
                f" trace {report.hashes['trace'][:12]}"
            )
        completed = sum(1 for r in reports if r.reshard_completed)
        print(f"invariants    : {'all held' if all_ok else 'VIOLATED'}"
              f" across {args.seeds} seeds"
              f" ({completed} reshards ran to a flip)")
    if not all_ok:
        raise SystemExit(1)


def _print_incident_report(scenario, report, scorecard) -> None:
    _print_chaos_report(report, report.config)
    slo = scorecard["slo"]
    observed = slo["observed"]
    budget = slo["error_budget"]
    met = slo["met"]
    targets = slo["targets"]
    latency_bits = ", ".join(
        f"{label}={observed['latency_ms'][label]:.1f}ms"
        f" (ceiling {ceiling:g}, {'met' if met['latency'][label] else 'MISSED'})"
        for label, ceiling in sorted(targets["latency_ms"].items())
    )
    print(
        f"slo           : availability {observed['availability']:.4f}"
        f" vs target {targets['availability']:g}"
        f" ({'met' if met['availability'] else 'MISSED'})"
        + (f"; {latency_bits}" if latency_bits else "")
    )
    print(
        f"error budget  : burn rate {budget['burn_rate']:.2f}"
        f" (max window {budget['max_window_burn_rate']:.2f}"
        f" over {targets['window_ops']} ops), slo"
        f" {'met' if met['ok'] else 'MISSED'}"
    )
    if scorecard.get("arrival"):
        arrival = scorecard["arrival"]
        print(
            f"arrival       : open-loop poisson"
            f" {arrival['rate_ops_per_s']:g} ops/s target,"
            f" achieved {arrival['achieved_ops_per_s']:.1f}"
            f" (max spawn lag {arrival['max_spawn_lag_ms']:.3f}ms)"
        )
    if scorecard.get("cache"):
        cache = scorecard["cache"]
        print(
            f"cache         : hit rate {cache['hit_rate']:.1%}"
            f" ({cache['hits']} fresh + {cache['stale_served']} stale-served"
            f" / {cache['lookups']} lookups),"
            f" {cache['refreshes']} refreshes"
        )


def _cmd_incident(args: argparse.Namespace) -> None:
    import json as json_module
    import time as time_module

    from .core.errors import ServiceError
    from .scenarios import get_incident, list_incidents, run_scenario

    if args.action == "list":
        rows = list_incidents()
        if args.json:
            print(json_module.dumps(rows, indent=2, sort_keys=True))
            return
        for row in rows:
            print(f"{row['name']}")
            print(f"   {row['summary']}")
            slo = row["slo"]
            latency = ", ".join(
                f"{label}<={ceiling:g}ms"
                for label, ceiling in sorted(slo["latency_ms"].items())
            )
            print(
                f"   default system {row['system']};"
                f" slo availability>={slo['availability']:g}"
                + (f", {latency}" if latency else "")
            )
        return

    if args.name is None:
        raise SystemExit("incident run needs a name (see: quorumtool incident list)")
    if args.sim and args.wall:
        raise SystemExit("--sim and --wall are mutually exclusive")
    mode = "wall" if args.wall else "sim"
    if args.seeds < 1:
        raise SystemExit(f"--seeds must be >= 1, got {args.seeds}")
    overrides = {}
    if args.ops is not None:
        overrides["ops"] = args.ops
    try:
        scenario = get_incident(args.name)
        results = []
        started = time_module.perf_counter()
        for seed in range(args.seed, args.seed + args.seeds):
            results.append(
                run_scenario(
                    scenario,
                    seed=seed,
                    mode=mode,
                    system_spec=args.system,
                    **overrides,
                )
            )
        elapsed = time_module.perf_counter() - started
    except ServiceError as exc:
        raise SystemExit(f"incident failed: {exc}")
    all_ok = all(report.ok for report, _ in results)

    if args.seeds == 1:
        payload = results[0][1]
    else:
        by_invariant: dict = {}
        for report, _ in results:
            for name, count in report.violation_counts.items():
                by_invariant[name] = by_invariant.get(name, 0) + count
        payload = {
            "scorecard_version": results[0][1]["scorecard_version"],
            "scenario": scenario.name,
            "summary": scenario.summary,
            "expect_violations": scenario.expect_violations,
            "system": results[0][0].system_name,
            "mode": mode,
            "seeds": [report.seed for report, _ in results],
            "all_ok": all_ok,
            "violations_total": sum(len(r.violations) for r, _ in results),
            "violations_by_invariant": dict(sorted(by_invariant.items())),
            "slo_met": [card["slo"]["met"]["ok"] for _, card in results],
            "runs": [card for _, card in results],
        }
    if args.json_out:
        artifact = dict(payload)
        artifact["perf"] = {
            "elapsed_seconds": elapsed,
            "run_seconds": [report.elapsed_seconds for report, _ in results],
        }
        with open(args.json_out, "w") as handle:
            json_module.dump(artifact, handle, indent=2, sort_keys=True)
        print(f"wrote {args.json_out}")
    if args.json:
        print(json_module.dumps(payload, indent=2, sort_keys=True))
    elif args.seeds == 1:
        report, scorecard = results[0]
        print(f"incident      : {scenario.name}")
        print(f"   {scenario.summary}")
        _print_incident_report(scenario, report, scorecard)
    else:
        print(f"incident      : {scenario.name}, mode {mode}")
        print(f"system        : {results[0][0].system_name}"
              f" (n={results[0][0].n})")
        print(f"sweep         : {args.seeds} seeds [{args.seed}.."
              f"{args.seed + args.seeds - 1}], {elapsed:.2f}s total")
        for report, card in results:
            status = "ok" if report.ok else f"{len(report.violations)} VIOLATION(S)"
            slo_ok = "slo met" if card["slo"]["met"]["ok"] else "slo missed"
            print(
                f"   seed {report.seed:>4}: {status}; {slo_ok};"
                f" burn {card['slo']['error_budget']['burn_rate']:.2f};"
                f" trace {report.hashes['trace'][:12]}"
            )
        print(f"invariants    : {'all held' if all_ok else 'VIOLATED'}"
              f" across {args.seeds} seeds")
    # Violations fail the command unless the scenario is an intentional
    # unsafe demonstration — that is what CI gates on.
    if not all_ok and not scenario.expect_violations:
        raise SystemExit(1)


def _cmd_serve(args: argparse.Namespace) -> None:
    import asyncio
    import time as time_module

    from .runtime.clock import install_uvloop
    from .service import ReplicaCluster, make_replicas, start_tcp_replicas

    system = build_system(args.system)
    print(_accelerator_banner())
    if args.uvloop:
        install_uvloop()  # no-op (returns False) without the perf extra

    def _print_addresses(addresses) -> None:
        # One port speaks both protocols: servers sniff the first byte
        # and speak binary wire v2 or JSON lines per connection.
        print(
            f"serving {system.system_name} (n={system.n}) over TCP"
            f" (binary v2 + JSON lines, sniffed per connection)"
        )
        for element in sorted(addresses):
            host, port = addresses[element]
            name = system.universe.name_of(element)
            print(f"   replica {str(name):>10} -> {host}:{port}")

    if args.workers:
        # Multi-core serving: replicas hosted round-robin across worker
        # processes, keeping the base_port + id layout external clients
        # dial against.
        cluster = ReplicaCluster(
            list(system.universe.ids),
            workers=args.workers,
            host=args.host,
            base_port=args.base_port,
            use_uvloop=args.uvloop,
        )
        cluster.start()
        _print_addresses(cluster.addresses)
        print(f"workers       : {cluster.workers} OS processes")
        print("press Ctrl-C to stop" if args.duration is None else
              f"serving for {args.duration:g}s")
        try:
            deadline = (
                None if args.duration is None
                else time_module.monotonic() + args.duration
            )
            while deadline is None or time_module.monotonic() < deadline:
                time_module.sleep(0.2)
                crashed = cluster.poll_crashed()
                if crashed:
                    raise SystemExit(
                        f"serve failed: worker hosting replicas {crashed} died"
                    )
        except KeyboardInterrupt:
            pass
        finally:
            cluster.close()
        return

    async def _serve() -> None:
        replicas = make_replicas(system)
        servers, addresses = await start_tcp_replicas(
            replicas, host=args.host, base_port=args.base_port
        )
        _print_addresses(addresses)
        print("press Ctrl-C to stop" if args.duration is None else
              f"serving for {args.duration:g}s")
        try:
            if args.duration is None:
                await asyncio.gather(*(s.serve_forever() for s in servers))
            else:
                await asyncio.sleep(args.duration)
        except (KeyboardInterrupt, asyncio.CancelledError):
            pass
        finally:
            for server in servers:
                server.close()
                await server.wait_closed()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    except OSError as exc:
        raise SystemExit(f"serve failed: {exc}")


def main(argv: List[str] = None) -> None:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="quorumtool",
        description="Hierarchical quorum systems (ICDCS 2001 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_info = sub.add_parser("info", help="construction summary")
    p_info.add_argument("system")
    p_info.set_defaults(func=_cmd_info)

    p_fail = sub.add_parser("failure", help="failure probability")
    p_fail.add_argument("system")
    p_fail.add_argument("-p", type=float, action="append", default=None)
    p_fail.add_argument("--method", default="auto")
    p_fail.set_defaults(func=_cmd_failure)

    p_load = sub.add_parser("load", help="system load")
    p_load.add_argument("system")
    p_load.add_argument("--method", default="auto")
    p_load.set_defaults(func=_cmd_load)

    p_cmp = sub.add_parser("compare", help="failure-probability comparison")
    p_cmp.add_argument("systems", nargs="+")
    p_cmp.add_argument("-p", type=float, action="append", default=None)
    p_cmp.add_argument("--plot", action="store_true", help="ASCII failure curves")
    p_cmp.set_defaults(func=_cmd_compare)

    p_fig = sub.add_parser("figures", help="print the paper's figures")
    p_fig.set_defaults(func=_cmd_figures)

    p_dual = sub.add_parser("dual", help="dual system / self-duality")
    p_dual.add_argument("system")
    p_dual.add_argument("--show", type=int, default=0, help="print first k dual quorums")
    p_dual.set_defaults(func=_cmd_dual)

    p_byz = sub.add_parser("byzantine", help="Byzantine thresholds (§7 outlook)")
    p_byz.add_argument("system")
    p_byz.set_defaults(func=_cmd_byzantine)

    p_table = sub.add_parser("table", help="regenerate one of the paper's tables")
    p_table.add_argument("number", type=int)
    p_table.set_defaults(func=_cmd_table)

    p_crit = sub.add_parser("critical", help="Birnbaum importance per element")
    p_crit.add_argument("system")
    p_crit.add_argument("-p", type=float, default=0.2)
    p_crit.add_argument("--top", type=int, default=3)
    p_crit.set_defaults(func=_cmd_critical)

    p_sim = sub.add_parser("simulate", help="measure availability by simulation")
    p_sim.add_argument("system")
    p_sim.add_argument("-p", type=float, default=0.2)
    p_sim.add_argument("--epochs", type=int, default=20_000)
    p_sim.add_argument("--seed", type=int, default=0)
    p_sim.set_defaults(func=_cmd_simulate)

    p_bench = sub.add_parser(
        "kvbench", help="benchmark the quorum-replicated KV service"
    )
    p_bench.add_argument("system")
    p_bench.add_argument("--ops", type=int, default=1000)
    p_bench.add_argument("--seed", type=int, default=0)
    p_bench.add_argument("--read-fraction", type=float, default=0.9)
    p_bench.add_argument("--keys", type=int, default=64)
    p_bench.add_argument("--skew", type=float, default=0.8)
    p_bench.add_argument("--clients", type=int, default=4)
    p_bench.add_argument("--crash-rate", type=float, default=0.0)
    p_bench.add_argument("--ops-per-epoch", type=int, default=50)
    p_bench.add_argument("--timeout", type=float, default=50.0,
                         help="per-request deadline in ms")
    p_bench.add_argument("--tcp", metavar="HOST:BASEPORT", default=None,
                         help="drive live `quorumtool serve` replicas instead"
                              " of the in-process transport")
    p_bench.add_argument("--tcp-local", action="store_true",
                         help="start localhost TCP replicas in-process and"
                              " benchmark over real sockets")
    p_bench.add_argument("--serialized", action="store_true",
                         help="with --tcp-local: use the pre-pipelining"
                              " lock-per-replica client as baseline")
    p_bench.add_argument("--binary", action="store_true",
                         help="with --tcp-local: speak the struct-packed"
                              " binary wire protocol v2 instead of"
                              " JSON lines")
    p_bench.add_argument("--no-coalesce", dest="coalesce",
                         action="store_false", default=True,
                         help="with --binary: frame each op individually"
                              " instead of coalescing ops that share a"
                              " flush window into one frame")
    p_bench.add_argument("--workers", type=int, default=0,
                         help="with --tcp-local: host the replicas in this"
                              " many OS processes (0 = in the benchmark's"
                              " own event loop)")
    p_bench.add_argument("--uvloop", action="store_true",
                         help="install uvloop for the client loop and any"
                              " worker processes (no-op without the"
                              " repro[perf] extra)")
    p_bench.add_argument("--read-write", action="store_true",
                         help="serve reads from the read/write capacity LP's"
                              " read-quorum distribution (optimized at"
                              " --read-fraction) instead of the unified"
                              " write-legal strategy; with --shards, every"
                              " shard solves its own LP")
    p_bench.add_argument("--hedge-spares", type=int, default=0,
                         help="spare replicas contacted beyond each quorum"
                              " (first candidate quorum to fully ack wins)")
    p_bench.add_argument("--hedge-delay-ms", type=float, default=0.0,
                         help="defer hedge spares until this delay elapses"
                              " without a full quorum ack (0 = send upfront)")
    p_bench.add_argument("--shards", type=int, default=0,
                         help="benchmark a sharded namespace with this many"
                              " instances of the system spec under virtual"
                              " time (0 = classic single-system benchmark)")
    p_bench.add_argument("--service-time-ms", type=float, default=2.0,
                         help="with --shards: per-request replica service"
                              " time (finite-capacity FIFO replicas)")
    p_bench.add_argument("--json", action="store_true",
                         help="print the full metrics dict as JSON")
    p_bench.add_argument("--json-out", metavar="PATH", default=None,
                         help="write the metrics dict (with perf section:"
                              " ops/s, wire bytes, hedge stats) to PATH")
    p_bench.set_defaults(func=_cmd_kvbench)

    p_chaos = sub.add_parser(
        "chaos",
        help="randomized fault injection against the KV service with"
             " safety-invariant checks (exit 1 on violation)",
    )
    p_chaos.add_argument("--system", required=True,
                         help="system spec, e.g. htriang:15")
    p_chaos.add_argument("--seed", type=int, default=0)
    p_chaos.add_argument("--ops", type=int, default=400)
    p_chaos.add_argument("--read-fraction", type=float, default=0.6)
    p_chaos.add_argument("--keys", type=int, default=8)
    p_chaos.add_argument("--clients", type=int, default=2)
    p_chaos.add_argument("--crash-rate", type=float, default=0.15,
                         help="iid crash probability per epoch (compared"
                              " against the exact F_p)")
    p_chaos.add_argument("--epoch", type=int, default=25,
                         help="ticks per crash epoch")
    p_chaos.add_argument("--timeout", type=float, default=50.0,
                         help="per-request deadline in ms")
    p_chaos.add_argument("--partitions", type=int, default=1,
                         help="random partition windows in the schedule")
    p_chaos.add_argument("--read-write", action="store_true",
                         help="serve reads from the capacity LP's read-quorum"
                              " family (small read quorums) — the safety"
                              " invariants must hold over the split path too;"
                              " composes with --byzantine (2B+1-deep"
                              " read/write intersections)")
    p_chaos.add_argument("--no-degraded-reads", action="store_true",
                         help="fail reads outright instead of serving"
                              " best-effort stale results")
    p_chaos.add_argument("--unsafe-partial-writes", action="store_true",
                         help="TESTING ONLY: ack partial quorums under a"
                              " forced split-brain partition; the harness"
                              " must detect the violation and exit 1")
    p_chaos.add_argument("--byzantine", type=int, default=0, metavar="B",
                         help="run masking reads voting b+1 matching replies"
                              " deep (requires a b-masking system; see"
                              " --boost)")
    p_chaos.add_argument("--liars", type=int, default=0, metavar="L",
                         help="turn L replicas into lying (Byzantine)"
                              " replicas for the whole run; with L <= B the"
                              " run must stay clean, with L = B+1 the"
                              " harness must detect fabricated reads and"
                              " exit 1")
    p_chaos.add_argument("--byzantine-mode", default="wrong_value",
                         choices=("wrong_value", "stale_timestamp",
                                  "equivocate"),
                         help="lie flavour: fabricate values + fake-ack"
                              " writes, deny writes ever happened, or tell"
                              " each client site a different lie")
    p_chaos.add_argument("--lease-ttl", type=int, default=0, metavar="OPS",
                         help="quorum leases: every sampled quorum must"
                              " re-join (Timed-Quorum handshake) after this"
                              " many coordinator ops (0 = off)")
    p_chaos.add_argument("--boost", action="store_true",
                         help="if the system is thinner than --byzantine"
                              " requires, replace each element with a group"
                              " of 2B+1 replicas (analysis.byzantine.boost)")
    p_chaos.add_argument("--json", action="store_true",
                         help="print the full chaos report as JSON")
    p_chaos.add_argument("--sim", action="store_true",
                         help="run under virtual time (SimTransport on a"
                              " virtual-time event loop): bit-reproducible,"
                              " milliseconds per run")
    p_chaos.add_argument("--wall", action="store_true",
                         help="run the same SimTransport scenario under real"
                              " time (the wall-clock baseline for --sim)")
    p_chaos.add_argument("--seeds", type=int, default=1,
                         help="sweep this many consecutive seeds starting at"
                              " --seed (exit 1 if any run violates an"
                              " invariant)")
    p_chaos.add_argument("--json-out", metavar="PATH",
                         help="write the JSON report (plus wall-clock perf"
                              " numbers) to PATH")
    p_chaos.set_defaults(func=_cmd_chaos)

    p_reshard = sub.add_parser(
        "reshard",
        help="split/grow a hot shard live under injected faults, with"
             " durability/staleness/monotonicity checks (exit 1 on"
             " violation)",
    )
    p_reshard.add_argument("--spec", default="majority:5",
                           help="per-shard system spec, e.g. majority:5")
    p_reshard.add_argument("--shards", type=int, default=4,
                           help="initial shard count (equal hash ranges)")
    p_reshard.add_argument("--kind", choices=("split", "grow", "none"),
                           default="split",
                           help="reshard operation fired mid-workload:"
                                " split the hottest shard, grow it (§5"
                                " membership growth), or none (baseline)")
    p_reshard.add_argument("--reshard-at", type=float, default=0.4,
                           help="fire the reshard after this fraction of ops")
    p_reshard.add_argument("--seed", type=int, default=0)
    p_reshard.add_argument("--ops", type=int, default=600)
    p_reshard.add_argument("--read-fraction", type=float, default=0.6)
    p_reshard.add_argument("--keys", type=int, default=48)
    p_reshard.add_argument("--skew", type=float, default=0.9,
                           help="zipf key skew (drives the hot shard)")
    p_reshard.add_argument("--clients", type=int, default=4)
    p_reshard.add_argument("--crash-rate", type=float, default=0.1,
                           help="iid crash probability per fault epoch")
    p_reshard.add_argument("--epoch", type=float, default=40.0,
                           help="ticks per crash epoch")
    p_reshard.add_argument("--timeout", type=float, default=200.0,
                           help="per-request deadline in ms")
    p_reshard.add_argument("--lease-ttl", type=int, default=0, metavar="OPS",
                           help="per-shard quorum leases: sampled quorums"
                                " re-join after this many ops, so the"
                                " drain→copy→flip handoff runs under"
                                " membership churn (0 = off)")
    p_reshard.add_argument("--sim", action="store_true",
                           help="run under virtual time (the default;"
                                " bit-reproducible, milliseconds per run)")
    p_reshard.add_argument("--wall", action="store_true",
                           help="run the same scenario under real time")
    p_reshard.add_argument("--seeds", type=int, default=1,
                           help="sweep this many consecutive seeds starting"
                                " at --seed (exit 1 if any run violates an"
                                " invariant)")
    p_reshard.add_argument("--json", action="store_true",
                           help="print the full reshard report as JSON")
    p_reshard.add_argument("--json-out", metavar="PATH",
                           help="write the JSON scorecard (plus wall-clock"
                                " perf numbers) to PATH")
    p_reshard.set_defaults(func=_cmd_reshard)

    p_incident = sub.add_parser(
        "incident",
        help="run a named SRE incident scenario from the library",
    )
    p_incident.add_argument("action", choices=("run", "list"),
                            help="'list' the incident library or 'run' one")
    p_incident.add_argument("name", nargs="?", default=None,
                            help="incident name (for 'run')")
    p_incident.add_argument("--system", default=None, metavar="SPEC",
                            help="override the incident's default quorum"
                                 " system (e.g. majority:5, hgrid:4x4,"
                                 " htriang:15)")
    p_incident.add_argument("--seed", type=int, default=0)
    p_incident.add_argument("--seeds", type=int, default=1,
                            help="sweep this many consecutive seeds starting"
                                 " at --seed (exit 1 if any run violates an"
                                 " invariant)")
    p_incident.add_argument("--ops", type=int, default=None,
                            help="override the incident's operation count")
    p_incident.add_argument("--sim", action="store_true",
                            help="run under virtual time (the default;"
                                 " bit-reproducible, milliseconds per run)")
    p_incident.add_argument("--wall", action="store_true",
                            help="run the same scenario under real time")
    p_incident.add_argument("--json", action="store_true",
                            help="print the scorecard as JSON")
    p_incident.add_argument("--json-out", metavar="PATH",
                            help="write the JSON scorecard (plus wall-clock"
                                 " perf numbers) to PATH")
    p_incident.set_defaults(func=_cmd_incident)

    p_serve = sub.add_parser(
        "serve", help="run TCP replica servers for a system"
    )
    p_serve.add_argument("system")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--base-port", type=int, default=9000,
                         help="replica i listens on base-port + i (0 = ephemeral)")
    p_serve.add_argument("--workers", type=int, default=0,
                         help="host replicas in this many OS processes"
                              " (0 = one event loop in this process;"
                              " worker ports are ephemeral)")
    p_serve.add_argument("--uvloop", action="store_true",
                         help="install uvloop for the serving loop(s)"
                              " (no-op without the repro[perf] extra)")
    p_serve.add_argument("--duration", type=float, default=None,
                         help="stop after this many seconds (default: forever)")
    p_serve.set_defaults(func=_cmd_serve)

    args = parser.parse_args(argv)
    if hasattr(args, "p") and args.p is None:
        args.p = [0.1, 0.2, 0.3, 0.5]
    args.func(args)


if __name__ == "__main__":
    main()
