"""Command-line interface: ``quorumtool`` (or ``python -m repro``).

Subcommands
-----------
``info <system>``      construction summary (n, quorum sizes, load)
``failure <system>``   failure probability at one or more crash rates
``load <system>``      exact system load (LP or structural)
``compare``            the Table 2/3-style comparison at a given scale
``figures``            re-print the paper's two construction figures

Systems are named like ``h-triang:15``, ``h-t-grid:4x4``, ``majority:15``,
``hqs:5x3``, ``cwlog:14``, ``grid:4x4``, ``h-grid:5x5``, ``y:15``,
``paths:13``, ``fpp:7``, ``tree:h2``, ``tgrid:4x4``, ``triangle:5``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from .core.errors import QuorumError
from .core.quorum_system import QuorumSystem
from .systems import (
    CrumblingWallQuorumSystem,
    FPPQuorumSystem,
    GridQuorumSystem,
    HQSQuorumSystem,
    HierarchicalGrid,
    HierarchicalTGrid,
    HierarchicalTriangle,
    MajorityQuorumSystem,
    PathsQuorumSystem,
    SingletonQuorumSystem,
    TreeQuorumSystem,
    YQuorumSystem,
)


def build_system(spec: str) -> QuorumSystem:
    """Instantiate a system from a ``name:params`` CLI spec."""
    name, _, params = spec.partition(":")
    name = name.lower()
    try:
        if name in ("majority", "maj"):
            return MajorityQuorumSystem.of_size(int(params))
        if name == "singleton":
            return SingletonQuorumSystem.of_size(int(params or "1"))
        if name == "hqs":
            branching = [int(x) for x in params.split("x")]
            return HQSQuorumSystem.balanced(branching)
        if name == "cwlog":
            return CrumblingWallQuorumSystem.cwlog(int(params))
        if name == "triangle":
            return CrumblingWallQuorumSystem.triangle(int(params))
        if name == "diamond":
            return CrumblingWallQuorumSystem.diamond(int(params))
        if name == "tgrid":
            rows, cols = (int(x) for x in params.split("x"))
            return CrumblingWallQuorumSystem.flat_tgrid(rows, cols)
        if name == "grid":
            rows, cols = (int(x) for x in params.split("x"))
            return GridQuorumSystem(rows, cols)
        if name in ("h-grid", "hgrid"):
            rows, cols = (int(x) for x in params.split("x"))
            return HierarchicalGrid.halving(rows, cols)
        if name in ("h-t-grid", "htgrid"):
            rows, cols = (int(x) for x in params.split("x"))
            return HierarchicalTGrid.halving(rows, cols)
        if name in ("h-triang", "htriangle", "htriang"):
            return HierarchicalTriangle.of_size(int(params))
        if name == "y":
            return YQuorumSystem.of_size(int(params))
        if name == "paths":
            return PathsQuorumSystem.of_size(int(params))
        if name == "fpp":
            return FPPQuorumSystem.of_size(int(params))
        if name == "tree":
            height = int(params.lstrip("h"))
            return TreeQuorumSystem(height)
    except (ValueError, QuorumError) as exc:
        raise SystemExit(f"bad system spec {spec!r}: {exc}")
    raise SystemExit(f"unknown system {name!r}; see --help for the catalogue")


def _cmd_info(args: argparse.Namespace) -> None:
    system = build_system(args.system)
    print(f"system        : {system.system_name}")
    print(f"n             : {system.n}")
    try:
        sizes = system.quorum_sizes()
        print(f"min quorums   : {len(sizes)}")
        print(f"quorum sizes  : min={sizes[0]} max={sizes[-1]}")
        print(f"uniform size  : {system.has_uniform_quorum_size()}")
    except QuorumError as exc:
        print(f"quorum sizes  : c(S)={system.smallest_quorum_size()} ({exc})")
    try:
        print(f"load          : {system.load():.4f}")
    except QuorumError as exc:
        print(f"load          : unavailable ({exc})")


def _cmd_failure(args: argparse.Namespace) -> None:
    system = build_system(args.system)
    for p in args.p:
        value = system.failure_probability(p, method=args.method)
        print(f"F_{p:g}({system.system_name}) = {value:.6f}")


def _cmd_load(args: argparse.Namespace) -> None:
    system = build_system(args.system)
    print(f"L({system.system_name}) = {system.load(method=args.method):.6f}")


def _cmd_compare(args: argparse.Namespace) -> None:
    specs = args.systems
    systems = [build_system(s) for s in specs]
    header = "p      " + "".join(f"{s.system_name:>18}" for s in systems)
    print(header)
    for p in args.p:
        row = f"{p:<7g}"
        for system in systems:
            row += f"{system.failure_probability(p):>18.6f}"
        print(row)
    if args.plot:
        from .viz import render_failure_curves

        print()
        print(render_failure_curves(systems))


def _cmd_figures(args: argparse.Namespace) -> None:
    from .viz import render_figure1, render_figure2

    print(render_figure1())
    print()
    print(render_figure2())


def _cmd_dual(args: argparse.Namespace) -> None:
    system = build_system(args.system)
    dual = system.dual()
    print(f"system        : {system.system_name}")
    print(f"dual quorums  : {dual.num_minimal_quorums}")
    print(f"self-dual     : {system.is_self_dual()}")
    if args.show:
        for quorum in dual.minimal_quorums()[: args.show]:
            print("   ", sorted(quorum))


def _cmd_byzantine(args: argparse.Namespace) -> None:
    from .analysis.byzantine import byzantine_profile

    system = build_system(args.system)
    overlap, dissemination, masking = byzantine_profile(system)
    print(f"system                 : {system.system_name}")
    print(f"min pairwise overlap   : {overlap}")
    print(f"dissemination threshold: b = {dissemination}")
    print(f"masking threshold      : b = {masking}")


def _cmd_table(args: argparse.Namespace) -> None:
    from . import tables

    number = args.number
    if number == 1:
        print(tables.render_failure_table(tables.table1(), "Table 1"))
    elif number == 2:
        print(tables.render_failure_table(tables.table2(), "Table 2"))
    elif number == 3:
        print(tables.render_failure_table(tables.table3(), "Table 3"))
    elif number == 4:
        for scale, rows in tables.table4().items():
            print(f"Table 4 — ~{scale} nodes")
            for row in rows:
                load = f"{row.load:.3f}" if row.load is not None else "-"
                largest = row.largest if row.largest is not None else "-"
                note = f"   ({row.note})" if row.note else ""
                print(f"  {row.system:<10} n={row.n:<4} min={row.smallest}"
                      f" max={largest} load={load}{note}")
            print()
    elif number == 5:
        for row in tables.table5():
            same = "yes" if row["same size"] else "no"
            print(f"{row['system']:<14} c(S)={row['c(S)']:<18} same={same:<4}"
                  f" load={row['load']}")
    else:
        raise SystemExit(f"the paper has tables 1..5, not {number}")


def _cmd_critical(args: argparse.Namespace) -> None:
    from .analysis.importance import importance_profile, most_critical_elements

    system = build_system(args.system)
    profile = importance_profile(system, args.p)
    print(f"system   : {system.system_name} (n={system.n}, p={args.p})")
    print(f"Birnbaum importance: min={profile.min():.6f} max={profile.max():.6f}")
    print("most critical elements:")
    for element, value in most_critical_elements(system, args.p, count=args.top):
        print(f"   {system.universe.name_of(element)!s:>10}  I = {value:.6f}")


def _cmd_simulate(args: argparse.Namespace) -> None:
    from .sim import AvailabilityProbe, IidCrashInjector, Network, Node, Simulator

    class _Sink(Node):
        def on_message(self, src, message):
            pass

    system = build_system(args.system)
    sim = Simulator(seed=args.seed)
    net = Network(sim)
    for element in system.universe.ids:
        _Sink(element, net)
    probe = AvailabilityProbe(system, net)
    injector = IidCrashInjector(net, p=args.p, epoch=1.0, on_epoch=probe.observe)
    injector.start()
    sim.run(until=float(args.epochs))
    exact = system.failure_probability(args.p)
    print(f"system    : {system.system_name} (n={system.n})")
    print(f"epochs    : {probe.epochs}, crash p = {args.p}")
    print(f"measured  : {probe.failure_rate:.6f} ± {probe.confidence_half_width():.6f}")
    print(f"analytic  : {exact:.6f}")


def main(argv: List[str] = None) -> None:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="quorumtool",
        description="Hierarchical quorum systems (ICDCS 2001 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_info = sub.add_parser("info", help="construction summary")
    p_info.add_argument("system")
    p_info.set_defaults(func=_cmd_info)

    p_fail = sub.add_parser("failure", help="failure probability")
    p_fail.add_argument("system")
    p_fail.add_argument("-p", type=float, action="append", default=None)
    p_fail.add_argument("--method", default="auto")
    p_fail.set_defaults(func=_cmd_failure)

    p_load = sub.add_parser("load", help="system load")
    p_load.add_argument("system")
    p_load.add_argument("--method", default="auto")
    p_load.set_defaults(func=_cmd_load)

    p_cmp = sub.add_parser("compare", help="failure-probability comparison")
    p_cmp.add_argument("systems", nargs="+")
    p_cmp.add_argument("-p", type=float, action="append", default=None)
    p_cmp.add_argument("--plot", action="store_true", help="ASCII failure curves")
    p_cmp.set_defaults(func=_cmd_compare)

    p_fig = sub.add_parser("figures", help="print the paper's figures")
    p_fig.set_defaults(func=_cmd_figures)

    p_dual = sub.add_parser("dual", help="dual system / self-duality")
    p_dual.add_argument("system")
    p_dual.add_argument("--show", type=int, default=0, help="print first k dual quorums")
    p_dual.set_defaults(func=_cmd_dual)

    p_byz = sub.add_parser("byzantine", help="Byzantine thresholds (§7 outlook)")
    p_byz.add_argument("system")
    p_byz.set_defaults(func=_cmd_byzantine)

    p_table = sub.add_parser("table", help="regenerate one of the paper's tables")
    p_table.add_argument("number", type=int)
    p_table.set_defaults(func=_cmd_table)

    p_crit = sub.add_parser("critical", help="Birnbaum importance per element")
    p_crit.add_argument("system")
    p_crit.add_argument("-p", type=float, default=0.2)
    p_crit.add_argument("--top", type=int, default=3)
    p_crit.set_defaults(func=_cmd_critical)

    p_sim = sub.add_parser("simulate", help="measure availability by simulation")
    p_sim.add_argument("system")
    p_sim.add_argument("-p", type=float, default=0.2)
    p_sim.add_argument("--epochs", type=int, default=20_000)
    p_sim.add_argument("--seed", type=int, default=0)
    p_sim.set_defaults(func=_cmd_simulate)

    args = parser.parse_args(argv)
    if hasattr(args, "p") and args.p is None:
        args.p = [0.1, 0.2, 0.3, 0.5]
    args.func(args)


if __name__ == "__main__":
    main()
