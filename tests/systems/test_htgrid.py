"""Tests for the hierarchical T-grid (the paper's §4 contribution)."""

import pytest

from repro.analysis import failure_probability_exhaustive, optimal_strategy
from repro.core import ConstructionError
from repro.systems import HierarchicalGrid, HierarchicalTGrid


@pytest.fixture(scope="module")
def ht44():
    return HierarchicalTGrid.halving(4, 4)


@pytest.fixture(scope="module")
def hg44():
    return HierarchicalGrid.halving(4, 4)


class TestConstruction:
    def test_shares_universe_with_hgrid(self, ht44):
        assert ht44.n == 16
        assert ht44.hgrid.n == 16

    def test_intersection_property(self, ht44):
        ht44.verify_intersection()
        HierarchicalTGrid.halving(3, 3).verify_intersection()
        HierarchicalTGrid.pairing(3, 3).verify_intersection()
        HierarchicalTGrid.halving(2, 4).verify_intersection()
        HierarchicalTGrid.halving(4, 2).verify_intersection()

    def test_quorum_size_range(self, ht44):
        # sqrt(n) <= |quorum| <= 2 sqrt(n) - 1 (§4.3): 4..7 for n=16.
        assert ht44.smallest_quorum_size() == 4
        assert ht44.largest_quorum_size() == 7
        assert not ht44.has_uniform_quorum_size()

    def test_bottom_line_alone_is_a_quorum(self, ht44):
        # The lowest full-line needs no cover elements at all.
        bottom = frozenset(
            e for e in ht44.universe.ids if ht44.hgrid.coordinates(e)[0] == 3
        )
        assert bottom in ht44.minimal_quorums()


class TestRelationToHGrid:
    def test_every_htgrid_quorum_inside_an_hgrid_quorum(self, ht44, hg44):
        # h-T-grid strictly removes elements from h-grid quorums.
        hgrid_quorums = hg44.minimal_quorums()
        for quorum in ht44.minimal_quorums():
            assert any(quorum <= big for big in hgrid_quorums)

    def test_htgrid_quorums_intersect_all_read_covers(self, ht44, hg44):
        # §4.2 remark: replicated data can keep using h-grid read quorums.
        for quorum in ht44.minimal_quorums():
            for cover in hg44.row_covers():
                assert quorum & cover

    def test_better_failure_probability(self, ht44, hg44):
        for p in (0.1, 0.2, 0.3, 0.5):
            assert ht44.failure_probability(p) < hg44.failure_probability_exact(p)

    def test_better_load(self, ht44):
        # LP-optimal load of the h-T-grid beats the h-grid's 2/sqrt(n).
        lp = optimal_strategy(ht44).induced_load()
        assert lp < 7 / 16 + 1e-9


class TestPartialCovers:
    def test_partial_cover_respects_cutoff(self, ht44):
        line = ht44.hgrid.full_lines()[0]
        cover = ht44.hgrid.row_covers()[0]
        partial = ht44.partial_cover(cover, line)
        cutoff = ht44.topmost_key(line)
        assert partial <= cover
        for element in partial:
            assert ht44.hgrid.rowpath(element) >= cutoff

    def test_topmost_key_is_minimum(self, ht44):
        line = ht44.hgrid.full_lines()[0]
        keys = [ht44.hgrid.rowpath(e) for e in line]
        assert ht44.topmost_key(line) == min(keys)


class TestStrategies:
    def test_line_based_strategy_paper_values(self, ht44):
        # §4.3: on the 4x4 grid, average quorum size 5.8 and load 36.5%.
        strategy = ht44.line_based_strategy()
        assert strategy.average_quorum_size() == pytest.approx(5.8, abs=0.06)
        assert strategy.induced_load() == pytest.approx(0.365, abs=0.005)

    def test_line_based_strategy_with_explicit_weights(self, ht44):
        strategy = ht44.line_based_strategy([0.25, 0.25, 0.25, 0.25])
        assert strategy.average_quorum_size() == pytest.approx(5.5)

    def test_line_based_weights_validation(self, ht44):
        with pytest.raises(ConstructionError):
            ht44.line_based_strategy([1.0])

    def test_randomized_strategy_worse(self, ht44):
        # §4.3: using all quorums necessarily does worse (5.9 / 41%).
        base = ht44.line_based_strategy()
        randomized = ht44.randomized_line_strategy(epsilon=0.25)
        assert randomized.average_quorum_size() > base.average_quorum_size() - 1e-9
        assert randomized.induced_load() > base.induced_load()

    def test_randomized_epsilon_zero_equals_base(self, ht44):
        base = ht44.line_based_strategy()
        randomized = ht44.randomized_line_strategy(epsilon=0.0)
        assert randomized.induced_load() == pytest.approx(base.induced_load())

    def test_randomized_epsilon_validation(self, ht44):
        with pytest.raises(ConstructionError):
            ht44.randomized_line_strategy(epsilon=1.5)

    def test_global_rows(self, ht44):
        assert ht44.global_rows() == 4
        quorums = ht44.line_based_quorums(3)
        # Based on the bottom row, the quorum is just the line.
        assert all(len(q) == 4 for q in quorums)


class TestAvailabilitySmall:
    @pytest.mark.parametrize("dims", [(2, 2), (3, 3), (2, 3), (4, 4)])
    def test_generic_engines_agree(self, dims):
        system = HierarchicalTGrid.halving(*dims)
        for p in (0.2, 0.5):
            exhaustive = failure_probability_exhaustive(system, p)
            shannon = system.failure_probability(p, method="shannon")
            assert exhaustive == pytest.approx(shannon, abs=1e-12)

    def test_rectangular_improvement(self):
        # §4.3's headline: 6 lines x 4 columns beats the 5x5 square
        # despite having one element fewer.
        rect = HierarchicalTGrid.halving(6, 4)
        square = HierarchicalTGrid.halving(5, 5)
        for p in (0.1, 0.2, 0.3):
            assert rect.failure_probability(
                p, method="shannon"
            ) < square.failure_probability(p, method="shannon")
